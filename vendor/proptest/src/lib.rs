//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, covering exactly the subset this workspace's `tests/property.rs`
//! uses:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(...)]`
//!   inner attribute and `arg in strategy` parameter lists;
//! * integer [`Range`](std::ops::Range) strategies;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: each test runs `cases` deterministic iterations whose inputs are
//! derived from the test's name, so failures reproduce exactly across runs.

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` iterations per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic case RNG (SplitMix64 — statistically fine for test-input
/// generation and dependency-free).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Derives the deterministic RNG for one case of one named property.
/// (FNV-1a over the name, mixed with the case index.)
#[doc(hidden)]
pub fn __rng_for_case(name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng {
        state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
    }
}

pub mod strategy {
    use super::TestRng;
    use std::ops::Range;

    /// A generator of test inputs.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty strategy range {:?}..{:?}",
                        self.start,
                        self.end
                    );
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! `Vec` strategies, mirroring `proptest::collection::vec`.

    use super::strategy::Strategy;

    /// A length specification: a fixed size or a `start..end` range,
    /// mirroring proptest's `SizeRange` conversions.
    pub struct SizeRange(std::ops::Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy for `Vec<S::Value>` with per-case length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A vector whose length is drawn from `len` and whose elements are
    /// drawn independently from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into().0,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut super::TestRng) -> Self::Value {
            let n = if self.len.len() <= 1 {
                self.len.start
            } else {
                Strategy::sample(&self.len.clone(), rng)
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { ... }`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __proptest_cfg: $crate::ProptestConfig = $cfg;
                for __proptest_case in 0..__proptest_cfg.cases {
                    let mut __proptest_rng =
                        $crate::__rng_for_case(stringify!($name), __proptest_case);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
    (
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),*) $body)*
        }
    };
}

/// The glob-import surface property tests expect.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Sampled values respect their range bounds.
        #[test]
        fn ranges_are_respected(n in 2usize..40, s in 0u64..1000, d in -5i32..5) {
            prop_assert!((2..40).contains(&n));
            prop_assert!(s < 1000);
            prop_assert!((-5..5).contains(&d), "d = {}", d);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::__rng_for_case("x", 3).next_u64();
        let b = crate::__rng_for_case("x", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, crate::__rng_for_case("x", 4).next_u64());
        assert_ne!(a, crate::__rng_for_case("y", 3).next_u64());
    }
}
