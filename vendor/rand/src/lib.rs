//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses (see the `[patch.crates-io]`
//! table in the root `Cargo.toml`):
//!
//! * [`SmallRng`](rngs::SmallRng) — xoshiro256++ seeded via SplitMix64,
//!   matching the algorithm real `rand` uses for its 64-bit `SmallRng`, so
//!   statistical quality is equivalent (streams differ, seeds are not
//!   portable across implementations);
//! * [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`];
//! * [`SeedableRng::seed_from_u64`].
//!
//! Anything outside this subset is intentionally absent: a compile error
//! here is a prompt to extend the stub deliberately rather than to grow an
//! silent dependency on unavailable functionality.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T` (for `f64`/`f32`: in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    /// A uniform integer in the half-open `range`. Panics on empty ranges.
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "random_bool needs p in [0, 1], got {p}");
        f64::random_from(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically derives a full RNG state from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from their "standard" distribution.
pub trait Standard: Sized {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits => uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types supporting uniform range sampling.
pub trait UniformInt: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(
                    range.start < range.end,
                    "cannot sample empty range {:?}..{:?}",
                    range.start,
                    range.end
                );
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u64 as u128;
                // Lemire-style widening multiply: bias <= span / 2^64,
                // negligible for every span this workspace samples.
                let offset = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (range.start as u64).wrapping_add(offset) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind real `rand`'s 64-bit `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// The glob-import surface application code expects.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_sampling_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0u32..10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all cells hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.random_range(5usize..6);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn f64_is_uniform_on_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_probability_is_respected() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }
}
