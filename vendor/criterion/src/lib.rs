//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, covering the subset this workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::sample_size`] / [`BenchmarkGroup::finish`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It measures wall-clock medians over a handful of samples and prints one
//! line per benchmark — enough to compare runs by eye, with none of real
//! criterion's statistics, plotting, or baseline storage.
//!
//! For machine consumption, set `CRITERION_JSONL=FILE` and every completed
//! benchmark appends one JSON line to `FILE`:
//! `{"id":"group/name","median_ns":N,"samples":K}`. The append-only format
//! lets several bench binaries share one sink (the CI bench-regression gate
//! does exactly that, then folds the lines into a report via
//! `bench_report`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How expensive batched setup is — accepted and ignored (every batch size
/// gets the same treatment here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (clamped to keep stub runs short).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.clamp(2, 20);
        self
    }

    /// Runs `f` once per sample and reports the median sample time.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            times.push(b.elapsed);
        }
        times.sort_unstable();
        let median = times[times.len() / 2];
        println!("{}/{}: median {:?} over {} samples", self.name, id, median, times.len());
        emit_jsonl(&format!("{}/{}", self.name, id), median, times.len());
        self
    }

    pub fn finish(&mut self) {}
}

/// Appends one benchmark result as a JSON line to the file named by the
/// `CRITERION_JSONL` environment variable, when set. Failures degrade to a
/// warning — a broken sink must never fail the benchmark run itself.
fn emit_jsonl(id: &str, median: Duration, samples: usize) {
    let Some(path) = std::env::var_os("CRITERION_JSONL") else {
        return;
    };
    // Benchmark ids are code-authored identifiers, but escape the two
    // JSON-breaking characters anyway so the sink stays well-formed.
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"id\":\"{escaped}\",\"median_ns\":{},\"samples\":{samples}}}\n",
        median.as_nanos()
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = written {
        eprintln!("warning: CRITERION_JSONL sink {}: {e}", path.to_string_lossy());
    }
}

/// Timer passed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one call of `routine` per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on a fresh `setup()` input, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into a runner, mirroring real criterion's
/// macro shape (`config = ...` forms are not needed here).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `jsonl_sink_appends_well_formed_lines` mutates the process
    /// environment while `harness_runs` reads it (via [`emit_jsonl`]), and
    /// the default test harness runs tests on separate threads; serialise
    /// the two so `set_var` never races `getenv` (unsound on glibc) and the
    /// harness test can't observe the sink variable mid-window.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    fn bench_demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32; 100],
                |v| v.iter().sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, bench_demo);

    #[test]
    fn harness_runs() {
        let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        benches();
    }

    #[test]
    fn jsonl_sink_appends_well_formed_lines() {
        let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let path = std::env::temp_dir().join(format!("criterion-jsonl-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CRITERION_JSONL", &path);
        benches();
        std::env::remove_var("CRITERION_JSONL");
        let text = std::fs::read_to_string(&path).expect("sink file written");
        let _ = std::fs::remove_file(&path);
        // The lock keeps other writers out, but stay lenient about extra
        // lines; ours must be present and well-formed (id, a
        // positive-or-zero median, the sample count).
        for id in ["demo/sum", "demo/batched"] {
            let line = text
                .lines()
                .find(|l| l.contains(&format!("\"id\":\"{id}\"")))
                .unwrap_or_else(|| panic!("no line for {id} in {text:?}"));
            assert!(line.starts_with('{') && line.ends_with('}'), "{line:?}");
            assert!(line.contains("\"median_ns\":"), "{line:?}");
            assert!(line.contains("\"samples\":3"), "{line:?}");
        }
    }
}
