//! ACQ \[2\]: attributed community search with a k-core model.
//!
//! Given `(q, ℓ_q, k)`, ACQ returns the maximal connected k-core containing
//! `q` in which *every* node carries the query attribute (the paper's §V-A
//! description: "a k-core containing the query node such that all nodes in
//! the k-core share the query attribute").

use cod_graph::{AttrId, AttributedGraph, NodeId};

use crate::kcore::kcore_component;

/// Runs an ACQ query. Returns the sorted members of the community, or
/// `None` when `q` lacks the attribute or no qualifying k-core exists.
///
/// ```
/// use cod_graph::{AttrInterner, AttrTable, AttributedGraph, GraphBuilder};
/// use cod_search::acq_query;
///
/// // Triangle {0,1,2} sharing attribute 0, pendant node 3 without it.
/// let mut b = GraphBuilder::new(4);
/// for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3)] {
///     b.add_edge(u, v);
/// }
/// let attrs = AttrTable::from_lists(vec![vec![0], vec![0], vec![0], vec![]]);
/// let g = AttributedGraph::from_parts(b.build(), attrs, AttrInterner::new());
/// assert_eq!(acq_query(&g, 0, 0, 2), Some(vec![0, 1, 2]));
/// assert_eq!(acq_query(&g, 3, 0, 1), None); // node 3 lacks the attribute
/// ```
pub fn acq_query(g: &AttributedGraph, q: NodeId, attr: AttrId, k: u32) -> Option<Vec<NodeId>> {
    if !g.has_attr(q, attr) {
        return None;
    }
    let community = kcore_component(g.csr(), q, k, |v| g.has_attr(v, attr))?;
    // A community of just the query node is not a community.
    if community.len() <= 1 {
        None
    } else {
        Some(community)
    }
}

/// The largest `k` for which [`acq_query`] succeeds, with its community.
pub fn acq_query_max_k(g: &AttributedGraph, q: NodeId, attr: AttrId) -> Option<(u32, Vec<NodeId>)> {
    let mut best = None;
    let mut k = 1u32;
    while let Some(c) = acq_query(g, q, attr, k) {
        best = Some((k, c));
        k += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::{AttrInterner, AttrTable, GraphBuilder};

    /// Triangle {0,1,2} with attr A; node 3 (attr B) tied to all of them;
    /// pendant 4 with attr A hanging off node 0.
    fn fixture() -> AttributedGraph {
        let mut b = GraphBuilder::new(5);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (0, 3), (1, 3), (2, 3), (0, 4)] {
            b.add_edge(u, v);
        }
        let mut i = AttrInterner::new();
        let a = i.intern("A");
        let bb = i.intern("B");
        let attrs = AttrTable::from_lists(vec![vec![a], vec![a], vec![a], vec![bb], vec![a]]);
        AttributedGraph::from_parts(b.build(), attrs, i)
    }

    #[test]
    fn finds_attribute_homogeneous_core() {
        let g = fixture();
        // 2-core within attr A: the triangle (node 3 excluded, node 4
        // peeled away).
        let c = acq_query(&g, 0, 0, 2).unwrap();
        assert_eq!(c, vec![0, 1, 2]);
    }

    #[test]
    fn query_without_attribute_fails() {
        let g = fixture();
        assert!(acq_query(&g, 3, 0, 1).is_none());
    }

    #[test]
    fn too_high_k_fails() {
        let g = fixture();
        assert!(acq_query(&g, 0, 0, 3).is_none());
    }

    #[test]
    fn max_k_search() {
        let g = fixture();
        let (k, c) = acq_query_max_k(&g, 0, 0).unwrap();
        assert_eq!(k, 2);
        assert_eq!(c, vec![0, 1, 2]);
        let (k4, c4) = acq_query_max_k(&g, 4, 0).unwrap();
        assert_eq!(k4, 1);
        assert_eq!(c4, vec![0, 1, 2, 4]);
    }
}
