//! k-truss decomposition and triangle connectivity.
//!
//! A k-truss is a subgraph in which every edge participates in at least
//! `k - 2` triangles. Edge *trussness* is the largest `k` for which the
//! edge survives; two edges are *triangle-connected* if a chain of shared
//! triangles links them (the community model of CAC \[3\] and ATC \[1\]).

use cod_graph::{Csr, FxHashMap, NodeId};

/// An indexed undirected edge set with trussness values.
pub struct TrussDecomposition {
    /// Edges as `(u, v)` with `u < v`, lexicographically sorted.
    pub edges: Vec<(NodeId, NodeId)>,
    /// `trussness[e]` of `edges[e]` (≥ 2 for every edge).
    pub trussness: Vec<u32>,
    /// Edge-id lookup.
    index: FxHashMap<(NodeId, NodeId), u32>,
}

impl TrussDecomposition {
    /// Computes the truss decomposition of `g` (support peeling).
    pub fn new(g: &Csr) -> Self {
        let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
        let m = edges.len();
        let mut index: FxHashMap<(NodeId, NodeId), u32> = FxHashMap::default();
        index.reserve(m);
        for (i, &e) in edges.iter().enumerate() {
            index.insert(e, i as u32);
        }
        let eid = |a: NodeId, b: NodeId| -> u32 {
            let key = if a < b { (a, b) } else { (b, a) };
            index[&key]
        };

        // Support = number of triangles per edge.
        let mut support = vec![0u32; m];
        for (i, &(u, v)) in edges.iter().enumerate() {
            // Intersect sorted neighbor lists, counting only w > v to count
            // each triangle once for this edge... every triangle must
            // increment every one of its three edges, so count all common
            // neighbors here but only when u < v (guaranteed) and attribute
            // the triangle to each edge via the pairwise intersections.
            let count = intersect_count(g.neighbors(u), g.neighbors(v));
            support[i] = count;
        }

        // Peel edges in increasing support order.
        let mut trussness = vec![0u32; m];
        let mut removed = vec![false; m];
        // Bucket queue over support values.
        let max_sup = support.iter().copied().max().unwrap_or(0) as usize;
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_sup + 1];
        for (i, &s) in support.iter().enumerate() {
            buckets[s as usize].push(i as u32);
        }
        let mut k = 2u32;
        let mut processed = 0usize;
        let mut level = 0usize;
        while processed < m {
            // Find the lowest non-empty bucket.
            while level <= max_sup && buckets[level].is_empty() {
                level += 1;
            }
            if level > max_sup {
                break;
            }
            let e = buckets[level].pop().unwrap();
            if removed[e as usize] {
                continue;
            }
            if support[e as usize] as usize > level {
                // Stale entry; reinsert at its true level.
                buckets[support[e as usize] as usize].push(e);
                continue;
            }
            k = k.max(support[e as usize] + 2);
            trussness[e as usize] = k;
            removed[e as usize] = true;
            processed += 1;
            // Decrement the support of edges sharing a triangle with e.
            let (u, v) = edges[e as usize];
            for w in intersect(g.neighbors(u), g.neighbors(v)) {
                let e1 = eid(u, w);
                let e2 = eid(v, w);
                if removed[e1 as usize] || removed[e2 as usize] {
                    continue;
                }
                for ex in [e1, e2] {
                    let s = support[ex as usize];
                    if s > support[e as usize] {
                        support[ex as usize] = s - 1;
                        let lvl = (s - 1) as usize;
                        buckets[lvl].push(ex);
                        if lvl < level {
                            level = lvl;
                        }
                    }
                }
            }
        }
        Self {
            edges,
            trussness,
            index,
        }
    }

    /// Edge id of `{u, v}`, if present.
    pub fn edge_id(&self, u: NodeId, v: NodeId) -> Option<u32> {
        let key = if u < v { (u, v) } else { (v, u) };
        self.index.get(&key).copied()
    }

    /// Trussness of `{u, v}`, if present.
    pub fn edge_trussness(&self, u: NodeId, v: NodeId) -> Option<u32> {
        self.edge_id(u, v).map(|e| self.trussness[e as usize])
    }

    /// The maximum trussness over edges incident to `q`.
    pub fn max_trussness_at(&self, g: &Csr, q: NodeId) -> Option<u32> {
        g.neighbors(q)
            .iter()
            .filter_map(|&u| self.edge_trussness(q, u))
            .max()
    }

    /// Nodes of the triangle-connected k-truss community containing `q`
    /// (see [`TrussDecomposition::triangle_connected_edges`]). Returns
    /// sorted node members, or `None` if no incident edge qualifies.
    pub fn triangle_connected_community(&self, g: &Csr, q: NodeId, k: u32) -> Option<Vec<NodeId>> {
        let edges = self.triangle_connected_edges(g, q, k)?;
        let mut nodes: Vec<NodeId> = edges.iter().flat_map(|&(u, v)| [u, v]).collect();
        nodes.sort_unstable();
        nodes.dedup();
        Some(nodes)
    }

    /// The edge set of the triangle-connected k-truss community containing
    /// `q`: starting from `q`'s incident edges of trussness ≥ k, expand
    /// over shared triangles whose three edges all have trussness ≥ k.
    /// Returns `(u, v)` pairs with `u < v`, or `None` if no incident edge
    /// qualifies.
    pub fn triangle_connected_edges(
        &self,
        g: &Csr,
        q: NodeId,
        k: u32,
    ) -> Option<Vec<(NodeId, NodeId)>> {
        let mut seed: Vec<u32> = g
            .neighbors(q)
            .iter()
            .filter_map(|&u| self.edge_id(q, u))
            .filter(|&e| self.trussness[e as usize] >= k)
            .collect();
        if seed.is_empty() {
            return None;
        }
        let m = self.edges.len();
        let mut in_comm = vec![false; m];
        for &e in &seed {
            in_comm[e as usize] = true;
        }
        while let Some(e) = seed.pop() {
            let (u, v) = self.edges[e as usize];
            for w in intersect(g.neighbors(u), g.neighbors(v)) {
                let e1 = self.edge_id(u, w).unwrap();
                let e2 = self.edge_id(v, w).unwrap();
                if self.trussness[e1 as usize] >= k && self.trussness[e2 as usize] >= k {
                    for ex in [e1, e2] {
                        if !in_comm[ex as usize] {
                            in_comm[ex as usize] = true;
                            seed.push(ex);
                        }
                    }
                }
            }
        }
        let mut out: Vec<(NodeId, NodeId)> = Vec::new();
        for (i, &(u, v)) in self.edges.iter().enumerate() {
            if in_comm[i] {
                out.push((u, v));
            }
        }
        Some(out)
    }
}

/// Number of common elements of two sorted slices.
fn intersect_count(a: &[NodeId], b: &[NodeId]) -> u32 {
    let mut i = 0;
    let mut j = 0;
    let mut c = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// Common elements of two sorted slices.
fn intersect(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Nodes within `d` hops of `q` (BFS), sorted ascending.
pub fn d_neighborhood(g: &Csr, q: NodeId, d: u32) -> Vec<NodeId> {
    let n = g.num_nodes();
    let mut dist = vec![u32::MAX; n];
    dist[q as usize] = 0;
    let mut queue = vec![q];
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        if dist[v as usize] == d {
            continue;
        }
        for &u in g.neighbors(v) {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = dist[v as usize] + 1;
                queue.push(u);
            }
        }
    }
    queue.sort_unstable();
    queue
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::GraphBuilder;

    /// K4 on {0,1,2,3} plus a triangle {3,4,5} plus pendant edge 5-6.
    fn fixture() -> Csr {
        let mut b = GraphBuilder::new(7);
        for u in 0..4 {
            for v in u + 1..4 {
                b.add_edge(u, v);
            }
        }
        for (u, v) in [(3, 4), (4, 5), (3, 5), (5, 6)] {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn trussness_of_k4_is_4() {
        let g = fixture();
        let t = TrussDecomposition::new(&g);
        assert_eq!(t.edge_trussness(0, 1), Some(4));
        assert_eq!(t.edge_trussness(2, 3), Some(4));
        assert_eq!(t.edge_trussness(3, 4), Some(3));
        assert_eq!(t.edge_trussness(5, 6), Some(2));
    }

    #[test]
    fn max_trussness_at_nodes() {
        let g = fixture();
        let t = TrussDecomposition::new(&g);
        assert_eq!(t.max_trussness_at(&g, 0), Some(4));
        assert_eq!(t.max_trussness_at(&g, 4), Some(3));
        assert_eq!(t.max_trussness_at(&g, 6), Some(2));
    }

    #[test]
    fn triangle_connected_community_at_k4() {
        let g = fixture();
        let t = TrussDecomposition::new(&g);
        let c = t.triangle_connected_community(&g, 0, 4).unwrap();
        assert_eq!(c, vec![0, 1, 2, 3]);
    }

    #[test]
    fn triangle_connected_community_at_k3_spans_both_cliques() {
        let g = fixture();
        let t = TrussDecomposition::new(&g);
        // At k = 3, the K4 and the triangle share node 3 but NOT a triangle
        // with all edges >= 3... edges (3,4),(4,5),(3,5) form their own
        // triangle; K4 edges are >= 3 too, but no triangle contains edges
        // of both groups, so they are not triangle-connected.
        let c = t.triangle_connected_community(&g, 4, 3).unwrap();
        assert_eq!(c, vec![3, 4, 5]);
        let c2 = t.triangle_connected_community(&g, 0, 3).unwrap();
        assert_eq!(c2, vec![0, 1, 2, 3]);
    }

    #[test]
    fn no_community_above_max_trussness() {
        let g = fixture();
        let t = TrussDecomposition::new(&g);
        assert!(t.triangle_connected_community(&g, 0, 5).is_none());
    }

    #[test]
    fn d_neighborhood_radii() {
        let g = fixture();
        assert_eq!(d_neighborhood(&g, 6, 0), vec![6]);
        assert_eq!(d_neighborhood(&g, 6, 1), vec![5, 6]);
        assert_eq!(d_neighborhood(&g, 6, 2), vec![3, 4, 5, 6]);
        assert_eq!(d_neighborhood(&g, 0, 2).len(), 6);
        assert_eq!(d_neighborhood(&g, 0, 3).len(), 7);
    }

    #[test]
    fn triangle_free_graph_has_trussness_2() {
        let mut b = GraphBuilder::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        let t = TrussDecomposition::new(&g);
        assert!(t.trussness.iter().all(|&k| k == 2));
    }
}
