//! k-core decomposition and maximal-k-core extraction.

use cod_graph::{Csr, NodeId};

/// Core numbers of every node (bucket-based peeling, `O(|E|)`).
pub fn core_numbers(g: &Csr) -> Vec<u32> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<u32> = (0..n as NodeId).map(|v| g.degree(v) as u32).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;
    // Bucket sort nodes by degree.
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &degree {
        bin[d as usize + 1] += 1;
    }
    for i in 1..bin.len() {
        bin[i] += bin[i - 1];
    }
    let mut pos = vec![0usize; n];
    let mut vert = vec![0 as NodeId; n];
    {
        let mut cursor = bin.clone();
        for v in 0..n {
            let d = degree[v] as usize;
            pos[v] = cursor[d];
            vert[pos[v]] = v as NodeId;
            cursor[d] += 1;
        }
    }
    // bin[d] = start index of degree-d nodes in `vert`.
    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = vert[i];
        core[v as usize] = degree[v as usize];
        for &u in g.neighbors(v) {
            if degree[u as usize] > degree[v as usize] {
                // Move u one bucket down.
                let du = degree[u as usize] as usize;
                let pu = pos[u as usize];
                let pw = bin[du];
                let w = vert[pw];
                if u != w {
                    vert[pu] = w;
                    vert[pw] = u;
                    pos[u as usize] = pw;
                    pos[w as usize] = pu;
                }
                bin[du] += 1;
                degree[u as usize] -= 1;
            }
        }
    }
    core
}

/// The maximal connected k-core containing `q`, restricted to nodes
/// accepted by `keep`. Returns sorted members, or `None` if `q` does not
/// survive the peeling.
pub fn kcore_component(
    g: &Csr,
    q: NodeId,
    k: u32,
    keep: impl Fn(NodeId) -> bool,
) -> Option<Vec<NodeId>> {
    let n = g.num_nodes();
    if !keep(q) {
        return None;
    }
    // Peel nodes (inside the mask) with masked degree < k.
    let mut alive: Vec<bool> = (0..n as NodeId).map(&keep).collect();
    let mut deg = vec![0u32; n];
    for v in 0..n as NodeId {
        if alive[v as usize] {
            deg[v as usize] = g
                .neighbors(v)
                .iter()
                .filter(|&&u| alive[u as usize])
                .count() as u32;
        }
    }
    let mut stack: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| alive[v as usize] && deg[v as usize] < k)
        .collect();
    while let Some(v) = stack.pop() {
        if !alive[v as usize] {
            continue;
        }
        alive[v as usize] = false;
        for &u in g.neighbors(v) {
            if alive[u as usize] {
                deg[u as usize] -= 1;
                if deg[u as usize] < k {
                    stack.push(u);
                }
            }
        }
    }
    if !alive[q as usize] {
        return None;
    }
    Some(cod_graph::components::component_of_within(g, q, &alive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::GraphBuilder;

    /// Triangle {0,1,2} with pendant 3 on node 2, plus a disjoint
    /// triangle {4,5,6}.
    fn fixture() -> Csr {
        let mut b = GraphBuilder::new(7);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3), (4, 5), (5, 6), (4, 6)] {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn core_numbers_match_structure() {
        let g = fixture();
        let c = core_numbers(&g);
        assert_eq!(c[0], 2);
        assert_eq!(c[1], 2);
        assert_eq!(c[2], 2);
        assert_eq!(c[3], 1);
        assert_eq!(c[4], 2);
    }

    #[test]
    fn two_core_excludes_pendant() {
        let g = fixture();
        let c = kcore_component(&g, 0, 2, |_| true).unwrap();
        assert_eq!(c, vec![0, 1, 2]);
    }

    #[test]
    fn pendant_has_no_two_core() {
        let g = fixture();
        assert!(kcore_component(&g, 3, 2, |_| true).is_none());
    }

    #[test]
    fn components_are_separated() {
        let g = fixture();
        let c = kcore_component(&g, 4, 2, |_| true).unwrap();
        assert_eq!(c, vec![4, 5, 6]);
    }

    #[test]
    fn mask_restricts_the_core() {
        let g = fixture();
        // Excluding node 1 destroys the triangle: no 2-core for node 0.
        assert!(kcore_component(&g, 0, 2, |v| v != 1).is_none());
        // 1-core still exists: {0, 2, 3}.
        let c = kcore_component(&g, 0, 1, |v| v != 1).unwrap();
        assert_eq!(c, vec![0, 2, 3]);
    }

    #[test]
    fn zero_core_is_component() {
        let g = fixture();
        let c = kcore_component(&g, 3, 0, |_| true).unwrap();
        assert_eq!(c, vec![0, 1, 2, 3]);
    }

    #[test]
    fn core_numbers_on_clique() {
        let mut b = GraphBuilder::new(5);
        for u in 0..5 {
            for v in u + 1..5 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        assert!(core_numbers(&g).iter().all(|&c| c == 4));
    }
}
