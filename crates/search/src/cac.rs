//! CAC \[3\]: cohesive attributed community search with a triangle-connected
//! k-truss model.
//!
//! Given `(q, ℓ_q)`, CAC returns the triangle-connected k-truss of maximum
//! trussness containing `q` within the subgraph induced by nodes carrying
//! the query attribute (paper §V-A: "a triangle-connected k-truss
//! containing the query node in which all nodes share the query
//! attribute"). Like the original, it prefers the densest (largest-`k`)
//! community, which is why CAC returns small, tight communities in the
//! paper's case studies.

use cod_graph::subgraph::Subgraph;
use cod_graph::{AttrId, AttributedGraph, NodeId};

use crate::truss::TrussDecomposition;

/// Runs a CAC query. Returns the sorted members of the community, or
/// `None` when no triangle-connected truss (k ≥ 3) around `q` exists
/// within the attribute-induced subgraph.
pub fn cac_query(g: &AttributedGraph, q: NodeId, attr: AttrId) -> Option<Vec<NodeId>> {
    if !g.has_attr(q, attr) {
        return None;
    }
    let members = g.attrs().nodes_with(attr);
    let sub = Subgraph::induced(g.csr(), &members);
    let lq = sub.local(q)?;
    if sub.csr.degree(lq) == 0 {
        return None;
    }
    let truss = TrussDecomposition::new(&sub.csr);
    let k = truss.max_trussness_at(&sub.csr, lq)?;
    if k < 3 {
        // No triangle through q within the attributed subgraph.
        return None;
    }
    let local = truss.triangle_connected_community(&sub.csr, lq, k)?;
    let mut out: Vec<NodeId> = local.iter().map(|&l| sub.parent(l)).collect();
    out.sort_unstable();
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::{AttrInterner, AttrTable, GraphBuilder};

    /// K4 {0,1,2,3} all attr A; triangle {3,4,5} where 4,5 have attr B;
    /// node 6 attr A connected to 0 only.
    fn fixture() -> AttributedGraph {
        let mut b = GraphBuilder::new(7);
        for u in 0..4 {
            for v in u + 1..4 {
                b.add_edge(u, v);
            }
        }
        for (u, v) in [(3, 4), (4, 5), (3, 5), (0, 6)] {
            b.add_edge(u, v);
        }
        let mut i = AttrInterner::new();
        let a = i.intern("A");
        let bb = i.intern("B");
        let attrs = AttrTable::from_lists(vec![
            vec![a],
            vec![a],
            vec![a],
            vec![a, bb],
            vec![bb],
            vec![bb],
            vec![a],
        ]);
        AttributedGraph::from_parts(b.build(), attrs, i)
    }

    #[test]
    fn finds_max_trussness_community() {
        let g = fixture();
        let c = cac_query(&g, 0, 0).unwrap();
        assert_eq!(c, vec![0, 1, 2, 3]);
    }

    #[test]
    fn attribute_restricts_the_truss() {
        let g = fixture();
        // With attr B, node 3's community is the triangle {3,4,5}.
        let c = cac_query(&g, 3, 1).unwrap();
        assert_eq!(c, vec![3, 4, 5]);
    }

    #[test]
    fn pendant_node_has_no_truss_community() {
        let g = fixture();
        assert!(cac_query(&g, 6, 0).is_none());
    }

    #[test]
    fn wrong_attribute_fails() {
        let g = fixture();
        assert!(cac_query(&g, 0, 1).is_none());
    }
}
