//! Attributed community-search baselines (paper §V-A).
//!
//! The paper compares COD against three attributed community search
//! methods. This crate implements them over the same substrate:
//!
//! * [`acq::acq_query`] — **ACQ** \[2\]: the maximal connected k-core
//!   containing the query node in which every node shares the query
//!   attribute;
//! * [`cac::cac_query`] — **CAC** \[3\]: the triangle-connected k-truss of
//!   maximum trussness containing the query node, all of whose nodes share
//!   the query attribute;
//! * [`atc::atc_query`] — **ATC** \[1\], simplified LocATC flavour: the
//!   (k,d)-truss around the query node, greedily peeled to maximize the
//!   attribute score (see `DESIGN.md` §5 for the documented
//!   simplification);
//!
//! plus the structural machinery: [`kcore`] decomposition and
//! [`truss`] decomposition with triangle connectivity.

pub mod acq;
pub mod atc;
pub mod cac;
pub mod kcore;
pub mod truss;

pub use acq::acq_query;
pub use atc::atc_query;
pub use cac::cac_query;
