//! ATC \[1\], simplified LocATC flavour: (k, d)-truss community search with
//! attribute-score peeling.
//!
//! The original ATC finds a (k, d)-truss containing the query node that
//! maximizes an attribute score, via the LocATC heuristic (local k-truss
//! expansion + bulk peeling). We implement the same shape (documented in
//! `DESIGN.md` §5):
//!
//! 1. restrict to the `d`-neighborhood of `q`;
//! 2. take the triangle-connected truss community of the largest feasible
//!    `k ≤ k_max` around `q`;
//! 3. greedily peel nodes lacking the query attribute while the community
//!    remains a k-truss containing `q` and the attribute score
//!    (fraction of members with `ℓ_q`) improves.

use cod_graph::subgraph::Subgraph;
use cod_graph::{AttrId, AttributedGraph, NodeId};

use crate::truss::{d_neighborhood, TrussDecomposition};

/// ATC parameters (paper \[1\] uses small `k` and `d`; defaults `k = 4`,
/// `d = 2`).
#[derive(Clone, Copy, Debug)]
pub struct AtcParams {
    /// Desired trussness (the search relaxes `k` downward to 3 if needed).
    pub k: u32,
    /// Query-distance bound.
    pub d: u32,
    /// Peeling budget: maximum removal rounds (bounds the cubic-ish greedy
    /// loop on hub neighborhoods).
    pub max_rounds: usize,
    /// Peeling budget: candidates examined per round.
    pub max_candidates_per_round: usize,
}

impl Default for AtcParams {
    fn default() -> Self {
        Self {
            k: 4,
            d: 2,
            max_rounds: 30,
            max_candidates_per_round: 25,
        }
    }
}

/// Runs an ATC query. Returns sorted members, or `None` when no truss
/// community (k ≥ 3) exists around `q` within distance `d`.
pub fn atc_query(
    g: &AttributedGraph,
    q: NodeId,
    attr: AttrId,
    params: AtcParams,
) -> Option<Vec<NodeId>> {
    let hood = d_neighborhood(g.csr(), q, params.d);
    if hood.len() <= 2 {
        return None;
    }
    let sub = Subgraph::induced(g.csr(), &hood);
    let lq = sub.local(q).expect("q is in its own neighborhood");
    let truss = TrussDecomposition::new(&sub.csr);
    let kq = truss.max_trussness_at(&sub.csr, lq)?;
    let k = params.k.min(kq);
    if k < 3 {
        return None;
    }
    let mut community = truss.triangle_connected_community(&sub.csr, lq, k)?;

    // Greedy attribute peeling: drop the non-attributed node whose removal
    // keeps a valid k-truss community around q, as long as the attribute
    // score improves.
    let score = |members: &[NodeId]| -> f64 {
        let with = members
            .iter()
            .filter(|&&l| g.has_attr(sub.parent(l), attr))
            .count();
        with as f64 / members.len() as f64
    };
    let mut current = score(&community);
    for _round in 0..params.max_rounds {
        let mut improved = false;
        // Candidates: members without the attribute, fewest-neighbors first.
        let mut candidates: Vec<NodeId> = community
            .iter()
            .copied()
            .filter(|&l| l != lq && !g.has_attr(sub.parent(l), attr))
            .collect();
        candidates.sort_unstable_by_key(|&l| sub.csr.degree(l));
        candidates.truncate(params.max_candidates_per_round);
        for cand in candidates {
            let keep: Vec<NodeId> = community.iter().copied().filter(|&l| l != cand).collect();
            if keep.len() < 3 {
                continue;
            }
            let trial_sub = Subgraph::induced(&sub.csr, &keep);
            let tlq = match trial_sub.local(lq) {
                Some(x) => x,
                None => continue,
            };
            let tt = TrussDecomposition::new(&trial_sub.csr);
            if tt.max_trussness_at(&trial_sub.csr, tlq).unwrap_or(0) < k {
                continue;
            }
            if let Some(tc) = tt.triangle_connected_community(&trial_sub.csr, tlq, k) {
                let mapped: Vec<NodeId> = tc.iter().map(|&l| trial_sub.parent(l)).collect();
                let s = score(&mapped);
                if s > current {
                    community = mapped;
                    current = s;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            break;
        }
    }

    let mut out: Vec<NodeId> = community.iter().map(|&l| sub.parent(l)).collect();
    out.sort_unstable();
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::{AttrInterner, AttrTable, GraphBuilder};

    /// Two K4s sharing an edge: {0,1,2,3} (attr A) and {2,3,4,5}
    /// (4, 5 attr B).
    fn fixture() -> AttributedGraph {
        let mut b = GraphBuilder::new(6);
        for u in 0..4u32 {
            for v in u + 1..4 {
                b.add_edge(u, v);
            }
        }
        for &(u, v) in &[(2, 4), (2, 5), (3, 4), (3, 5), (4, 5)] {
            b.add_edge(u, v);
        }
        let mut i = AttrInterner::new();
        let a = i.intern("A");
        let bb = i.intern("B");
        let attrs =
            AttrTable::from_lists(vec![vec![a], vec![a], vec![a], vec![a], vec![bb], vec![bb]]);
        AttributedGraph::from_parts(b.build(), attrs, i)
    }

    #[test]
    fn finds_truss_community_and_peels_off_attribute_outsiders() {
        let g = fixture();
        let c = atc_query(&g, 0, 0, AtcParams::default()).unwrap();
        // The peeling should drop 4 and 5 (attr B) while keeping a 4-truss.
        assert_eq!(c, vec![0, 1, 2, 3]);
    }

    #[test]
    fn community_always_contains_query() {
        let g = fixture();
        for q in 0..6u32 {
            for attr in 0..2u32 {
                if let Some(c) = atc_query(&g, q, attr, AtcParams::default()) {
                    assert!(c.contains(&q), "q={q} attr={attr}");
                    assert!(c.len() >= 3);
                }
            }
        }
    }

    #[test]
    fn sparse_region_has_no_truss() {
        let mut b = GraphBuilder::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3)] {
            b.add_edge(u, v);
        }
        let g = AttributedGraph::unattributed(b.build());
        assert!(atc_query(&g, 1, 0, AtcParams::default()).is_none());
    }

    #[test]
    fn distance_bound_restricts_the_neighborhood() {
        let g = fixture();
        // d = 1 around node 0: nodes {0,1,2,3} (node 4,5 are 2 hops away).
        let c = atc_query(
            &g,
            0,
            0,
            AtcParams {
                k: 4,
                d: 1,
                ..AtcParams::default()
            },
        )
        .unwrap();
        assert_eq!(c, vec![0, 1, 2, 3]);
    }
}
