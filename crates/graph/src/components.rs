//! Connected-component utilities.

use crate::csr::Csr;
use crate::NodeId;

/// Labels each node with a component id in `0..num_components` (BFS order).
pub fn connected_components(g: &Csr) -> (usize, Vec<u32>) {
    let n = g.num_nodes();
    let mut label = vec![u32::MAX; n];
    let mut queue = Vec::new();
    let mut next = 0u32;
    for start in 0..n as NodeId {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = next;
        queue.push(start);
        while let Some(v) = queue.pop() {
            for &u in g.neighbors(v) {
                if label[u as usize] == u32::MAX {
                    label[u as usize] = next;
                    queue.push(u);
                }
            }
        }
        next += 1;
    }
    (next as usize, label)
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Csr) -> bool {
    g.num_nodes() == 0 || connected_components(g).0 == 1
}

/// Nodes of the largest connected component, sorted ascending.
pub fn largest_component(g: &Csr) -> Vec<NodeId> {
    let (k, label) = connected_components(g);
    if k == 0 {
        return Vec::new();
    }
    let mut sizes = vec![0usize; k];
    for &l in &label {
        sizes[l as usize] += 1;
    }
    // First-seen component wins ties (max_by_key would pick the last).
    let mut best = 0u32;
    for (i, &s) in sizes.iter().enumerate() {
        if s > sizes[best as usize] {
            best = i as u32;
        }
    }
    (0..g.num_nodes() as NodeId)
        .filter(|&v| label[v as usize] == best)
        .collect()
}

/// Nodes reachable from `start` while staying inside the `keep` mask
/// (`keep[v]` true means `v` may be visited). Sorted ascending.
pub fn component_of_within(g: &Csr, start: NodeId, keep: &[bool]) -> Vec<NodeId> {
    if !keep[start as usize] {
        return Vec::new();
    }
    let mut seen = vec![false; g.num_nodes()];
    seen[start as usize] = true;
    let mut stack = vec![start];
    let mut out = vec![start];
    while let Some(v) = stack.pop() {
        for &u in g.neighbors(v) {
            if keep[u as usize] && !seen[u as usize] {
                seen[u as usize] = true;
                stack.push(u);
                out.push(u);
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn two_triangles() -> Csr {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn counts_components() {
        let g = two_triangles();
        let (k, label) = connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(label[0], label[2]);
        assert_ne!(label[0], label[3]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn largest_component_breaks_ties_deterministically() {
        let g = two_triangles();
        let c = largest_component(&g);
        assert_eq!(c.len(), 3);
        assert_eq!(c, vec![0, 1, 2]); // first-seen component wins ties
    }

    #[test]
    fn largest_component_prefers_bigger() {
        let mut b = GraphBuilder::new(7);
        for (u, v) in [(0, 1), (2, 3), (3, 4), (4, 5), (5, 6)] {
            b.add_edge(u, v);
        }
        let c = largest_component(&b.build());
        assert_eq!(c, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn component_within_mask() {
        let g = two_triangles();
        let mut keep = vec![true; 6];
        keep[1] = false;
        let c = component_of_within(&g, 0, &keep);
        assert_eq!(c, vec![0, 2]);
        assert!(component_of_within(&g, 1, &keep).is_empty());
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = GraphBuilder::new(0).build();
        assert!(is_connected(&g));
        assert!(largest_component(&g).is_empty());
    }
}
