//! Induced-subgraph extraction with node remapping.

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::{AttrTable, AttributedGraph, NodeId};

/// An induced subgraph together with the mapping between its local dense ids
/// and the parent graph's ids.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// Topology over local ids `0..members.len()`.
    pub csr: Csr,
    /// `members[local] = parent id`; sorted ascending.
    pub members: Vec<NodeId>,
    /// Sparse inverse map: `local_of[parent] = local + 1`, 0 if absent.
    local_of: Vec<u32>,
}

impl Subgraph {
    /// Extracts the subgraph of `g` induced by `members`.
    ///
    /// `members` must be sorted ascending and duplicate-free (checked with a
    /// debug assertion).
    pub fn induced(g: &Csr, members: &[NodeId]) -> Self {
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "members unsorted");
        let mut local_of = vec![0u32; g.num_nodes()];
        for (i, &v) in members.iter().enumerate() {
            local_of[v as usize] = i as u32 + 1;
        }
        let mut b = GraphBuilder::new(members.len());
        for (i, &v) in members.iter().enumerate() {
            for &u in g.neighbors(v) {
                let lu = local_of[u as usize];
                if lu != 0 && (lu - 1) as usize > i {
                    b.add_edge(i as NodeId, lu - 1);
                }
            }
        }
        Self {
            csr: b.build(),
            members: members.to_vec(),
            local_of,
        }
    }

    /// Local id of parent node `v`, if a member.
    #[inline]
    pub fn local(&self, v: NodeId) -> Option<NodeId> {
        match self.local_of.get(v as usize) {
            Some(&x) if x != 0 => Some(x - 1),
            _ => None,
        }
    }

    /// Parent id of local node `l`.
    #[inline]
    pub fn parent(&self, l: NodeId) -> NodeId {
        self.members[l as usize]
    }

    /// Number of member nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the subgraph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Re-attaches the parent graph's attributes, producing a standalone
    /// [`AttributedGraph`] over local ids.
    pub fn to_attributed(&self, parent: &AttributedGraph) -> AttributedGraph {
        let lists: Vec<Vec<_>> = self
            .members
            .iter()
            .map(|&v| parent.node_attrs(v).to_vec())
            .collect();
        AttributedGraph::from_parts(
            self.csr.clone(),
            AttrTable::from_lists(lists),
            parent.interner().clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn house() -> Csr {
        // 0-1-2-3-4 path plus chord 1-3.
        let mut b = GraphBuilder::new(5);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)] {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn induces_only_internal_edges() {
        let g = house();
        let s = Subgraph::induced(&g, &[1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.csr.num_edges(), 3); // 1-2, 2-3, 1-3
        assert_eq!(s.local(1), Some(0));
        assert_eq!(s.local(0), None);
        assert_eq!(s.parent(2), 3);
    }

    #[test]
    fn empty_members() {
        let g = house();
        let s = Subgraph::induced(&g, &[]);
        assert!(s.is_empty());
        assert_eq!(s.csr.num_nodes(), 0);
    }

    #[test]
    fn attributes_follow_members() {
        let g = house();
        let attrs = AttrTable::from_lists(vec![vec![0], vec![1], vec![0, 1], vec![], vec![0]]);
        let ag = AttributedGraph::from_parts(g, attrs, crate::AttrInterner::new());
        let s = Subgraph::induced(ag.csr(), &[2, 4]);
        let sub = s.to_attributed(&ag);
        assert_eq!(sub.node_attrs(0), &[0, 1]); // parent node 2
        assert_eq!(sub.node_attrs(1), &[0]); // parent node 4
    }
}
