//! Compressed sparse-row adjacency storage for undirected graphs.

use crate::bytes::Segment;
use crate::NodeId;

/// An immutable undirected graph in compressed sparse-row form.
///
/// Each undirected edge `{u, v}` is stored twice (once in each endpoint's
/// neighbor list); neighbor lists are sorted ascending, enabling binary-search
/// adjacency tests and deterministic iteration.
///
/// Storage lives in [`Segment`]s: heap-owned when built in RAM, zero-copy
/// views when loaded from a memory-mapped CODX v3 artifact. Every accessor
/// behaves identically either way.
#[derive(Clone, Debug, Default)]
pub struct Csr {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors` for node `v`.
    offsets: Segment<usize>,
    /// Concatenated, per-node-sorted neighbor lists.
    neighbors: Segment<NodeId>,
}

impl Csr {
    /// Builds a CSR from per-node sorted adjacency data.
    ///
    /// `offsets` must have length `n + 1`, start at 0, end at
    /// `neighbors.len()`, and be non-decreasing; each node's slice must be
    /// sorted and free of duplicates and self-loops. These invariants are
    /// checked with debug assertions (the [`crate::builder::GraphBuilder`]
    /// establishes them by construction).
    pub fn from_raw(offsets: Vec<usize>, neighbors: Vec<NodeId>) -> Self {
        Self::from_segments(offsets.into(), neighbors.into())
    }

    /// Builds a CSR over pre-validated storage (owned or mapped). Same
    /// invariants as [`Csr::from_raw`], checked with debug assertions;
    /// the mapped loader additionally validates them eagerly so corrupt
    /// files surface as typed errors, not debug panics.
    pub fn from_segments(offsets: Segment<usize>, neighbors: Segment<NodeId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(offsets.first().copied(), Some(0));
        debug_assert_eq!(offsets.last().copied(), Some(neighbors.len()));
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        #[cfg(debug_assertions)]
        for v in 0..offsets.len() - 1 {
            let s = &neighbors[offsets[v]..offsets[v + 1]];
            debug_assert!(s.windows(2).all(|w| w[0] < w[1]), "unsorted/dup neighbors");
            debug_assert!(!s.contains(&(v as NodeId)), "self-loop");
        }
        Self { offsets, neighbors }
    }

    /// The raw offset array (`n + 1` entries), for persistence.
    #[inline]
    pub fn raw_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw concatenated neighbor array (`2 |E|` entries), for
    /// persistence.
    #[inline]
    pub fn raw_neighbors(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether `{u, v}` is an edge (binary search; `O(log deg(u))`).
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over every undirected edge once, as `(u, v)` with `u < v`,
    /// in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes() as NodeId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The half-edge index range of node `v` (for parallel arrays aligned
    /// with the neighbor storage, e.g. per-directed-edge weights).
    #[inline]
    pub fn neighbor_range(&self, v: NodeId) -> std::ops::Range<usize> {
        let v = v as usize;
        self.offsets[v]..self.offsets[v + 1]
    }

    /// Total length of the neighbor array (`2 |E|`).
    #[inline]
    pub fn num_half_edges(&self) -> usize {
        self.neighbors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path4() -> Csr {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = path4();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = path4();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_nodes_have_zero_degree() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 4);
        let g = b.build();
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.neighbors(2), &[] as &[NodeId]);
    }

    #[test]
    fn neighbor_range_aligns_with_neighbors() {
        let g = path4();
        let r = g.neighbor_range(1);
        assert_eq!(r.len(), 2);
        assert_eq!(g.num_half_edges(), 6);
    }
}
