//! Categorical node attributes: dense id interning and per-node storage.

use crate::bytes::Segment;
use crate::fxhash::FxHashMap;
use crate::{AttrId, NodeId};

/// Maps attribute names (e.g. `"DB"`, `"ML"`) to dense [`AttrId`]s.
#[derive(Clone, Debug, Default)]
pub struct AttrInterner {
    names: Vec<String>,
    ids: FxHashMap<String, AttrId>,
}

impl AttrInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as AttrId;
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up the id of `name`, if interned.
    pub fn get(&self, name: &str) -> Option<AttrId> {
        self.ids.get(name).copied()
    }

    /// The name of `id`, if in range.
    pub fn name(&self, id: AttrId) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned attributes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no attribute has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Per-node attribute sets in CSR-like flattened storage.
///
/// Each node's attribute list is sorted ascending, enabling binary-search
/// membership tests.
#[derive(Clone, Debug, Default)]
pub struct AttrTable {
    offsets: Segment<usize>,
    values: Segment<AttrId>,
}

impl AttrTable {
    /// A table with no attributes for `num_nodes` nodes.
    pub fn empty(num_nodes: usize) -> Self {
        Self {
            offsets: vec![0; num_nodes + 1].into(),
            values: Segment::new(),
        }
    }

    /// Builds a table over pre-validated storage (owned or mapped).
    /// `offsets` must have length `n + 1`, start at 0, end at
    /// `values.len()`, and be non-decreasing.
    pub fn from_segments(offsets: Segment<usize>, values: Segment<AttrId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(offsets.first().copied(), Some(0));
        debug_assert_eq!(offsets.last().copied(), Some(values.len()));
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Self { offsets, values }
    }

    /// The raw offset array (`n + 1` entries), for persistence.
    #[inline]
    pub fn raw_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw concatenated attribute array, for persistence.
    #[inline]
    pub fn raw_values(&self) -> &[AttrId] {
        &self.values
    }

    /// Builds from per-node attribute lists (deduplicated and sorted here).
    pub fn from_lists(lists: Vec<Vec<AttrId>>) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let mut values = Vec::new();
        offsets.push(0);
        for mut list in lists {
            list.sort_unstable();
            list.dedup();
            values.extend_from_slice(&list);
            offsets.push(values.len());
        }
        Self {
            offsets: offsets.into(),
            values: values.into(),
        }
    }

    /// Builds a table where every node has exactly one attribute.
    pub fn single_per_node(labels: &[AttrId]) -> Self {
        let mut offsets = Vec::with_capacity(labels.len() + 1);
        offsets.push(0);
        for i in 1..=labels.len() {
            offsets.push(i);
        }
        Self {
            offsets: offsets.into(),
            values: labels.to_vec().into(),
        }
    }

    /// Number of nodes covered.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Sorted attribute list of node `v`.
    #[inline]
    pub fn of(&self, v: NodeId) -> &[AttrId] {
        let v = v as usize;
        &self.values[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether node `v` carries attribute `a`.
    #[inline]
    pub fn has(&self, v: NodeId, a: AttrId) -> bool {
        self.of(v).binary_search(&a).is_ok()
    }

    /// Total number of (node, attribute) pairs.
    #[inline]
    pub fn total_pairs(&self) -> usize {
        self.values.len()
    }

    /// One more than the largest attribute id present, or 0 if none.
    pub fn max_attr_plus_one(&self) -> usize {
        self.values.iter().max().map_or(0, |&a| a as usize + 1)
    }

    /// All nodes carrying attribute `a` (linear scan).
    pub fn nodes_with(&self, a: AttrId) -> Vec<NodeId> {
        (0..self.num_nodes() as NodeId)
            .filter(|&v| self.has(v, a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_round_trip() {
        let mut i = AttrInterner::new();
        let db = i.intern("DB");
        let ml = i.intern("ML");
        assert_ne!(db, ml);
        assert_eq!(i.intern("DB"), db);
        assert_eq!(i.get("ML"), Some(ml));
        assert_eq!(i.name(db), Some("DB"));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn table_from_lists_sorts_and_dedups() {
        let t = AttrTable::from_lists(vec![vec![2, 0, 2], vec![], vec![1]]);
        assert_eq!(t.of(0), &[0, 2]);
        assert_eq!(t.of(1), &[] as &[AttrId]);
        assert!(t.has(2, 1));
        assert!(!t.has(2, 0));
        assert_eq!(t.total_pairs(), 3);
        assert_eq!(t.max_attr_plus_one(), 3);
    }

    #[test]
    fn single_per_node_assigns_one_label() {
        let t = AttrTable::single_per_node(&[5, 3, 5]);
        assert_eq!(t.of(0), &[5]);
        assert_eq!(t.of(1), &[3]);
        assert_eq!(t.nodes_with(5), vec![0, 2]);
    }

    #[test]
    fn empty_table() {
        let t = AttrTable::empty(3);
        assert_eq!(t.num_nodes(), 3);
        assert!(t.of(1).is_empty());
        assert_eq!(t.max_attr_plus_one(), 0);
    }
}
