//! Byte-backed array storage: an `mmap` wrapper and typed [`Segment`]s.
//!
//! The out-of-core artifact path (CODX v3) persists every large array —
//! CSR offsets/targets, attribute tables, HIMOR level tables — as an
//! 8-byte-aligned section of one file. A [`Bytes`] buffer holds the whole
//! file either owned in RAM or memory-mapped read-only, and a
//! [`Segment<T>`] is a typed view into it that derefs to `&[T]` exactly
//! like the `Vec<T>` it replaces. In-RAM construction paths keep using
//! owned vectors (`Segment::from(vec)`); the mapped loader hands out
//! zero-copy views into the shared mapping, so N processes serving the
//! same artifact file share one page-cache copy of the index.
//!
//! # Safety invariants (see DESIGN §15)
//!
//! * Mapped views are only created over sections whose byte range lies
//!   inside the buffer and whose start is aligned to `align_of::<T>()`;
//!   [`Segment::view`] checks both and refuses otherwise.
//! * Element types are [`Pod`]: plain-old-data with no invalid bit
//!   patterns, so arbitrary (CRC-verified) file bytes are always a valid
//!   `[T]`.
//! * Mappings are `PROT_READ`/`MAP_PRIVATE`: nothing in-process can write
//!   through them. Truncating the artifact file *externally* while mapped
//!   is undefined (SIGBUS on touch), which is why saves go through an
//!   atomic temp+rename — the old inode stays valid for live mappings.

use std::fmt;
use std::fs::File;
use std::io;
use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

/// Marker for plain-old-data element types safe to reinterpret from
/// arbitrary aligned bytes.
///
/// # Safety
///
/// Implementors must have no padding, no invalid bit patterns, and no
/// drop glue: every properly aligned byte sequence of `size_of::<T>()`
/// bytes is a valid `T`.
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

// Safety: fixed-width unsigned integers accept every bit pattern.
unsafe impl Pod for u8 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
// Safety: on 64-bit targets `usize` is layout-identical to `u64`. The
// mapped CODX v3 path reinterprets persisted little-endian u64 offset
// arrays as `&[usize]` and is only compiled where that holds; other
// targets fall back to eager (owned) loads.
#[cfg(target_pointer_width = "64")]
unsafe impl Pod for usize {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 0x1;
    pub const MAP_PRIVATE: i32 = 0x2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub fn map_failed(p: *mut c_void) -> bool {
        p as isize == -1
    }
}

/// A read-only private memory mapping of an entire file.
///
/// Unmapped on drop. The mapping outlives the `File` used to create it
/// (POSIX keeps the pages valid after `close`).
#[cfg(unix)]
struct MmapRegion {
    ptr: *const u8,
    len: usize,
}

#[cfg(unix)]
impl MmapRegion {
    fn map(file: &File, len: usize) -> io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        debug_assert!(len > 0, "zero-length maps are rejected by mmap");
        // Safety: we request a fresh PROT_READ/MAP_PRIVATE mapping of a
        // file we hold open; the kernel picks the address. Failure is
        // reported via MAP_FAILED and checked below.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if sys::map_failed(ptr) {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            ptr: ptr as *const u8,
            len,
        })
    }

    fn as_slice(&self) -> &[u8] {
        // Safety: ptr/len describe a live PROT_READ mapping owned by self.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(unix)]
impl Drop for MmapRegion {
    fn drop(&mut self) {
        // Safety: ptr/len came from a successful mmap and are unmapped
        // exactly once. munmap failure on a valid region is unreachable;
        // ignore the return value rather than panic in drop.
        unsafe {
            let _ = sys::munmap(self.ptr as *mut _, self.len);
        }
    }
}

// Safety: the mapping is immutable (PROT_READ, MAP_PRIVATE) for its whole
// lifetime, so shared references from any thread are sound.
#[cfg(unix)]
unsafe impl Send for MmapRegion {}
#[cfg(unix)]
unsafe impl Sync for MmapRegion {}

enum Backing {
    Owned(Vec<u8>),
    #[cfg(unix)]
    Mapped(MmapRegion),
}

/// An immutable byte buffer, either owned or memory-mapped.
pub struct Bytes {
    backing: Backing,
}

impl Bytes {
    /// Wraps an owned byte vector.
    pub fn from_vec(v: Vec<u8>) -> Self {
        Self {
            backing: Backing::Owned(v),
        }
    }

    /// Maps `path` read-only. On unix this is a true `mmap` (page-cache
    /// backed, demand-paged); elsewhere the file is read into RAM, which
    /// keeps the API total at the cost of residency.
    pub fn map_file(path: &Path) -> io::Result<Self> {
        #[cfg(unix)]
        {
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            if len == 0 {
                return Ok(Self::from_vec(Vec::new()));
            }
            let len = usize::try_from(len)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
            Ok(Self {
                backing: Backing::Mapped(MmapRegion::map(&file, len)?),
            })
        }
        #[cfg(not(unix))]
        {
            Ok(Self::from_vec(std::fs::read(path)?))
        }
    }

    /// Whether the buffer is a true memory mapping (demand-paged) rather
    /// than an owned in-RAM copy.
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            Backing::Owned(_) => false,
            #[cfg(unix)]
            Backing::Mapped(_) => true,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.backing {
            Backing::Owned(v) => v,
            #[cfg(unix)]
            Backing::Mapped(m) => m.as_slice(),
        }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bytes")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// A typed immutable array: an owned `Vec<T>` or a zero-copy view into a
/// shared [`Bytes`] buffer. Derefs to `&[T]` either way, so the structs
/// that hold one ([`crate::Csr`], [`crate::AttrTable`], HIMOR tables) are
/// oblivious to where their storage lives.
pub enum Segment<T: Pod> {
    /// Heap-owned storage — the in-RAM construction path.
    Owned(Vec<T>),
    /// A view into `bytes[byte_off ..]` of `len` elements. Construction
    /// via [`Segment::view`] guarantees bounds and alignment.
    View {
        bytes: Arc<Bytes>,
        byte_off: usize,
        len: usize,
    },
}

impl<T: Pod> Segment<T> {
    /// An empty owned segment.
    pub fn new() -> Self {
        Segment::Owned(Vec::new())
    }

    /// A zero-copy view of `len` elements starting at `byte_off` in
    /// `bytes`. Fails (with a static reason) when the range escapes the
    /// buffer or the start is misaligned for `T` — the caller maps that
    /// into its corruption-error taxonomy.
    pub fn view(bytes: Arc<Bytes>, byte_off: usize, len: usize) -> Result<Self, &'static str> {
        let elem = std::mem::size_of::<T>();
        let nbytes = elem.checked_mul(len).ok_or("section length overflow")?;
        let end = byte_off
            .checked_add(nbytes)
            .ok_or("section offset overflow")?;
        if end > bytes.len() {
            return Err("section extends past end of buffer");
        }
        let ptr = bytes.as_ptr() as usize + byte_off;
        if ptr % std::mem::align_of::<T>() != 0 {
            return Err("section misaligned for element type");
        }
        Ok(Segment::View {
            bytes,
            byte_off,
            len,
        })
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            Segment::Owned(v) => v,
            Segment::View {
                bytes,
                byte_off,
                len,
            } => {
                // Safety: `view` checked bounds and alignment at
                // construction; T is Pod so any bytes are a valid value;
                // the Arc keeps the buffer alive for the borrow.
                unsafe {
                    std::slice::from_raw_parts(bytes.as_ptr().add(*byte_off) as *const T, *len)
                }
            }
        }
    }

    /// Whether this segment borrows a mapped buffer (vs owning its data).
    pub fn is_view(&self) -> bool {
        matches!(self, Segment::View { .. })
    }

    /// Mutable access, converting a view into owned storage by copying
    /// first (the mutation pipeline patches in place; patched indexes are
    /// owned from then on).
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        if let Segment::View { .. } = self {
            *self = Segment::Owned(self.as_slice().to_vec());
        }
        match self {
            Segment::Owned(v) => v,
            Segment::View { .. } => unreachable!("converted to owned above"),
        }
    }

    /// Extracts an owned vector (copying if this is a view).
    pub fn into_vec(self) -> Vec<T> {
        match self {
            Segment::Owned(v) => v,
            view @ Segment::View { .. } => view.as_slice().to_vec(),
        }
    }
}

impl<T: Pod> Default for Segment<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Pod> From<Vec<T>> for Segment<T> {
    fn from(v: Vec<T>) -> Self {
        Segment::Owned(v)
    }
}

impl<T: Pod> Deref for Segment<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> Clone for Segment<T> {
    fn clone(&self) -> Self {
        match self {
            Segment::Owned(v) => Segment::Owned(v.clone()),
            Segment::View {
                bytes,
                byte_off,
                len,
            } => Segment::View {
                bytes: Arc::clone(bytes),
                byte_off: *byte_off,
                len: *len,
            },
        }
    }
}

// Debug shows the elements, not the backing, so derived Debug on the
// structs that hold a Segment prints the same whether owned or mapped.
impl<T: Pod + fmt::Debug> fmt::Debug for Segment<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl<T: Pod + PartialEq> PartialEq for Segment<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_round_trip() {
        let s: Segment<u32> = vec![1, 2, 3].into();
        assert_eq!(&s[..], &[1, 2, 3]);
        assert!(!s.is_view());
        assert_eq!(s.clone().into_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn view_reads_aligned_bytes() {
        let mut raw = Vec::new();
        for x in [7u32, 8, 9] {
            raw.extend_from_slice(&x.to_le_bytes());
        }
        let bytes = Arc::new(Bytes::from_vec(raw));
        let s: Segment<u32> = Segment::view(bytes, 0, 3).unwrap();
        assert!(s.is_view());
        assert_eq!(&s[..], &[7, 8, 9]);
    }

    #[test]
    fn view_rejects_out_of_bounds_and_misalignment() {
        let bytes = Arc::new(Bytes::from_vec(vec![0u8; 16]));
        assert!(Segment::<u64>::view(Arc::clone(&bytes), 0, 3).is_err());
        // An offset of 1 can never be 8-aligned regardless of the base
        // pointer — but 4-byte types at offset 2 may or may not align, so
        // only assert the always-misaligned case.
        assert!(Segment::<u64>::view(Arc::clone(&bytes), 1, 1).is_err());
    }

    #[test]
    fn to_mut_detaches_view() {
        let mut raw = Vec::new();
        for x in [1u32, 2] {
            raw.extend_from_slice(&x.to_le_bytes());
        }
        let bytes = Arc::new(Bytes::from_vec(raw));
        let mut s: Segment<u32> = Segment::view(bytes, 0, 2).unwrap();
        s.to_mut().push(3);
        assert!(!s.is_view());
        assert_eq!(&s[..], &[1, 2, 3]);
    }

    #[test]
    fn map_file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cod_bytes_test_{}.bin", std::process::id()));
        std::fs::write(&path, [1u8, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let b = Bytes::map_file(&path).unwrap();
        assert_eq!(&b[..], &[1, 2, 3, 4, 5, 6, 7, 8]);
        drop(b);
        std::fs::remove_file(&path).ok();
    }
}
