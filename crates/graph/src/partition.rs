//! Graph partitioning for shard routing, plus partition-agreement metrics
//! (normalized mutual information and the adjusted Rand index).
//!
//! [`partition_components`] assigns every node to one of `num_shards`
//! shards such that no connected component is split across shards — the
//! property the multi-shard engine relies on: a community never crosses a
//! component boundary, so any query seeded in a shard can be answered
//! entirely by that shard's engine. Components are packed into shards by
//! greedy size-balancing (largest component first, into the currently
//! lightest shard), which bounds the heaviest shard at `max(largest
//! component, ~2× ideal)` for typical component-size distributions.
//!
//! The agreement metrics validate that the dataset presets' hierarchies
//! actually recover the planted ground-truth communities (a realism check
//! on the substitutions of `DESIGN.md` §5), and are available downstream
//! for evaluating flat cuts of a community hierarchy.

use crate::components::connected_components;
use crate::csr::Csr;
use crate::fxhash::FxHashMap;
use crate::NodeId;

/// A node-to-shard assignment produced by [`partition_components`].
///
/// Invariants (upheld by construction, property-tested in
/// `tests/` and the cod-core shard suite):
///
/// * **cover** — every node of the source graph has exactly one shard;
/// * **component-closed** — two nodes in the same connected component are
///   always in the same shard;
/// * **dense ids** — shard ids are `0..num_shards()`, each non-empty
///   unless the graph has fewer components than requested shards.
#[derive(Clone, Debug)]
pub struct Partition {
    /// `assignment[v]` = shard id of node `v`.
    assignment: Vec<u32>,
    /// Number of shards (some possibly empty).
    num_shards: u32,
    /// Nodes per shard, for balance introspection and metrics.
    sizes: Vec<usize>,
}

impl Partition {
    /// The trivial single-shard partition of an `n`-node graph.
    pub fn single(n: usize) -> Self {
        Self {
            assignment: vec![0; n],
            num_shards: 1,
            sizes: vec![n],
        }
    }

    /// The shard holding node `v`.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> u32 {
        self.assignment[v as usize]
    }

    /// The shard holding node `v`, or `None` if `v` is out of range.
    #[inline]
    pub fn shard_of_checked(&self, v: NodeId) -> Option<u32> {
        self.assignment.get(v as usize).copied()
    }

    /// Number of shards (fixed at construction; trailing shards may be
    /// empty when the graph has fewer components than shards).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.num_shards as usize
    }

    /// Number of nodes covered.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.assignment.len()
    }

    /// Nodes assigned to each shard.
    #[inline]
    pub fn shard_sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The full assignment vector (`assignment[v]` = shard of `v`).
    #[inline]
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// The nodes of shard `s`, ascending.
    pub fn nodes_of_shard(&self, s: u32) -> Vec<NodeId> {
        (0..self.assignment.len() as NodeId)
            .filter(|&v| self.assignment[v as usize] == s)
            .collect()
    }
}

/// Partitions a graph into at most `num_shards` shards without splitting
/// any connected component.
///
/// Components are sorted by size descending (component id breaks ties, so
/// the result is deterministic) and greedily placed on the currently
/// lightest shard — the classic LPT bin-packing heuristic. `num_shards`
/// is clamped to at least 1; a graph with fewer components than shards
/// leaves the trailing shards empty rather than splitting components.
pub fn partition_components(g: &Csr, num_shards: usize) -> Partition {
    let num_shards = num_shards.max(1).min(u32::MAX as usize) as u32;
    let n = g.num_nodes();
    if num_shards == 1 || n == 0 {
        return Partition {
            assignment: vec![0; n],
            num_shards,
            sizes: {
                let mut s = vec![0; num_shards as usize];
                s[0] = n;
                s
            },
        };
    }

    let (k, comp) = connected_components(g);
    let mut comp_sizes = vec![0usize; k];
    for &c in &comp {
        comp_sizes[c as usize] += 1;
    }

    // LPT: biggest components first, each onto the lightest shard.
    let mut order: Vec<u32> = (0..k as u32).collect();
    order.sort_by_key(|&c| (std::cmp::Reverse(comp_sizes[c as usize]), c));

    let mut shard_of_comp = vec![0u32; k];
    let mut sizes = vec![0usize; num_shards as usize];
    for c in order {
        let mut lightest = 0usize;
        for s in 1..sizes.len() {
            if sizes[s] < sizes[lightest] {
                lightest = s;
            }
        }
        shard_of_comp[c as usize] = lightest as u32;
        sizes[lightest] += comp_sizes[c as usize];
    }

    let assignment = comp.iter().map(|&c| shard_of_comp[c as usize]).collect();
    Partition {
        assignment,
        num_shards,
        sizes,
    }
}

/// Contingency table between two label vectors over the same nodes.
struct Contingency {
    joint: FxHashMap<(u32, u32), u64>,
    a_sizes: FxHashMap<u32, u64>,
    b_sizes: FxHashMap<u32, u64>,
    n: u64,
}

impl Contingency {
    fn new(a: &[u32], b: &[u32]) -> Self {
        assert_eq!(a.len(), b.len(), "label vectors must align");
        let mut joint: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        let mut a_sizes: FxHashMap<u32, u64> = FxHashMap::default();
        let mut b_sizes: FxHashMap<u32, u64> = FxHashMap::default();
        for (&x, &y) in a.iter().zip(b) {
            *joint.entry((x, y)).or_insert(0) += 1;
            *a_sizes.entry(x).or_insert(0) += 1;
            *b_sizes.entry(y).or_insert(0) += 1;
        }
        Self {
            joint,
            a_sizes,
            b_sizes,
            n: a.len() as u64,
        }
    }
}

/// Normalized mutual information `I(A;B) / sqrt(H(A)·H(B))` in `[0, 1]`.
/// By convention two single-cluster partitions score 1 and comparisons
/// with a zero-entropy partition score 0 otherwise.
pub fn nmi(a: &[u32], b: &[u32]) -> f64 {
    let c = Contingency::new(a, b);
    if c.n == 0 {
        return 1.0;
    }
    let n = c.n as f64;
    let h = |sizes: &FxHashMap<u32, u64>| -> f64 {
        sizes
            .values()
            .map(|&s| {
                let p = s as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let ha = h(&c.a_sizes);
    let hb = h(&c.b_sizes);
    if ha == 0.0 && hb == 0.0 {
        return 1.0;
    }
    if ha == 0.0 || hb == 0.0 {
        return 0.0;
    }
    let mut mi = 0.0;
    for (&(x, y), &cnt) in &c.joint {
        let pxy = cnt as f64 / n;
        let px = c.a_sizes[&x] as f64 / n;
        let py = c.b_sizes[&y] as f64 / n;
        mi += pxy * (pxy / (px * py)).ln();
    }
    (mi / (ha * hb).sqrt()).clamp(0.0, 1.0)
}

/// Adjusted Rand index in `[-1, 1]` (1 = identical partitions, ~0 =
/// chance agreement). Returns 1 when both partitions are trivial.
pub fn adjusted_rand_index(a: &[u32], b: &[u32]) -> f64 {
    let c = Contingency::new(a, b);
    if c.n < 2 {
        return 1.0;
    }
    let choose2 = |x: u64| -> f64 { (x * x.saturating_sub(1)) as f64 / 2.0 };
    let sum_ij: f64 = c.joint.values().map(|&x| choose2(x)).sum();
    let sum_a: f64 = c.a_sizes.values().map(|&x| choose2(x)).sum();
    let sum_b: f64 = c.b_sizes.values().map(|&x| choose2(x)).sum();
    let total = choose2(c.n);
    let expected = sum_a * sum_b / total;
    let max = (sum_a + sum_b) / 2.0;
    if (max - expected).abs() < 1e-12 {
        return 1.0;
    }
    (sum_ij - expected) / (max - expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn components_graph() -> Csr {
        // Components of sizes 4, 3, 2, 1 over 10 nodes.
        let mut b = GraphBuilder::new(10);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (7, 8)] {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn partition_is_a_cover() {
        let g = components_graph();
        let p = partition_components(&g, 3);
        assert_eq!(p.num_nodes(), 10);
        assert_eq!(p.num_shards(), 3);
        for v in 0..10 {
            assert!(p.shard_of(v) < 3);
        }
        assert_eq!(p.shard_sizes().iter().sum::<usize>(), 10);
    }

    #[test]
    fn components_are_never_split() {
        let g = components_graph();
        let (_, comp) = connected_components(&g);
        for shards in 1..=5 {
            let p = partition_components(&g, shards);
            for (u, v) in g.edges() {
                assert_eq!(p.shard_of(u), p.shard_of(v), "edge ({u},{v}) split");
            }
            for u in 0..10u32 {
                for v in 0..10u32 {
                    if comp[u as usize] == comp[v as usize] {
                        assert_eq!(p.shard_of(u), p.shard_of(v));
                    }
                }
            }
        }
    }

    #[test]
    fn lpt_balances_shards() {
        let g = components_graph();
        let p = partition_components(&g, 2);
        // Sizes 4,3,2,1 pack as {4,1} vs {3,2}: perfectly balanced.
        assert_eq!(p.shard_sizes(), &[5, 5]);
    }

    #[test]
    fn singleton_graph() {
        let g = GraphBuilder::new(1).build();
        let p = partition_components(&g, 4);
        assert_eq!(p.num_nodes(), 1);
        assert_eq!(p.shard_of(0), 0);
        assert_eq!(p.shard_sizes().iter().sum::<usize>(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let p = partition_components(&g, 4);
        assert_eq!(p.num_nodes(), 0);
        assert_eq!(p.num_shards(), 4);
        assert_eq!(p.shard_sizes().iter().sum::<usize>(), 0);
        assert!(p.shard_of_checked(0).is_none());
    }

    #[test]
    fn more_shards_than_components_leaves_empties() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let p = partition_components(&b.build(), 8);
        assert_eq!(p.num_shards(), 8);
        assert_eq!(p.shard_sizes()[0], 3);
        assert!(p.shard_sizes()[1..].iter().all(|&s| s == 0));
    }

    #[test]
    fn single_is_trivial() {
        let p = Partition::single(5);
        assert_eq!(p.num_shards(), 1);
        assert!(p.nodes_of_shard(0).len() == 5);
    }

    #[test]
    fn identical_partitions_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabeling_does_not_matter() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![5, 5, 9, 9, 7, 7];
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_score_low() {
        // Alternating vs block labels over 8 nodes: knowing one tells you
        // nothing about the other.
        let a = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let b = vec![0, 0, 0, 0, 1, 1, 1, 1];
        assert!(nmi(&a, &b) < 0.01);
        assert!(adjusted_rand_index(&a, &b).abs() < 0.2);
    }

    #[test]
    fn trivial_partition_conventions() {
        let one = vec![0, 0, 0, 0];
        let many = vec![0, 1, 2, 3];
        assert!((nmi(&one, &one) - 1.0).abs() < 1e-12);
        assert_eq!(nmi(&one, &many), 0.0);
        assert!((adjusted_rand_index(&one, &one) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_agreement_is_between_zero_and_one() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 1, 1];
        let x = nmi(&a, &b);
        assert!(x > 0.2 && x < 1.0, "nmi {x}");
        let r = adjusted_rand_index(&a, &b);
        assert!(r > 0.2 && r < 1.0, "ari {r}");
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let _ = nmi(&[0, 1], &[0]);
    }
}
