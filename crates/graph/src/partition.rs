//! Partition-agreement metrics: normalized mutual information and the
//! adjusted Rand index.
//!
//! Used to validate that the dataset presets' hierarchies actually recover
//! the planted ground-truth communities (a realism check on the
//! substitutions of `DESIGN.md` §5), and available to downstream users for
//! evaluating flat cuts of a community hierarchy.

use crate::fxhash::FxHashMap;

/// Contingency table between two label vectors over the same nodes.
struct Contingency {
    joint: FxHashMap<(u32, u32), u64>,
    a_sizes: FxHashMap<u32, u64>,
    b_sizes: FxHashMap<u32, u64>,
    n: u64,
}

impl Contingency {
    fn new(a: &[u32], b: &[u32]) -> Self {
        assert_eq!(a.len(), b.len(), "label vectors must align");
        let mut joint: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        let mut a_sizes: FxHashMap<u32, u64> = FxHashMap::default();
        let mut b_sizes: FxHashMap<u32, u64> = FxHashMap::default();
        for (&x, &y) in a.iter().zip(b) {
            *joint.entry((x, y)).or_insert(0) += 1;
            *a_sizes.entry(x).or_insert(0) += 1;
            *b_sizes.entry(y).or_insert(0) += 1;
        }
        Self {
            joint,
            a_sizes,
            b_sizes,
            n: a.len() as u64,
        }
    }
}

/// Normalized mutual information `I(A;B) / sqrt(H(A)·H(B))` in `[0, 1]`.
/// By convention two single-cluster partitions score 1 and comparisons
/// with a zero-entropy partition score 0 otherwise.
pub fn nmi(a: &[u32], b: &[u32]) -> f64 {
    let c = Contingency::new(a, b);
    if c.n == 0 {
        return 1.0;
    }
    let n = c.n as f64;
    let h = |sizes: &FxHashMap<u32, u64>| -> f64 {
        sizes
            .values()
            .map(|&s| {
                let p = s as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let ha = h(&c.a_sizes);
    let hb = h(&c.b_sizes);
    if ha == 0.0 && hb == 0.0 {
        return 1.0;
    }
    if ha == 0.0 || hb == 0.0 {
        return 0.0;
    }
    let mut mi = 0.0;
    for (&(x, y), &cnt) in &c.joint {
        let pxy = cnt as f64 / n;
        let px = c.a_sizes[&x] as f64 / n;
        let py = c.b_sizes[&y] as f64 / n;
        mi += pxy * (pxy / (px * py)).ln();
    }
    (mi / (ha * hb).sqrt()).clamp(0.0, 1.0)
}

/// Adjusted Rand index in `[-1, 1]` (1 = identical partitions, ~0 =
/// chance agreement). Returns 1 when both partitions are trivial.
pub fn adjusted_rand_index(a: &[u32], b: &[u32]) -> f64 {
    let c = Contingency::new(a, b);
    if c.n < 2 {
        return 1.0;
    }
    let choose2 = |x: u64| -> f64 { (x * x.saturating_sub(1)) as f64 / 2.0 };
    let sum_ij: f64 = c.joint.values().map(|&x| choose2(x)).sum();
    let sum_a: f64 = c.a_sizes.values().map(|&x| choose2(x)).sum();
    let sum_b: f64 = c.b_sizes.values().map(|&x| choose2(x)).sum();
    let total = choose2(c.n);
    let expected = sum_a * sum_b / total;
    let max = (sum_a + sum_b) / 2.0;
    if (max - expected).abs() < 1e-12 {
        return 1.0;
    }
    (sum_ij - expected) / (max - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabeling_does_not_matter() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![5, 5, 9, 9, 7, 7];
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_score_low() {
        // Alternating vs block labels over 8 nodes: knowing one tells you
        // nothing about the other.
        let a = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let b = vec![0, 0, 0, 0, 1, 1, 1, 1];
        assert!(nmi(&a, &b) < 0.01);
        assert!(adjusted_rand_index(&a, &b).abs() < 0.2);
    }

    #[test]
    fn trivial_partition_conventions() {
        let one = vec![0, 0, 0, 0];
        let many = vec![0, 1, 2, 3];
        assert!((nmi(&one, &one) - 1.0).abs() < 1e-12);
        assert_eq!(nmi(&one, &many), 0.0);
        assert!((adjusted_rand_index(&one, &one) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_agreement_is_between_zero_and_one() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 1, 1];
        let x = nmi(&a, &b);
        assert!(x > 0.2 && x < 1.0, "nmi {x}");
        let r = adjusted_rand_index(&a, &b);
        assert!(r > 0.2 && r < 1.0, "ari {r}");
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let _ = nmi(&[0, 1], &[0]);
    }
}
