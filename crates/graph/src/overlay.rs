//! Delta-overlay adjacency: a mutable edge layer over an immutable [`Csr`].
//!
//! `DynamicCod` used to keep the whole edge set in a `HashSet<(u, v)>` and
//! re-sort it into a fresh CSR on every rebuild — `O(|E| log |E|)` per
//! mutation epoch regardless of how few edges changed. [`DeltaCsr`] keeps
//! the last materialized CSR as an immutable base plus per-node sorted
//! insert/delete lists; adjacency queries merge the three on the fly, and
//! [`DeltaCsr::materialize`] rebuilds the CSR by a per-node sorted merge
//! (`O(|V| + |E|)`, no global sort, no hashing of untouched edges).

use crate::fxhash::FxHashMap;
use crate::{Csr, NodeId};

/// A CSR graph plus an overlay of inserted and removed edges.
///
/// The overlay supports node growth: nodes `base.num_nodes()..num_nodes`
/// have an empty base adjacency and live purely in the delta until the
/// next [`DeltaCsr::materialize`] + [`DeltaCsr::rebase`].
#[derive(Clone, Debug)]
pub struct DeltaCsr {
    base: Csr,
    /// Per-node sorted lists of overlay-inserted neighbors.
    added: FxHashMap<NodeId, Vec<NodeId>>,
    /// Per-node sorted lists of base neighbors masked out by the overlay.
    removed: FxHashMap<NodeId, Vec<NodeId>>,
    num_nodes: usize,
    num_edges: usize,
    /// Undirected edges currently represented in the overlay (inserted or
    /// masked), i.e. how far this view has drifted from `base`.
    delta_edges: usize,
}

impl DeltaCsr {
    /// Wraps an immutable CSR with an empty overlay.
    pub fn new(base: Csr) -> Self {
        let num_nodes = base.num_nodes();
        let num_edges = base.num_edges();
        Self {
            base,
            added: FxHashMap::default(),
            removed: FxHashMap::default(),
            num_nodes,
            num_edges,
            delta_edges: 0,
        }
    }

    /// Number of nodes, including overlay-grown ones.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges in the overlaid view.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Undirected edges represented in the overlay (inserted or masked):
    /// the drift between this view and its base CSR.
    #[inline]
    pub fn delta_edges(&self) -> usize {
        self.delta_edges
    }

    /// The immutable base CSR this overlay drapes over.
    #[inline]
    pub fn base(&self) -> &Csr {
        &self.base
    }

    /// Grows the node range so `v` is addressable. New nodes start isolated.
    pub fn ensure_node(&mut self, v: NodeId) {
        if (v as usize) >= self.num_nodes {
            self.num_nodes = v as usize + 1;
        }
    }

    #[inline]
    fn base_neighbors(&self, v: NodeId) -> &[NodeId] {
        if (v as usize) < self.base.num_nodes() {
            self.base.neighbors(v)
        } else {
            &[]
        }
    }

    #[inline]
    fn in_list(map: &FxHashMap<NodeId, Vec<NodeId>>, u: NodeId, v: NodeId) -> bool {
        map.get(&u).is_some_and(|l| l.binary_search(&v).is_ok())
    }

    /// Whether `{u, v}` is an edge of the overlaid view.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if Self::in_list(&self.added, u, v) {
            return true;
        }
        self.base_neighbors(u).binary_search(&v).is_ok() && !Self::in_list(&self.removed, u, v)
    }

    /// Degree of `v` in the overlaid view.
    pub fn degree(&self, v: NodeId) -> usize {
        let add = self.added.get(&v).map_or(0, Vec::len);
        let del = self.removed.get(&v).map_or(0, Vec::len);
        self.base_neighbors(v).len() + add - del
    }

    /// Neighbors of `v` in the overlaid view, sorted ascending.
    ///
    /// Merges the base list, the mask, and the insert list; `O(deg(v))`.
    pub fn neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.degree(v));
        self.for_each_neighbor(v, |u| out.push(u));
        out
    }

    /// Visits the neighbors of `v` in ascending order without allocating.
    pub fn for_each_neighbor(&self, v: NodeId, mut f: impl FnMut(NodeId)) {
        static EMPTY: Vec<NodeId> = Vec::new();
        let removed = self.removed.get(&v).unwrap_or(&EMPTY);
        let added = self.added.get(&v).unwrap_or(&EMPTY);
        let base = self.base_neighbors(v);
        let (mut i, mut j) = (0, 0);
        loop {
            let b = base[i..]
                .iter()
                .find(|u| removed.binary_search(u).is_err())
                .copied();
            // Advance `i` past masked entries the scan skipped.
            if let Some(bu) = b {
                while base[i] != bu {
                    i += 1;
                }
            } else {
                i = base.len();
            }
            match (b, added.get(j).copied()) {
                (Some(bu), Some(au)) if au < bu => {
                    f(au);
                    j += 1;
                }
                (Some(bu), _) => {
                    f(bu);
                    i += 1;
                }
                (None, Some(au)) => {
                    f(au);
                    j += 1;
                }
                (None, None) => break,
            }
        }
    }

    fn push_sorted(map: &mut FxHashMap<NodeId, Vec<NodeId>>, u: NodeId, v: NodeId) {
        let list = map.entry(u).or_default();
        if let Err(pos) = list.binary_search(&v) {
            list.insert(pos, v);
        }
    }

    fn drop_sorted(map: &mut FxHashMap<NodeId, Vec<NodeId>>, u: NodeId, v: NodeId) -> bool {
        if let Some(list) = map.get_mut(&u) {
            if let Ok(pos) = list.binary_search(&v) {
                list.remove(pos);
                if list.is_empty() {
                    map.remove(&u);
                }
                return true;
            }
        }
        false
    }

    /// Inserts the undirected edge `{u, v}`. Returns `false` (and changes
    /// nothing) if the edge already exists or `u == v`.
    pub fn insert(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v || self.has_edge(u, v) {
            return false;
        }
        self.ensure_node(u);
        self.ensure_node(v);
        let was_masked_base = Self::in_list(&self.removed, u, v);
        if was_masked_base {
            // Reinserting a base edge: unmask instead of double-recording.
            Self::drop_sorted(&mut self.removed, u, v);
            Self::drop_sorted(&mut self.removed, v, u);
            self.delta_edges -= 1;
        } else {
            Self::push_sorted(&mut self.added, u, v);
            Self::push_sorted(&mut self.added, v, u);
            self.delta_edges += 1;
        }
        self.num_edges += 1;
        true
    }

    /// Removes the undirected edge `{u, v}`. Returns `false` (and changes
    /// nothing) if the edge is absent.
    pub fn remove(&mut self, u: NodeId, v: NodeId) -> bool {
        if !self.has_edge(u, v) {
            return false;
        }
        if Self::in_list(&self.added, u, v) {
            // Removing an overlay insert: cancel it.
            Self::drop_sorted(&mut self.added, u, v);
            Self::drop_sorted(&mut self.added, v, u);
            self.delta_edges -= 1;
        } else {
            Self::push_sorted(&mut self.removed, u, v);
            Self::push_sorted(&mut self.removed, v, u);
            self.delta_edges += 1;
        }
        self.num_edges -= 1;
        true
    }

    /// Nodes whose adjacency differs from the base (sorted ascending).
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .added
            .keys()
            .chain(self.removed.keys())
            .copied()
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether the overlay is empty (the view equals the base CSR, modulo
    /// overlay-grown isolated nodes).
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.delta_edges == 0 && self.num_nodes == self.base.num_nodes()
    }

    /// Builds a fresh CSR of the overlaid view by a per-node sorted merge —
    /// no global edge sort, untouched nodes are copied wholesale.
    pub fn materialize(&self) -> Csr {
        let mut offsets = Vec::with_capacity(self.num_nodes + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::with_capacity(self.num_edges * 2);
        for v in 0..self.num_nodes as NodeId {
            if self.added.contains_key(&v) || self.removed.contains_key(&v) {
                self.for_each_neighbor(v, |u| neighbors.push(u));
            } else {
                neighbors.extend_from_slice(self.base_neighbors(v));
            }
            offsets.push(neighbors.len());
        }
        Csr::from_raw(offsets, neighbors)
    }

    /// Replaces the base with a freshly materialized CSR and clears the
    /// overlay. `new_base` must equal `self.materialize()` (checked by size
    /// in debug builds).
    pub fn rebase(&mut self, new_base: Csr) {
        debug_assert_eq!(new_base.num_nodes(), self.num_nodes);
        debug_assert_eq!(new_base.num_edges(), self.num_edges);
        self.base = new_base;
        self.added.clear();
        self.removed.clear();
        self.delta_edges = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path4() -> Csr {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn clean_overlay_mirrors_base() {
        let d = DeltaCsr::new(path4());
        assert!(d.is_clean());
        assert_eq!(d.num_nodes(), 4);
        assert_eq!(d.num_edges(), 3);
        assert_eq!(d.neighbors(1), vec![0, 2]);
        assert!(d.has_edge(2, 3));
        assert!(!d.has_edge(0, 3));
    }

    #[test]
    fn insert_and_remove_merge_into_iteration() {
        let mut d = DeltaCsr::new(path4());
        assert!(d.insert(0, 3));
        assert!(d.remove(1, 2));
        assert!(!d.insert(0, 3), "duplicate insert rejected");
        assert!(!d.remove(1, 2), "double remove rejected");
        assert!(!d.insert(2, 2), "self-loop rejected");
        assert_eq!(d.num_edges(), 3);
        assert_eq!(d.neighbors(0), vec![1, 3]);
        assert_eq!(d.neighbors(1), vec![0]);
        assert_eq!(d.neighbors(2), vec![3]);
        assert_eq!(d.neighbors(3), vec![0, 2]);
        assert_eq!(d.degree(0), 2);
        assert!(d.has_edge(3, 0));
        assert!(!d.has_edge(2, 1));
        assert_eq!(d.touched_nodes(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn reinsert_of_masked_base_edge_unmasks() {
        let mut d = DeltaCsr::new(path4());
        assert!(d.remove(1, 2));
        assert_eq!(d.delta_edges(), 1);
        assert!(d.insert(2, 1));
        assert_eq!(d.delta_edges(), 0);
        assert_eq!(d.neighbors(1), vec![0, 2]);
        assert_eq!(d.num_edges(), 3);
    }

    #[test]
    fn remove_of_overlay_insert_cancels() {
        let mut d = DeltaCsr::new(path4());
        assert!(d.insert(0, 2));
        assert!(d.remove(0, 2));
        assert_eq!(d.delta_edges(), 0);
        assert_eq!(d.neighbors(0), vec![1]);
    }

    #[test]
    fn node_growth_starts_isolated() {
        let mut d = DeltaCsr::new(path4());
        assert!(d.insert(3, 6));
        assert_eq!(d.num_nodes(), 7);
        assert_eq!(d.degree(5), 0);
        assert_eq!(d.neighbors(6), vec![3]);
        assert_eq!(d.neighbors(3), vec![2, 6]);
    }

    #[test]
    fn materialize_equals_merged_view_and_rebase_cleans() {
        let mut d = DeltaCsr::new(path4());
        d.insert(0, 3);
        d.remove(0, 1);
        d.insert(1, 5);
        let csr = d.materialize();
        assert_eq!(csr.num_nodes(), 6);
        assert_eq!(csr.num_edges(), d.num_edges());
        for v in 0..csr.num_nodes() as NodeId {
            assert_eq!(csr.neighbors(v).to_vec(), d.neighbors(v), "node {v}");
        }
        d.rebase(csr);
        assert!(d.is_clean());
        assert_eq!(d.neighbors(1), vec![2, 5]);
    }

    #[test]
    fn materialize_of_clean_overlay_round_trips() {
        let d = DeltaCsr::new(path4());
        let csr = d.materialize();
        for v in 0..4 {
            assert_eq!(csr.neighbors(v), d.base().neighbors(v));
        }
    }
}
