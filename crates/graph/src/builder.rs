//! Mutable edge-list accumulator producing a sorted, deduplicated [`Csr`].

use crate::csr::Csr;
use crate::NodeId;

/// Accumulates undirected edges and builds a [`Csr`].
///
/// Self-loops are ignored; duplicate edges (in either orientation) are
/// deduplicated at build time. Adding an edge with an endpoint `>= n`
/// grows the node count.
///
/// ```
/// use cod_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// b.add_edge(2, 1); // duplicate, collapsed
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// A builder for a graph with (at least) `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates space for `num_edges` edges.
    pub fn with_capacity(num_nodes: usize, num_edges: usize) -> Self {
        Self {
            num_nodes,
            edges: Vec::with_capacity(num_edges),
        }
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are silently dropped.
    #[inline]
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        if u == v {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.num_nodes = self.num_nodes.max(b as usize + 1);
        self.edges.push((a, b));
    }

    /// Number of nodes the built graph will have.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of (possibly duplicated) edges added so far.
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether the (deduplicated) edge was already added. `O(pending)`; for
    /// generators that need fast membership tests, keep an external set.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.contains(&key)
    }

    /// Sorts, deduplicates, and produces the CSR.
    pub fn build(mut self) -> Csr {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.num_nodes;
        let mut degree = vec![0usize; n];
        for &(u, v) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as NodeId; acc];
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each node's slice is filled in ascending order of the *other*
        // endpoint only for the `u` side; sort every slice to be safe.
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Csr::from_raw(offsets, neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deduplicates_and_ignores_self_loops() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        b.add_edge(2, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn grows_node_count() {
        let mut b = GraphBuilder::new(0);
        b.add_edge(3, 7);
        let g = b.build();
        assert_eq!(g.num_nodes(), 8);
        assert!(g.has_edge(7, 3));
    }

    #[test]
    fn neighbor_lists_are_sorted() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(2, 4);
        b.add_edge(2, 0);
        b.add_edge(2, 3);
        b.add_edge(2, 1);
        let g = b.build();
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn contains_edge_checks_both_orientations() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        assert!(b.contains_edge(1, 0));
        assert!(!b.contains_edge(0, 0));
    }
}
