//! Synthetic graph generators.
//!
//! The paper evaluates on six real networks. Those datasets are not shipped
//! here, so the [`cod-datasets`](../../datasets) crate emulates them with
//! these generators (substitution table in `DESIGN.md` §5):
//!
//! * [`planted_partition`] — ER blocks (communities) over a sparse ER
//!   background; models citation-like and ground-truth-community networks;
//! * [`barabasi_albert`] — preferential attachment; models the hub-skewed
//!   Retweet network;
//! * [`erdos_renyi`] — plain `G(n, p)` background / null model;
//! * [`power_law_sizes`] — community-size sampling for Amazon/DBLP-like
//!   presets;
//! * attribute assignment helpers implementing the paper's augmentation rule
//!   (one random attribute from `A` per ground-truth community) and a noisy
//!   class-label scheme for citation-like graphs.
//!
//! All generators take a caller-supplied RNG so datasets are reproducible
//! from a seed.

use rand::prelude::*;

use crate::attr::AttrTable;
use crate::builder::GraphBuilder;
use crate::components::connected_components;
use crate::csr::Csr;
use crate::{AttrId, NodeId};

/// Samples `G(n, p)` edges into `builder` over the node id range
/// `nodes[0..]`, using geometric skipping so the cost is `O(|E|)`.
fn sample_er_into<R: Rng>(builder: &mut GraphBuilder, nodes: &[NodeId], p: f64, rng: &mut R) {
    let n = nodes.len() as u64;
    if n < 2 || p <= 0.0 {
        return;
    }
    let total = n * (n - 1) / 2;
    if p >= 1.0 {
        for i in 0..nodes.len() {
            for j in i + 1..nodes.len() {
                builder.add_edge(nodes[i], nodes[j]);
            }
        }
        return;
    }
    let log1p = (1.0 - p).ln();
    let mut t: u64 = 0;
    loop {
        // Geometric skip: number of misses before the next edge.
        let u: f64 = rng.random();
        let skip = (u.max(f64::MIN_POSITIVE).ln() / log1p).floor() as u64;
        t = match t.checked_add(skip) {
            Some(x) => x,
            None => break,
        };
        if t >= total {
            break;
        }
        let (i, j) = decode_pair(t, n);
        builder.add_edge(nodes[i as usize], nodes[j as usize]);
        t += 1;
        if t >= total {
            break;
        }
    }
}

/// Decodes linear pair index `t` into `(i, j)` with `i < j < n`, where pairs
/// are ordered lexicographically by `i` then `j`.
fn decode_pair(t: u64, n: u64) -> (u64, u64) {
    // Pairs with first element < i: S(i) = i*n - i*(i+1)/2.
    // Find largest i with S(i) <= t via a float guess, then adjust.
    let tn = t as f64;
    let nf = n as f64;
    let mut i = ((2.0 * nf - 1.0 - ((2.0 * nf - 1.0).powi(2) - 8.0 * tn).max(0.0).sqrt()) / 2.0)
        .floor() as u64;
    i = i.min(n - 2);
    let s = |i: u64| i * n - i * (i + 1) / 2;
    while i > 0 && s(i) > t {
        i -= 1;
    }
    while s(i + 1) <= t {
        i += 1;
    }
    let j = i + 1 + (t - s(i));
    debug_assert!(j < n);
    (i, j)
}

/// Erdős–Rényi `G(n, p)`.
pub fn erdos_renyi<R: Rng>(n: usize, p: f64, rng: &mut R) -> Csr {
    let mut b = GraphBuilder::new(n);
    let nodes: Vec<NodeId> = (0..n as NodeId).collect();
    sample_er_into(&mut b, &nodes, p, rng);
    b.build()
}

/// Planted-partition graph: each community is an ER block with edge
/// probability `p_in`, over a global ER background with probability `p_out`.
///
/// `communities` partitions `0..n`; nodes not covered get only background
/// edges. Returns the topology; pair it with
/// [`assign_community_attrs`] / [`assign_class_labels`] for attributes.
pub fn planted_partition<R: Rng>(
    n: usize,
    communities: &[Vec<NodeId>],
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> Csr {
    let mut b = GraphBuilder::new(n);
    let all: Vec<NodeId> = (0..n as NodeId).collect();
    sample_er_into(&mut b, &all, p_out, rng);
    for c in communities {
        sample_er_into(&mut b, c, p_in, rng);
    }
    b.build()
}

/// Barabási–Albert preferential attachment: starts from an `m`-clique and
/// attaches each new node to `m` existing nodes chosen proportionally to
/// degree. Produces the hub-dominated topology the paper's Retweet dataset
/// exhibits.
pub fn barabasi_albert<R: Rng>(n: usize, m: usize, rng: &mut R) -> Csr {
    assert!(m >= 1, "m must be positive");
    assert!(n > m, "need more nodes than attachment count");
    let mut b = GraphBuilder::new(n);
    // Repeated-node list: node v appears deg(v) times.
    let mut urn: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    for i in 0..m as NodeId {
        for j in i + 1..m as NodeId {
            b.add_edge(i, j);
            urn.push(i);
            urn.push(j);
        }
    }
    if m == 1 {
        // Degenerate seed: a single node with no edges; seed the urn so the
        // first attachment has a target.
        urn.push(0);
    }
    let mut targets = Vec::with_capacity(m);
    for v in m as NodeId..n as NodeId {
        targets.clear();
        let mut guard = 0;
        while targets.len() < m && guard < 50 * m {
            let t = urn[rng.random_range(0..urn.len())];
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
        }
        // Fallback for pathological urns: attach to lowest-id nodes.
        let mut fill = 0 as NodeId;
        while targets.len() < m {
            if fill != v && !targets.contains(&fill) {
                targets.push(fill);
            }
            fill += 1;
        }
        for &t in &targets {
            b.add_edge(v, t);
            urn.push(v);
            urn.push(t);
        }
    }
    b.build()
}

/// Samples community sizes from a bounded discrete power law
/// `P(s) ∝ s^{-tau}` for `s ∈ [min_size, max_size]` until they cover `n`
/// nodes; the last size is clamped so the total is exactly `n`.
pub fn power_law_sizes<R: Rng>(
    n: usize,
    min_size: usize,
    max_size: usize,
    tau: f64,
    rng: &mut R,
) -> Vec<usize> {
    assert!(min_size >= 1 && max_size >= min_size);
    let weights: Vec<f64> = (min_size..=max_size)
        .map(|s| (s as f64).powf(-tau))
        .collect();
    let total_w: f64 = weights.iter().sum();
    let mut sizes = Vec::new();
    let mut covered = 0usize;
    while covered < n {
        let mut x = rng.random::<f64>() * total_w;
        let mut s = max_size;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                s = min_size + i;
                break;
            }
        }
        let s = s.min(n - covered).max(1);
        sizes.push(s);
        covered += s;
    }
    sizes
}

/// Splits `0..n` into consecutive blocks of the given sizes.
pub fn blocks_from_sizes(sizes: &[usize]) -> Vec<Vec<NodeId>> {
    let mut out = Vec::with_capacity(sizes.len());
    let mut next = 0 as NodeId;
    for &s in sizes {
        out.push((next..next + s as NodeId).collect());
        next += s as NodeId;
    }
    out
}

/// The paper's attribute augmentation for Amazon/DBLP/LiveJournal (§V-A):
/// draw `|A| = num_attrs` distinct attributes and assign the *same* random
/// attribute to every node of each ground-truth community.
pub fn assign_community_attrs<R: Rng>(
    n: usize,
    communities: &[Vec<NodeId>],
    num_attrs: usize,
    rng: &mut R,
) -> AttrTable {
    assert!(num_attrs >= 1);
    let mut labels = vec![Vec::new(); n];
    for c in communities {
        let a = rng.random_range(0..num_attrs) as AttrId;
        for &v in c {
            labels[v as usize].push(a);
        }
    }
    AttrTable::from_lists(labels)
}

/// Noisy class labels for citation-like graphs: each community is assigned a
/// class, and each node takes that class with probability `1 - noise`,
/// otherwise a uniformly random class. Every node gets exactly one label.
pub fn assign_class_labels<R: Rng>(
    n: usize,
    communities: &[Vec<NodeId>],
    num_classes: usize,
    noise: f64,
    rng: &mut R,
) -> AttrTable {
    assert!(num_classes >= 1);
    let mut labels = vec![0 as AttrId; n];
    for c in communities {
        let class = rng.random_range(0..num_classes) as AttrId;
        for &v in c {
            labels[v as usize] = if rng.random_bool(noise) {
                rng.random_range(0..num_classes) as AttrId
            } else {
                class
            };
        }
    }
    AttrTable::single_per_node(&labels)
}

/// LFR-style benchmark graph: power-law node degrees (Chung–Lu sampling)
/// with a *mixing parameter* `mu` — the expected fraction of each node's
/// edges that leave its community.
///
/// `communities` partitions `0..n`. Degrees are drawn from a bounded
/// power law `P(d) ∝ d^{-gamma}` on `[d_min, d_max]`; each node then gets
/// `(1-mu)·d` intra-community and `mu·d` inter-community edge stubs, and
/// edges are sampled stub-proportionally (multi-edges collapse, so
/// realized degrees are approximate). Lower `mu` ⇒ cleaner communities.
#[allow(clippy::too_many_arguments)] // mirrors the LFR benchmark's parameter set
pub fn lfr_like<R: Rng>(
    n: usize,
    communities: &[Vec<NodeId>],
    d_min: usize,
    d_max: usize,
    gamma: f64,
    mu: f64,
    rng: &mut R,
) -> Csr {
    assert!((0.0..=1.0).contains(&mu), "mu is a fraction");
    assert!(d_min >= 1 && d_max >= d_min && d_max < n);
    // Power-law degrees via inverse-CDF table.
    let weights: Vec<f64> = (d_min..=d_max).map(|d| (d as f64).powf(-gamma)).collect();
    let wsum: f64 = weights.iter().sum();
    let mut degree = vec![0f64; n];
    for d in degree.iter_mut() {
        let mut x = rng.random::<f64>() * wsum;
        let mut val = d_max;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                val = d_min + i;
                break;
            }
        }
        *d = val as f64;
    }

    let mut b = GraphBuilder::new(n);
    // Intra-community edges: Chung–Lu within each block.
    for c in communities {
        if c.len() < 2 {
            continue;
        }
        let stubs: Vec<f64> = c.iter().map(|&v| degree[v as usize] * (1.0 - mu)).collect();
        sample_chung_lu_into(&mut b, c, &stubs, rng);
    }
    // Inter-community edges: Chung–Lu over all nodes on the mu-stubs.
    let all: Vec<NodeId> = (0..n as NodeId).collect();
    let stubs: Vec<f64> = (0..n).map(|v| degree[v] * mu).collect();
    sample_chung_lu_into(&mut b, &all, &stubs, rng);
    b.build()
}

/// Samples `Σ stubs / 2` edges with both endpoints drawn proportionally to
/// `stubs` (Chung–Lu); self-pairs are skipped, duplicates collapse later.
fn sample_chung_lu_into<R: Rng>(
    builder: &mut GraphBuilder,
    nodes: &[NodeId],
    stubs: &[f64],
    rng: &mut R,
) {
    debug_assert_eq!(nodes.len(), stubs.len());
    let total: f64 = stubs.iter().sum();
    if total <= 0.0 {
        return;
    }
    let mut cum = Vec::with_capacity(stubs.len());
    let mut acc = 0.0;
    for &s in stubs {
        acc += s;
        cum.push(acc);
    }
    let draws = (total / 2.0).round() as usize;
    let pick = |rng: &mut R, cum: &[f64]| -> usize {
        let x = rng.random::<f64>() * acc;
        cum.partition_point(|&c| c < x).min(cum.len() - 1)
    };
    for _ in 0..draws {
        let i = pick(rng, &cum);
        let j = pick(rng, &cum);
        if i != j {
            builder.add_edge(nodes[i], nodes[j]);
        }
    }
}

/// Adds one bridging edge per extra component (random endpoint in each) so
/// the result is connected. Returns the original graph if already connected.
pub fn make_connected<R: Rng>(g: &Csr, rng: &mut R) -> Csr {
    let (k, label) = connected_components(g);
    if k <= 1 {
        return g.clone();
    }
    let n = g.num_nodes();
    let mut reps: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for v in 0..n as NodeId {
        reps[label[v as usize] as usize].push(v);
    }
    let mut b = GraphBuilder::with_capacity(n, g.num_edges() + k);
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    for i in 1..k {
        let u = reps[i - 1][rng.random_range(0..reps[i - 1].len())];
        let v = reps[i][rng.random_range(0..reps[i].len())];
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn decode_pair_enumerates_all_pairs() {
        let n = 7u64;
        let mut seen = Vec::new();
        for t in 0..n * (n - 1) / 2 {
            seen.push(decode_pair(t, n));
        }
        let mut expect = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                expect.push((i, j));
            }
        }
        assert_eq!(seen, expect);
    }

    #[test]
    fn er_edge_count_near_expectation() {
        let mut r = rng();
        let n = 500;
        let p = 0.02;
        let g = erdos_renyi(n, p, &mut r);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 5.0 * expected.sqrt() + 10.0,
            "expected ~{expected}, got {got}"
        );
    }

    #[test]
    fn er_extreme_probabilities() {
        let mut r = rng();
        assert_eq!(erdos_renyi(10, 0.0, &mut r).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut r).num_edges(), 45);
    }

    #[test]
    fn planted_partition_is_assortative() {
        let mut r = rng();
        let sizes = vec![50; 8];
        let blocks = blocks_from_sizes(&sizes);
        let g = planted_partition(400, &blocks, 0.3, 0.002, &mut r);
        let mut intra = 0;
        let mut inter = 0;
        for (u, v) in g.edges() {
            if u / 50 == v / 50 {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 5 * inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn ba_has_right_edge_count_and_hubs() {
        let mut r = rng();
        let g = barabasi_albert(300, 3, &mut r);
        // m-clique (3 edges) + 297 * 3 new edges (some may dedupe: <=).
        assert!(g.num_edges() <= 3 + 297 * 3);
        assert!(g.num_edges() >= 297 * 3 - 30);
        let max_deg = (0..300).map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg > 20, "expected hubs, max degree {max_deg}");
        assert!(is_connected(&g));
    }

    #[test]
    fn power_law_sizes_cover_exactly_n() {
        let mut r = rng();
        let sizes = power_law_sizes(1000, 5, 100, 2.5, &mut r);
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        assert!(sizes.iter().all(|&s| (1..=100).contains(&s)));
        // Power law: small communities dominate.
        let small = sizes.iter().filter(|&&s| s <= 20).count();
        assert!(small * 2 > sizes.len());
    }

    #[test]
    fn community_attrs_shared_within_block() {
        let mut r = rng();
        let blocks = blocks_from_sizes(&[10, 10]);
        let t = assign_community_attrs(20, &blocks, 5, &mut r);
        let a0 = t.of(0)[0];
        for v in 0..10 {
            assert_eq!(t.of(v), &[a0]);
        }
    }

    #[test]
    fn class_labels_mostly_match_community_class() {
        let mut r = rng();
        let blocks = blocks_from_sizes(&[100]);
        let t = assign_class_labels(100, &blocks, 4, 0.1, &mut r);
        let mut counts = [0usize; 4];
        for v in 0..100 {
            counts[t.of(v)[0] as usize] += 1;
        }
        assert!(*counts.iter().max().unwrap() >= 80);
    }

    #[test]
    fn lfr_like_mixing_controls_assortativity() {
        let mut r = rng();
        let blocks = blocks_from_sizes(&[40; 10]);
        let count_mix = |g: &Csr| -> (usize, usize) {
            let mut intra = 0;
            let mut inter = 0;
            for (u, v) in g.edges() {
                if u / 40 == v / 40 {
                    intra += 1;
                } else {
                    inter += 1;
                }
            }
            (intra, inter)
        };
        let clean = lfr_like(400, &blocks, 3, 20, 2.5, 0.1, &mut r);
        let (ci, cx) = count_mix(&clean);
        assert!(ci > 5 * cx, "mu=0.1: intra {ci} inter {cx}");
        let noisy = lfr_like(400, &blocks, 3, 20, 2.5, 0.6, &mut r);
        let (ni, nx) = count_mix(&noisy);
        assert!(
            (nx as f64) / (ni + nx) as f64 > 0.3,
            "mu=0.6: intra {ni} inter {nx}"
        );
    }

    #[test]
    fn lfr_like_degrees_follow_power_law_shape() {
        let mut r = rng();
        let blocks = blocks_from_sizes(&[100; 5]);
        let g = lfr_like(500, &blocks, 3, 40, 2.2, 0.2, &mut r);
        let degs: Vec<usize> = (0..500).map(|v| g.degree(v)).collect();
        let small = degs.iter().filter(|&&d| d <= 6).count();
        let big = degs.iter().filter(|&&d| d >= 20).count();
        assert!(small > big * 3, "heavy tail: {small} small vs {big} big");
        assert!(*degs.iter().max().unwrap() >= 15, "hubs exist");
    }

    #[test]
    fn make_connected_connects() {
        let mut r = rng();
        let mut b = GraphBuilder::new(9);
        for (u, v) in [(0, 1), (2, 3), (4, 5), (6, 7)] {
            b.add_edge(u, v);
        }
        let g = make_connected(&b.build(), &mut r);
        assert!(is_connected(&g));
        assert_eq!(g.num_edges(), 4 + 4); // 5 components -> 4 bridges
    }
}
