//! Attributed-graph substrate for characteristic community discovery (COD).
//!
//! This crate provides the data structures every other crate in the workspace
//! builds on:
//!
//! * [`Csr`] — a compact sparse-row adjacency structure for undirected graphs;
//! * [`AttributedGraph`] — a CSR graph whose nodes carry sets of categorical
//!   attributes, with an [`attr::AttrInterner`] mapping attribute names to
//!   dense ids;
//! * [`builder::GraphBuilder`] — a mutable edge-list accumulator that
//!   deduplicates and produces a sorted CSR;
//! * [`generators`] — synthetic graph generators (planted partition,
//!   Barabási–Albert, Erdős–Rényi) used to emulate the paper's datasets;
//! * [`measures`] — the quality measures of the paper's §V (topology density
//!   `ρ`, attribute density `φ`, conductance);
//! * [`overlay`] — a delta-overlay adjacency layer ([`DeltaCsr`]) that lets
//!   streaming mutations ride on an immutable CSR base;
//! * [`subgraph`] — induced-subgraph extraction with node remapping;
//! * [`fxhash`] — a fast non-cryptographic hasher (in-tree FxHash) used for
//!   all hot hash maps, per the workspace performance guidelines.
//!
//! Nodes are identified by dense `u32` ids ([`NodeId`]), attributes by `u32`
//! ids ([`AttrId`]).

// The graph substrate sits under every query path: panicking on untrusted
// input here would defeat the typed-error contract of the crates above, so
// `unwrap`/`expect` are flagged outside tests (see clippy.toml).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod attr;
pub mod builder;
pub mod bytes;
pub mod components;
pub mod csr;
pub mod fxhash;
pub mod generators;
pub mod io;
pub mod measures;
pub mod overlay;
pub mod partition;
pub mod stats;
pub mod subgraph;

pub use attr::{AttrInterner, AttrTable};
pub use builder::GraphBuilder;
pub use bytes::{Bytes, Segment};
pub use csr::Csr;
pub use fxhash::{FxHashMap, FxHashSet};
pub use overlay::DeltaCsr;

/// Dense node identifier. Nodes of a graph with `n` nodes are `0..n`.
pub type NodeId = u32;

/// Dense categorical-attribute identifier.
pub type AttrId = u32;

/// An undirected graph with categorical node attributes.
///
/// This is the paper's attributed graph `g = (V, E)` with attribute sets
/// `A(v)` per node (§II-A). The topology is stored in a [`Csr`]; attributes in
/// an [`AttrTable`] plus an [`AttrInterner`] for human-readable names.
#[derive(Clone, Debug)]
pub struct AttributedGraph {
    csr: Csr,
    attrs: AttrTable,
    interner: AttrInterner,
}

impl AttributedGraph {
    /// Assembles a graph from parts. Panics if `attrs` covers a different
    /// number of nodes than `csr`.
    pub fn from_parts(csr: Csr, attrs: AttrTable, interner: AttrInterner) -> Self {
        assert_eq!(
            csr.num_nodes(),
            attrs.num_nodes(),
            "attribute table must cover every node"
        );
        Self {
            csr,
            attrs,
            interner,
        }
    }

    /// A graph with no attributes on any node.
    pub fn unattributed(csr: Csr) -> Self {
        let n = csr.num_nodes();
        Self {
            csr,
            attrs: AttrTable::empty(n),
            interner: AttrInterner::new(),
        }
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.csr.num_nodes()
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.csr.degree(v)
    }

    /// Neighbors of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        self.csr.neighbors(v)
    }

    /// The underlying CSR topology.
    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// The attribute table.
    #[inline]
    pub fn attrs(&self) -> &AttrTable {
        &self.attrs
    }

    /// The attribute-name interner.
    #[inline]
    pub fn interner(&self) -> &AttrInterner {
        &self.interner
    }

    /// Attributes of node `v`, sorted ascending.
    #[inline]
    pub fn node_attrs(&self, v: NodeId) -> &[AttrId] {
        self.attrs.of(v)
    }

    /// Whether node `v` carries attribute `a`.
    #[inline]
    pub fn has_attr(&self, v: NodeId, a: AttrId) -> bool {
        self.attrs.has(v, a)
    }

    /// Whether both endpoints of the edge carry `a` — the paper's
    /// "query-attributed edge" predicate (§IV, Definition 4).
    #[inline]
    pub fn edge_is_attributed(&self, u: NodeId, v: NodeId, a: AttrId) -> bool {
        self.has_attr(u, a) && self.has_attr(v, a)
    }

    /// Number of distinct attributes `|A|` in use.
    #[inline]
    pub fn num_attrs(&self) -> usize {
        self.interner.len().max(self.attrs.max_attr_plus_one())
    }

    /// Iterates over every undirected edge `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.csr.edges()
    }

    /// The weighted-cascade influence probability `p(u, v) = 1 / deg(v)` of
    /// the directed edge `u → v` (paper §V-A, after \[38\]).
    #[inline]
    pub fn weighted_cascade_prob(&self, v: NodeId) -> f64 {
        let d = self.degree(v);
        if d == 0 {
            0.0
        } else {
            1.0 / d as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> AttributedGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        AttributedGraph::unattributed(b.build())
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn weighted_cascade_probability_is_inverse_degree() {
        let g = triangle();
        assert!((g.weighted_cascade_prob(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn edge_iteration_yields_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "attribute table")]
    fn mismatched_attr_table_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let csr = b.build();
        let attrs = AttrTable::empty(5);
        let _ = AttributedGraph::from_parts(csr, attrs, AttrInterner::new());
    }
}
