//! An in-tree implementation of the FxHash algorithm used by rustc.
//!
//! The default std hasher (SipHash 1-3) is DoS-resistant but slow for the
//! short integer keys that dominate this workspace (node ids, attribute ids).
//! FxHash is the standard fast alternative; we implement it here (~40 lines)
//! rather than pulling in the `rustc-hash` crate, keeping the dependency set
//! to the workspace-approved list.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The multiply-rotate hash used by the Rust compiler (a.k.a. FxHash).
///
/// Not DoS-resistant; only use for internal maps keyed by trusted data
/// (which is every map in this workspace).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            let mut buf = [0u8; 2];
            buf.copy_from_slice(&bytes[..2]);
            self.add_to_hash(u64::from(u16::from_le_bytes(buf)));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u32), hash_of(&2u32));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        for i in 0..1000 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn byte_stream_matches_chunked_writes() {
        // Hashing a &[u8] goes through `write`; ensure varied lengths work.
        for len in 0..20usize {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let a = hash_of(&bytes);
            let b = hash_of(&bytes);
            assert_eq!(a, b, "len {len}");
        }
    }
}
