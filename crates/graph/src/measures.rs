//! Community quality measures used in the paper's evaluation (§V-A).

use crate::{AttrId, AttributedGraph, Csr, NodeId};

/// Topology density `ρ(C)`: internal edges over node pairs (§V-A).
///
/// `ρ(C) = |E_C| / (|C| choose 2)`; 0 for communities with fewer than two
/// nodes. `members` must be sorted ascending.
pub fn topology_density(g: &Csr, members: &[NodeId]) -> f64 {
    let n = members.len();
    if n < 2 {
        return 0.0;
    }
    let internal = internal_edges(g, members);
    let pairs = n as f64 * (n as f64 - 1.0) / 2.0;
    internal as f64 / pairs
}

/// Number of edges with both endpoints in the (sorted) member list.
pub fn internal_edges(g: &Csr, members: &[NodeId]) -> usize {
    let mut count = 0usize;
    for &v in members {
        for &u in g.neighbors(v) {
            if u > v && members.binary_search(&u).is_ok() {
                count += 1;
            }
        }
    }
    count
}

/// Attribute density `φ(C)`: fraction of members carrying the query
/// attribute (§V-A: "the number of query attributes in `C*` divided by the
/// number of nodes").
pub fn attribute_density(g: &AttributedGraph, members: &[NodeId], attr: AttrId) -> f64 {
    if members.is_empty() {
        return 0.0;
    }
    let with = members.iter().filter(|&&v| g.has_attr(v, attr)).count();
    with as f64 / members.len() as f64
}

/// Conductance of the cut around `members` (§V-E case study).
///
/// `cond(C) = cut(C, V\C) / min(vol(C), vol(V\C))`; 0 when either side has
/// zero volume. `members` must be sorted ascending.
pub fn conductance(g: &Csr, members: &[NodeId]) -> f64 {
    let mut cut = 0usize;
    let mut vol = 0usize;
    for &v in members {
        vol += g.degree(v);
        for &u in g.neighbors(v) {
            if members.binary_search(&u).is_err() {
                cut += 1;
            }
        }
    }
    let total_vol = 2 * g.num_edges();
    let other = total_vol.saturating_sub(vol);
    let denom = vol.min(other);
    if denom == 0 {
        0.0
    } else {
        cut as f64 / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::{AttrInterner, AttrTable};

    fn barbell() -> Csr {
        // Triangle 0-1-2 and triangle 3-4-5 joined by bridge 2-3.
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn density_of_triangle_is_one() {
        let g = barbell();
        assert!((topology_density(&g, &[0, 1, 2]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn density_counts_only_internal_edges() {
        let g = barbell();
        // {0,1,2,3}: edges 0-1,1-2,0-2,2-3 = 4 of 6 pairs.
        assert!((topology_density(&g, &[0, 1, 2, 3]) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn density_degenerate_cases() {
        let g = barbell();
        assert_eq!(topology_density(&g, &[]), 0.0);
        assert_eq!(topology_density(&g, &[0]), 0.0);
    }

    #[test]
    fn attribute_density_fraction() {
        let csr = barbell();
        let attrs = AttrTable::from_lists(vec![vec![0], vec![0], vec![1], vec![0], vec![], vec![]]);
        let g = AttributedGraph::from_parts(csr, attrs, AttrInterner::new());
        assert!((attribute_density(&g, &[0, 1, 2], 0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(attribute_density(&g, &[], 0), 0.0);
    }

    #[test]
    fn conductance_of_one_triangle_side() {
        let g = barbell();
        // Cut({0,1,2}) = 1 (edge 2-3); vol = 2+2+3 = 7; other side vol = 7.
        assert!((conductance(&g, &[0, 1, 2]) - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn conductance_of_everything_is_zero() {
        let g = barbell();
        assert_eq!(conductance(&g, &[0, 1, 2, 3, 4, 5]), 0.0);
    }
}
