//! Plain-text graph I/O.
//!
//! Formats:
//!
//! * **edge list** — one `u v` pair per line; `#`-prefixed comment lines and
//!   blank lines are skipped;
//! * **attribute list** — one `node attr1 attr2 ...` line per node that has
//!   attributes; attribute tokens are interned as names.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use crate::attr::{AttrInterner, AttrTable};
use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::{AttributedGraph, NodeId};

/// Errors from graph parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying file/stream error.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and content (truncated to
    /// [`SNIPPET_MAX`] characters so a pathological line cannot flood logs
    /// or terminal output).
    Parse { line: usize, content: String },
}

/// Longest line excerpt kept in an [`IoError::Parse`].
pub const SNIPPET_MAX: usize = 120;

/// Truncates a malformed line to [`SNIPPET_MAX`] characters for error
/// reporting, marking the cut with an ellipsis.
fn snippet(t: &str) -> String {
    if t.chars().count() <= SNIPPET_MAX {
        t.to_owned()
    } else {
        let mut s: String = t.chars().take(SNIPPET_MAX).collect();
        s.push('…');
        s
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "parse error on line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses an edge list from a reader.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Csr, IoError> {
    let mut b = GraphBuilder::new(0);
    let mut line = String::new();
    let mut reader = reader;
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (u, v) = match (it.next(), it.next()) {
            (Some(u), Some(v)) => (u, v),
            _ => {
                return Err(IoError::Parse {
                    line: lineno,
                    content: snippet(t),
                })
            }
        };
        let u: NodeId = u.parse().map_err(|_| IoError::Parse {
            line: lineno,
            content: snippet(t),
        })?;
        let v: NodeId = v.parse().map_err(|_| IoError::Parse {
            line: lineno,
            content: snippet(t),
        })?;
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Parses an attribute list from a reader, interning attribute tokens.
/// `num_nodes` fixes the table size (nodes without lines get no attributes).
pub fn read_attr_list<R: BufRead>(
    reader: R,
    num_nodes: usize,
) -> Result<(AttrTable, AttrInterner), IoError> {
    let mut interner = AttrInterner::new();
    let mut lists = vec![Vec::new(); num_nodes];
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let v: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| IoError::Parse {
                line: lineno,
                content: snippet(t),
            })?;
        if v >= num_nodes {
            return Err(IoError::Parse {
                line: lineno,
                content: snippet(t),
            });
        }
        for tok in it {
            lists[v].push(interner.intern(tok));
        }
    }
    Ok((AttrTable::from_lists(lists), interner))
}

/// Loads an attributed graph from an edge-list file and an optional
/// attribute file.
pub fn load_attributed(
    edges_path: &Path,
    attrs_path: Option<&Path>,
) -> Result<AttributedGraph, IoError> {
    let f = std::fs::File::open(edges_path)?;
    let csr = read_edge_list(std::io::BufReader::new(f))?;
    match attrs_path {
        None => Ok(AttributedGraph::unattributed(csr)),
        Some(p) => {
            let f = std::fs::File::open(p)?;
            let (attrs, interner) = read_attr_list(std::io::BufReader::new(f), csr.num_nodes())?;
            Ok(AttributedGraph::from_parts(csr, attrs, interner))
        }
    }
}

/// Writes the edge list of `g` (one `u v` line per undirected edge).
pub fn write_edge_list<W: Write>(g: &Csr, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Writes the attribute list of `g` (named attributes where interned,
/// numeric ids otherwise).
pub fn write_attr_list<W: Write>(g: &AttributedGraph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for v in 0..g.num_nodes() as NodeId {
        let attrs = g.node_attrs(v);
        if attrs.is_empty() {
            continue;
        }
        write!(w, "{v}")?;
        for &a in attrs {
            match g.interner().name(a) {
                Some(name) => write!(w, " {name}")?,
                None => write!(w, " {a}")?,
            }
        }
        writeln!(w)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn edge_list_round_trip() {
        let input = "# comment\n0 1\n1 2\n\n2 0\n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(Cursor::new(out)).unwrap();
        assert_eq!(g2.num_edges(), 3);
        assert!(g2.has_edge(2, 0));
    }

    #[test]
    fn malformed_edge_line_is_reported() {
        let err = read_edge_list(Cursor::new("0 1\nbogus\n")).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn malformed_line_content_is_truncated() {
        let long = format!("x{}", "y".repeat(4000));
        let err = read_edge_list(Cursor::new(format!("0 1\n{long}\n"))).unwrap_err();
        match err {
            IoError::Parse { line, content } => {
                assert_eq!(line, 2);
                assert_eq!(
                    content.chars().count(),
                    SNIPPET_MAX + 1,
                    "120 chars + ellipsis"
                );
                assert!(content.ends_with('…'));
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn attr_list_parses_names() {
        let (t, i) = read_attr_list(Cursor::new("0 DB ML\n2 DB\n"), 3).unwrap();
        let db = i.get("DB").unwrap();
        let ml = i.get("ML").unwrap();
        assert!(t.has(0, db) && t.has(0, ml));
        assert!(t.has(2, db) && !t.has(2, ml));
        assert!(t.of(1).is_empty());
    }

    #[test]
    fn attr_list_rejects_out_of_range_node() {
        assert!(read_attr_list(Cursor::new("7 DB\n"), 3).is_err());
    }

    #[test]
    fn attr_write_round_trip() {
        let (t, i) = read_attr_list(Cursor::new("0 A\n1 B A\n"), 2).unwrap();
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let g = AttributedGraph::from_parts(b.build(), t, i);
        let mut out = Vec::new();
        write_attr_list(&g, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("0 A"));
        assert!(s.contains("1 A B"));
    }
}
