//! Whole-graph structural statistics (dataset validation, CLI `stats`).

use crate::csr::Csr;
use crate::NodeId;

/// Summary statistics of a graph's degree sequence.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree `2|E|/|V|`.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// Fraction of degree-1 nodes (the pendant fringe that drives
    /// hierarchy skew; see `cod-datasets`).
    pub pendant_fraction: f64,
}

/// Computes [`DegreeStats`]; all-zero for the empty graph.
pub fn degree_stats(g: &Csr) -> DegreeStats {
    let n = g.num_nodes();
    if n == 0 {
        return DegreeStats::default();
    }
    let mut degrees: Vec<usize> = (0..n as NodeId).map(|v| g.degree(v)).collect();
    degrees.sort_unstable();
    let pendants = degrees.iter().filter(|&&d| d == 1).count();
    DegreeStats {
        min: degrees[0],
        max: degrees[n - 1],
        mean: 2.0 * g.num_edges() as f64 / n as f64,
        median: degrees[n / 2],
        pendant_fraction: pendants as f64 / n as f64,
    }
}

/// Global clustering coefficient (transitivity):
/// `3 · #triangles / #wedges`. Returns 0 for wedge-free graphs.
pub fn global_clustering_coefficient(g: &Csr) -> f64 {
    let mut triangles = 0u64; // counted once per triangle
    let mut wedges = 0u64;
    for v in 0..g.num_nodes() as NodeId {
        let d = g.degree(v) as u64;
        wedges += d * d.saturating_sub(1) / 2;
        // Count triangles with v as the smallest vertex.
        let neigh = g.neighbors(v);
        for (i, &a) in neigh.iter().enumerate() {
            if a < v {
                continue;
            }
            for &b in &neigh[i + 1..] {
                if b > a && g.has_edge(a, b) {
                    triangles += 1;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / wedges as f64
    }
}

/// Degree assortativity (Pearson correlation of endpoint degrees over
/// edges). Returns 0 when undefined (degree-regular or empty graphs).
pub fn degree_assortativity(g: &Csr) -> f64 {
    let m = g.num_edges();
    if m == 0 {
        return 0.0;
    }
    // Accumulate over both orientations for symmetry.
    let (mut sx, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64);
    let cnt = (2 * m) as f64;
    for (u, v) in g.edges() {
        let du = g.degree(u) as f64;
        let dv = g.degree(v) as f64;
        sx += du + dv;
        sxx += du * du + dv * dv;
        sxy += 2.0 * du * dv;
    }
    let mean = sx / cnt;
    let var = sxx / cnt - mean * mean;
    if var <= 1e-12 {
        return 0.0;
    }
    (sxy / cnt - mean * mean) / var
}

/// Approximate diameter: the eccentricity found by a double BFS sweep
/// (exact on trees, a lower bound in general). Returns 0 for graphs with
/// fewer than 2 nodes; disconnected graphs report the sweep within the
/// start node's component.
pub fn pseudo_diameter(g: &Csr) -> usize {
    if g.num_nodes() < 2 {
        return 0;
    }
    let (far, _) = bfs_far(g, 0);
    let (_, dist) = bfs_far(g, far);
    dist
}

fn bfs_far(g: &Csr, start: NodeId) -> (NodeId, usize) {
    let n = g.num_nodes();
    let mut dist = vec![usize::MAX; n];
    dist[start as usize] = 0;
    let mut queue = vec![start];
    let mut head = 0;
    let mut far = (start, 0usize);
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for &u in g.neighbors(v) {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = dist[v as usize] + 1;
                if dist[u as usize] > far.1 {
                    far = (u, dist[u as usize]);
                }
                queue.push(u);
            }
        }
    }
    far
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle_with_tail() -> Csr {
        let mut b = GraphBuilder::new(5);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)] {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn degree_stats_basics() {
        let g = triangle_with_tail();
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.pendant_fraction - 0.2).abs() < 1e-12);
    }

    #[test]
    fn clustering_coefficient_of_triangle_is_one() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        assert!((global_clustering_coefficient(&b.build()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_coefficient_of_star_is_zero() {
        let mut b = GraphBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v);
        }
        assert_eq!(global_clustering_coefficient(&b.build()), 0.0);
    }

    #[test]
    fn clustering_coefficient_mixed() {
        // Triangle + tail: 1 triangle; wedges: deg 2,2,3,2,1 ->
        // 1 + 1 + 3 + 1 + 0 = 6; c = 3/6.
        let g = triangle_with_tail();
        assert!((global_clustering_coefficient(&g) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn star_is_disassortative() {
        let mut b = GraphBuilder::new(6);
        for v in 1..6 {
            b.add_edge(0, v);
        }
        let r = degree_assortativity(&b.build());
        assert!(r < -0.99, "star assortativity {r}");
    }

    #[test]
    fn regular_graph_assortativity_is_defined_as_zero() {
        let mut b = GraphBuilder::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            b.add_edge(u, v);
        }
        assert_eq!(degree_assortativity(&b.build()), 0.0);
    }

    #[test]
    fn pseudo_diameter_of_path() {
        let mut b = GraphBuilder::new(6);
        for v in 0..5 {
            b.add_edge(v, v + 1);
        }
        assert_eq!(pseudo_diameter(&b.build()), 5);
        assert_eq!(pseudo_diameter(&GraphBuilder::new(1).build()), 0);
    }
}
