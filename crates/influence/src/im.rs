//! RR-set-based influence maximization (greedy max-coverage).
//!
//! The paper's estimators build on the reverse-reachable-set IM literature
//! (\[21–24\]; §II-B). This module provides the classic RR-pool greedy
//! seed-selection those papers share: sample `Θ` RR sets, then greedily
//! pick the seed covering the most not-yet-covered sets. The expected
//! influence of a seed set `S` is `|V| · (covered sets) / Θ` (Theorem 1
//! generalized to sets), and lazy-greedy evaluation makes selection
//! near-linear in pool size.
//!
//! Besides being a useful library feature in its own right (pick the *k*
//! CBSM promoters with the widest joint reach), it doubles as a
//! cross-check of the RR machinery: greedy seeds on a star must be the
//! hub, coverage must be monotone and submodular, etc.

use cod_graph::{Csr, NodeId};
use rand::prelude::*;

use crate::model::Model;
use crate::parallel::{par_ranges, Parallelism};
use crate::sampler::RrSampler;
use crate::seed::SeedSequence;

/// A pool of RR sets supporting coverage queries.
pub struct RrPool {
    /// Flattened membership: for each RR set, its node list.
    sets: Vec<Vec<NodeId>>,
    /// For each node, the RR-set indices containing it.
    inverted: Vec<Vec<u32>>,
    universe: usize,
}

impl RrPool {
    /// Samples `theta` RR sets from uniformly random sources, restricted
    /// to `keep` (pass `|_| true` for the whole graph).
    pub fn sample<R: Rng>(
        g: &Csr,
        model: Model,
        theta: usize,
        rng: &mut R,
        members: Option<&[NodeId]>,
    ) -> Self {
        assert!(theta > 0 && g.num_nodes() > 0);
        let mut sampler = RrSampler::new(g, model);
        let mut sets = Vec::with_capacity(theta);
        let mut inverted = vec![Vec::new(); g.num_nodes()];
        for i in 0..theta {
            let rr = match members {
                None => sampler.sample_uniform(rng),
                Some(m) => {
                    debug_assert!(m.windows(2).all(|w| w[0] < w[1]));
                    let s = m[rng.random_range(0..m.len())];
                    sampler.sample_restricted(s, rng, |v| m.binary_search(&v).is_ok())
                }
            };
            for &v in rr.nodes() {
                inverted[v as usize].push(i as u32);
            }
            sets.push(rr.nodes().to_vec());
        }
        Self {
            sets,
            inverted,
            universe: members.map_or(g.num_nodes(), <[NodeId]>::len),
        }
    }

    /// [`RrPool::sample`] with per-index seed derivation: set `i` is drawn
    /// entirely from `seeds.rng_for(i)`, so the pool is a pure function of
    /// `(g, model, theta, seeds, members)` and bit-identical for every
    /// thread count.
    pub fn sample_seeded(
        g: &Csr,
        model: Model,
        theta: usize,
        seeds: SeedSequence,
        members: Option<&[NodeId]>,
        par: Parallelism,
    ) -> Self {
        assert!(theta > 0 && g.num_nodes() > 0);
        if let Some(m) = members {
            debug_assert!(m.windows(2).all(|w| w[0] < w[1]));
        }
        let shards = par_ranges(theta, par.thread_count(), |range| {
            let mut sampler = RrSampler::new(g, model);
            let mut sets = Vec::with_capacity(range.len());
            for i in range {
                let mut rng = seeds.rng_for(i as u64);
                let rr = match members {
                    None => sampler.sample_uniform(&mut rng),
                    Some(m) => {
                        let s = m[rng.random_range(0..m.len())];
                        sampler.sample_restricted(s, &mut rng, |v| m.binary_search(&v).is_ok())
                    }
                };
                sets.push(rr.nodes().to_vec());
            }
            sets
        });
        // Ranges are contiguous and returned in index order, so plain
        // concatenation restores the set at its global index.
        let sets: Vec<Vec<NodeId>> = shards.into_iter().flatten().collect();
        let mut inverted = vec![Vec::new(); g.num_nodes()];
        for (i, set) in sets.iter().enumerate() {
            for &v in set {
                inverted[v as usize].push(i as u32);
            }
        }
        Self {
            sets,
            inverted,
            universe: members.map_or(g.num_nodes(), <[NodeId]>::len),
        }
    }

    /// Number of RR sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// The nodes of RR set `i`, in discovery order.
    pub fn set(&self, i: usize) -> &[NodeId] {
        &self.sets[i]
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Estimated influence of a seed set: `universe · covered / Θ`.
    pub fn estimate(&self, seeds: &[NodeId]) -> f64 {
        let mut covered = vec![false; self.sets.len()];
        for &s in seeds {
            for &i in &self.inverted[s as usize] {
                covered[i as usize] = true;
            }
        }
        let c = covered.iter().filter(|&&x| x).count();
        self.universe as f64 * c as f64 / self.sets.len() as f64
    }

    /// Greedy max-coverage seed selection (CELF-style lazy evaluation).
    /// Returns up to `k` seeds with their *marginal* estimated influence
    /// gains, in selection order.
    pub fn greedy_seeds(&self, k: usize) -> Vec<(NodeId, f64)> {
        let n = self.inverted.len();
        let theta = self.sets.len();
        let scale = self.universe as f64 / theta as f64;
        let mut covered = vec![false; theta];
        // Lazy greedy: max-heap of (upper-bound gain, node).
        let mut heap: std::collections::BinaryHeap<(u32, NodeId)> = (0..n as NodeId)
            .filter(|&v| !self.inverted[v as usize].is_empty())
            .map(|v| (self.inverted[v as usize].len() as u32, v))
            .collect();
        let mut out = Vec::with_capacity(k);
        let mut stale = vec![false; n]; // needs re-evaluation
        while out.len() < k {
            let Some((bound, v)) = heap.pop() else { break };
            if stale[v as usize] {
                let fresh = self.inverted[v as usize]
                    .iter()
                    .filter(|&&i| !covered[i as usize])
                    .count() as u32;
                stale[v as usize] = false;
                if fresh > 0 {
                    heap.push((fresh, v));
                }
                continue;
            }
            if bound == 0 {
                break;
            }
            // Select v.
            let mut gained = 0u32;
            for &i in &self.inverted[v as usize] {
                if !covered[i as usize] {
                    covered[i as usize] = true;
                    gained += 1;
                }
            }
            out.push((v, f64::from(gained) * scale));
            for s in stale.iter_mut() {
                *s = true;
            }
            stale[v as usize] = false;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::GraphBuilder;

    fn two_stars() -> Csr {
        let mut b = GraphBuilder::new(10);
        for v in 1..6 {
            b.add_edge(0, v);
        }
        for v in 7..10 {
            b.add_edge(6, v);
        }
        b.add_edge(5, 6);
        b.build()
    }

    #[test]
    fn greedy_picks_the_hubs_first() {
        let g = two_stars();
        let mut rng = SmallRng::seed_from_u64(1);
        let pool = RrPool::sample(&g, Model::WeightedCascade, 20_000, &mut rng, None);
        let seeds = pool.greedy_seeds(2);
        assert_eq!(seeds.len(), 2);
        let picked: Vec<NodeId> = seeds.iter().map(|&(v, _)| v).collect();
        assert!(picked.contains(&0), "big hub selected: {picked:?}");
        assert!(picked.contains(&6), "small hub selected: {picked:?}");
        // Marginal gains are non-increasing (submodularity).
        assert!(seeds[0].1 >= seeds[1].1);
    }

    #[test]
    fn estimate_matches_single_node_sigma() {
        let g = two_stars();
        let mut rng = SmallRng::seed_from_u64(2);
        let pool = RrPool::sample(&g, Model::WeightedCascade, 30_000, &mut rng, None);
        let mut mc = SmallRng::seed_from_u64(3);
        let truth =
            crate::montecarlo::influence(&g, Model::WeightedCascade, 0, 20_000, &mut mc, |_| true);
        let got = pool.estimate(&[0]);
        assert!(
            (got - truth).abs() < 0.2 * truth,
            "pool {got} vs mc {truth}"
        );
    }

    #[test]
    fn coverage_is_monotone() {
        let g = two_stars();
        let mut rng = SmallRng::seed_from_u64(4);
        let pool = RrPool::sample(&g, Model::WeightedCascade, 5_000, &mut rng, None);
        let one = pool.estimate(&[0]);
        let two = pool.estimate(&[0, 6]);
        let all: Vec<NodeId> = (0..10).collect();
        let full = pool.estimate(&all);
        assert!(one <= two && two <= full);
        assert!((full - 10.0).abs() < 1e-9, "all seeds cover everything");
    }

    #[test]
    fn restricted_pool_stays_in_community() {
        let g = two_stars();
        let members: Vec<NodeId> = vec![6, 7, 8, 9];
        let mut rng = SmallRng::seed_from_u64(5);
        let pool = RrPool::sample(&g, Model::WeightedCascade, 3_000, &mut rng, Some(&members));
        let seeds = pool.greedy_seeds(1);
        assert_eq!(seeds[0].0, 6, "community hub wins inside the community");
        // Outside nodes have no coverage at all.
        assert_eq!(pool.estimate(&[0]), 0.0);
    }

    #[test]
    fn asking_for_more_seeds_than_useful_stops_early() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        let g = b.build();
        let mut rng = SmallRng::seed_from_u64(6);
        let pool = RrPool::sample(&g, Model::UniformIc(1.0), 1_000, &mut rng, None);
        let seeds = pool.greedy_seeds(10);
        // Two seeds cover every RR set (component {0,1} and isolated 2).
        assert!(seeds.len() <= 3);
        let picked: Vec<NodeId> = seeds.iter().map(|&(v, _)| v).collect();
        assert!(
            picked.contains(&2),
            "isolated node still covers its own sets"
        );
    }
}
