//! Cooperative cancellation for long-running query work.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between a query's
//! planner and every worker doing sampling / clustering / index work on its
//! behalf. Workers poll it at coarse checkpoints (per RR-sample batch, per
//! HFS level, per merge wave, per linkage round); the token never interrupts
//! anything by itself, it only answers "should this work stop now?".
//!
//! Three independent triggers can fire a token:
//!
//! * an explicit [`CancelToken::cancel`] call (tests, admission control);
//! * a wall-clock **deadline** (checked lazily inside
//!   [`CancelToken::should_stop`], so the fast path is one relaxed atomic
//!   load);
//! * exceeding a **resource cap** charged by the workers themselves
//!   ([`CancelToken::charge_rr_edges`], [`CancelToken::charge_memory`]).
//!
//! Determinism contract: polling a token never touches an RNG and never
//! reorders work, so a token that never fires is invisible — results are
//! bit-identical to running without one.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    max_rr_edges: Option<u64>,
    max_memory_bytes: Option<usize>,
    rr_edges: AtomicU64,
    /// A parent whose firing cancels this token too (but never the other
    /// way round). Lets a server fire one engine-wide kill switch that
    /// reaches every in-flight query without tracking them individually.
    parent: Option<CancelToken>,
}

/// Shared cancellation flag with optional deadline and resource caps.
///
/// Cloning is an `Arc` bump; all clones observe the same state.
///
/// ```
/// use cod_influence::CancelToken;
/// use std::time::Duration;
///
/// let t = CancelToken::with(Some(Duration::from_secs(3600)), Some(10), None);
/// assert!(!t.should_stop());
/// t.charge_rr_edges(11); // blows the edge cap
/// assert!(t.is_cancelled());
/// ```
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token with no deadline and no caps: it only fires when
    /// [`cancel`](Self::cancel) is called explicitly.
    pub fn unlimited() -> Self {
        Self::with(None, None, None)
    }

    /// A token that fires after `deadline` elapses (measured from now), or
    /// when more than `max_rr_edges` RR-graph edges have been charged, or
    /// when a single memory charge exceeds `max_memory_bytes`.
    pub fn with(
        deadline: Option<Duration>,
        max_rr_edges: Option<u64>,
        max_memory_bytes: Option<usize>,
    ) -> Self {
        Self::build(deadline, max_rr_edges, max_memory_bytes, None)
    }

    /// Like [`CancelToken::with`], but additionally linked to `parent`:
    /// when the parent fires (or its deadline passes), this token observes
    /// it too. Firing the child never fires the parent. One parent can
    /// back any number of children — the engine uses this to give a server
    /// a single drain kill switch covering every in-flight query.
    pub fn with_parent(
        deadline: Option<Duration>,
        max_rr_edges: Option<u64>,
        max_memory_bytes: Option<usize>,
        parent: &CancelToken,
    ) -> Self {
        Self::build(
            deadline,
            max_rr_edges,
            max_memory_bytes,
            Some(parent.clone()),
        )
    }

    fn build(
        deadline: Option<Duration>,
        max_rr_edges: Option<u64>,
        max_memory_bytes: Option<usize>,
        parent: Option<CancelToken>,
    ) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: deadline.map(|d| Instant::now() + d),
                max_rr_edges,
                max_memory_bytes,
                rr_edges: AtomicU64::new(0),
                parent,
            }),
        }
    }

    /// Fires the token. Idempotent; never un-fires. A fired child leaves
    /// its parent untouched.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token has fired — a relaxed load per ancestor, no clock
    /// read. Suitable for the hottest checkpoint loops (the common case is
    /// a parentless token: exactly one load).
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match &self.inner.parent {
            Some(p) => p.is_cancelled(),
            None => false,
        }
    }

    /// Whether work should stop now: the flag, then (only if one is set)
    /// the deadline. A passed deadline latches the flag so later
    /// [`is_cancelled`](Self::is_cancelled) calls see it without re-reading
    /// the clock.
    pub fn should_stop(&self) -> bool {
        if self.is_cancelled() {
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.cancel();
                return true;
            }
        }
        // The parent's own deadline is lazy too; checking it here latches
        // the parent, so every sibling sees the stop on its next cheap poll.
        if let Some(p) = &self.inner.parent {
            if p.should_stop() {
                return true;
            }
        }
        false
    }

    /// Charges `n` traversed RR-graph edges against the edge cap; fires the
    /// token when the cumulative total exceeds it.
    pub fn charge_rr_edges(&self, n: u64) {
        let Some(cap) = self.inner.max_rr_edges else {
            return;
        };
        let total = self.inner.rr_edges.fetch_add(n, Ordering::Relaxed) + n;
        if total > cap {
            self.cancel();
        }
    }

    /// Charges a high-water scratch-memory reading against the memory cap;
    /// fires the token when `bytes` exceeds it. Not cumulative: each call
    /// reports a current resident size, not an allocation delta.
    pub fn charge_memory(&self, bytes: usize) {
        if let Some(cap) = self.inner.max_memory_bytes {
            if bytes > cap {
                self.cancel();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_latches() {
        let t = CancelToken::unlimited();
        assert!(!t.is_cancelled());
        assert!(!t.should_stop());
        t.cancel();
        assert!(t.is_cancelled());
        assert!(t.should_stop());
    }

    #[test]
    fn zero_deadline_fires_on_first_poll() {
        let t = CancelToken::with(Some(Duration::ZERO), None, None);
        // The cheap check alone never reads the clock.
        assert!(!t.is_cancelled());
        assert!(t.should_stop());
        // ...and the stop latched into the flag.
        assert!(t.is_cancelled());
    }

    #[test]
    fn edge_cap_is_cumulative_across_clones() {
        let t = CancelToken::with(None, Some(100), None);
        let u = t.clone();
        t.charge_rr_edges(60);
        assert!(!t.is_cancelled());
        u.charge_rr_edges(41);
        assert!(t.is_cancelled(), "clones share the charge ledger");
    }

    #[test]
    fn memory_cap_is_high_water_not_cumulative() {
        let t = CancelToken::with(None, None, Some(1000));
        t.charge_memory(600);
        t.charge_memory(600); // same reading twice: still under the cap
        assert!(!t.is_cancelled());
        t.charge_memory(1001);
        assert!(t.is_cancelled());
    }

    #[test]
    fn parent_cancellation_reaches_children_but_not_vice_versa() {
        let parent = CancelToken::unlimited();
        let a = CancelToken::with_parent(None, None, None, &parent);
        let b = CancelToken::with_parent(Some(Duration::from_secs(3600)), None, None, &parent);
        assert!(!a.is_cancelled() && !b.is_cancelled());
        // A fired child leaves the parent and its siblings untouched.
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!parent.is_cancelled() && !b.is_cancelled());
        // The parent firing reaches every child.
        parent.cancel();
        assert!(b.is_cancelled() && b.should_stop());
    }

    #[test]
    fn parent_deadline_latches_through_child_polls() {
        let parent = CancelToken::with(Some(Duration::ZERO), None, None);
        let child = CancelToken::with_parent(None, None, None, &parent);
        // The cheap check alone reads no clock, so nothing fired yet.
        assert!(!child.is_cancelled());
        // A full poll consults the parent's deadline and latches it.
        assert!(child.should_stop());
        assert!(parent.is_cancelled());
        assert!(child.is_cancelled());
    }

    #[test]
    fn uncapped_charges_never_fire() {
        let t = CancelToken::unlimited();
        t.charge_rr_edges(u64::MAX / 2);
        t.charge_memory(usize::MAX);
        assert!(!t.should_stop());
    }
}
