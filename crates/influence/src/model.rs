//! Diffusion models and their reverse-sampling rules.

use cod_graph::{Csr, NodeId};
use rand::prelude::*;

/// A diffusion model with RR-set-compatible reverse sampling (paper §II-A:
/// "our proposed method can support other typical influence models ... as
/// long as they are compatible with RR set-based influence evaluation").
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Model {
    /// Independent cascade with weighted-cascade probabilities
    /// `p(u, v) = 1 / deg(v)` (the paper's §V-A default, after \[37, 38\]).
    WeightedCascade,
    /// Independent cascade with one uniform probability for every edge.
    UniformIc(f64),
    /// Linear threshold with uniform edge weights `w(u, v) = 1 / deg(v)`.
    /// Reverse sampling picks exactly one uniformly random neighbor.
    LinearThreshold,
    /// A triggering model \[35\]: each node draws `min(k, deg)` distinct
    /// uniform neighbors as its trigger set; it activates when any trigger
    /// neighbor is active. `RandomK(1)` coincides with
    /// [`Model::LinearThreshold`]; `RandomK(deg)` with always-live IC.
    RandomK(u32),
}

impl Model {
    /// Forward activation probability of the directed edge `u → v`.
    ///
    /// For [`Model::LinearThreshold`] this is the LT edge *weight* (the
    /// probability that `v`'s uniformly drawn threshold is covered by `u`
    /// alone); forward simulation handles LT semantics separately.
    #[inline]
    pub fn edge_prob(&self, g: &Csr, v: NodeId) -> f64 {
        match *self {
            Model::WeightedCascade | Model::LinearThreshold => {
                let d = g.degree(v);
                if d == 0 {
                    0.0
                } else {
                    1.0 / d as f64
                }
            }
            Model::UniformIc(p) => p,
            Model::RandomK(k) => {
                let d = g.degree(v);
                if d == 0 {
                    0.0
                } else {
                    f64::from(k.min(d as u32)) / d as f64
                }
            }
        }
    }

    /// Reverse expansion from activated node `v`: appends to `out` each
    /// neighbor `u` whose reverse-influence coin `coin(u → v)` comes up live.
    ///
    /// Every incident coin is tested (not only toward inactive nodes); the
    /// caller records all live edges, which is what the possible-world
    /// coupling of Theorem 2 requires.
    #[inline]
    pub fn reverse_expand<R: Rng>(&self, g: &Csr, v: NodeId, rng: &mut R, out: &mut Vec<NodeId>) {
        let neigh = g.neighbors(v);
        if neigh.is_empty() {
            return;
        }
        match *self {
            Model::WeightedCascade => {
                let p = 1.0 / neigh.len() as f64;
                for &u in neigh {
                    if rng.random_bool(p) {
                        out.push(u);
                    }
                }
            }
            Model::UniformIc(p) => {
                for &u in neigh {
                    if rng.random_bool(p) {
                        out.push(u);
                    }
                }
            }
            Model::LinearThreshold => {
                // LT reverse sampling: exactly one in-neighbor, uniformly
                // (weights sum to 1 under the uniform parametrization).
                let u = neigh[rng.random_range(0..neigh.len())];
                out.push(u);
            }
            Model::RandomK(k) => {
                // Trigger-set reverse sampling: the RR process expands to
                // exactly the members of v's trigger set.
                sample_distinct(neigh, k as usize, rng, out);
            }
        }
    }

    /// Whether the model is an independent cascade variant (edge coins are
    /// independent, enabling forward edge-by-edge simulation).
    pub fn is_independent_cascade(&self) -> bool {
        !matches!(self, Model::LinearThreshold | Model::RandomK(_))
    }
}

/// Appends `min(k, |pool|)` distinct uniform elements of `pool` to `out`
/// (partial Fisher–Yates on a scratch copy for small pools, rejection
/// sampling otherwise).
fn sample_distinct<R: Rng>(pool: &[NodeId], k: usize, rng: &mut R, out: &mut Vec<NodeId>) {
    let k = k.min(pool.len());
    if k == 0 {
        return;
    }
    if k * 3 >= pool.len() {
        // Dense draw: shuffle a copy partially.
        let mut copy: Vec<NodeId> = pool.to_vec();
        for i in 0..k {
            let j = rng.random_range(i..copy.len());
            copy.swap(i, j);
            out.push(copy[i]);
        }
    } else {
        // Sparse draw: rejection on indices.
        let start = out.len();
        while out.len() - start < k {
            let cand = pool[rng.random_range(0..pool.len())];
            if !out[start..].contains(&cand) {
                out.push(cand);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::GraphBuilder;

    fn star() -> Csr {
        let mut b = GraphBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v);
        }
        b.build()
    }

    #[test]
    fn weighted_cascade_prob_is_inverse_degree() {
        let g = star();
        assert_eq!(Model::WeightedCascade.edge_prob(&g, 0), 0.25);
        assert_eq!(Model::WeightedCascade.edge_prob(&g, 1), 1.0);
    }

    #[test]
    fn uniform_ic_prob_is_constant() {
        let g = star();
        assert_eq!(Model::UniformIc(0.3).edge_prob(&g, 0), 0.3);
    }

    #[test]
    fn lt_reverse_picks_exactly_one() {
        let g = star();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let mut out = Vec::new();
            Model::LinearThreshold.reverse_expand(&g, 0, &mut rng, &mut out);
            assert_eq!(out.len(), 1);
            assert!((1..5).contains(&out[0]));
        }
    }

    #[test]
    fn wc_reverse_expansion_rate_matches_probability() {
        let g = star();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut total = 0usize;
        let trials = 20_000;
        let mut out = Vec::new();
        for _ in 0..trials {
            out.clear();
            Model::WeightedCascade.reverse_expand(&g, 0, &mut rng, &mut out);
            total += out.len();
        }
        // Expected successes per trial: 4 * 0.25 = 1.
        let mean = total as f64 / trials as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn random_k_picks_distinct_neighbors() {
        let g = star();
        let mut rng = SmallRng::seed_from_u64(4);
        for k in 1..=6u32 {
            for _ in 0..50 {
                let mut out = Vec::new();
                Model::RandomK(k).reverse_expand(&g, 0, &mut rng, &mut out);
                assert_eq!(out.len(), (k as usize).min(4));
                let mut sorted = out.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), out.len(), "duplicates in {out:?}");
            }
        }
    }

    #[test]
    fn random_k_edge_prob_is_k_over_degree() {
        let g = star();
        assert_eq!(Model::RandomK(1).edge_prob(&g, 0), 0.25);
        assert_eq!(Model::RandomK(2).edge_prob(&g, 0), 0.5);
        assert_eq!(Model::RandomK(9).edge_prob(&g, 0), 1.0);
        assert_eq!(Model::RandomK(1).edge_prob(&g, 1), 1.0);
    }

    #[test]
    fn isolated_node_expands_to_nothing() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let mut b2 = GraphBuilder::new(3);
        b2.add_edge(0, 1);
        let g = b2.build();
        drop(b);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut out = Vec::new();
        Model::WeightedCascade.reverse_expand(&g, 2, &mut rng, &mut out);
        assert!(out.is_empty());
        assert_eq!(Model::WeightedCascade.edge_prob(&g, 2), 0.0);
    }
}
