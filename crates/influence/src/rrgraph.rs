//! Reverse-reachable graphs (paper Definitions 2 and 3).

use cod_graph::NodeId;

/// An RR set together with the edges activated while generating it
/// (Definition 2). Nodes are stored with local indices `0..len`, node `0`
/// being the source; `targets` holds *directed* traversal edges `v ⇒ u`
/// (meaning `u` reverse-activated from `v`, i.e. influence flows `u → v`).
///
/// Restricting traversal to a community yields the induced RR graph of
/// Definition 3; by Theorem 2 the probability that a node is reachable from
/// the source inside the restriction estimates its influence in that
/// community.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RrGraph {
    /// Global node ids, in exploration (BFS) order; `nodes[0]` is the source.
    nodes: Vec<NodeId>,
    /// CSR offsets into `targets`, per local node.
    offsets: Vec<u32>,
    /// Out-neighbors (local indices) following activated edges away from the
    /// source.
    targets: Vec<u32>,
}

impl RrGraph {
    /// Assembles an RR graph from exploration results. `edges` holds local
    /// `(from, to)` pairs; both endpoints must be in range.
    pub(crate) fn from_parts(nodes: Vec<NodeId>, edges: &[(u32, u32)]) -> Self {
        let n = nodes.len();
        let mut counts = vec![0u32; n + 1];
        for &(f, _) in edges {
            counts[f as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0u32; edges.len()];
        for &(f, t) in edges {
            debug_assert!((t as usize) < n);
            targets[cursor[f as usize] as usize] = t;
            cursor[f as usize] += 1;
        }
        Self {
            nodes,
            offsets,
            targets,
        }
    }

    /// The source node (global id).
    #[inline]
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Number of nodes in the RR set.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the RR graph holds only the source (it never holds zero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of activated (directed traversal) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Global ids of the RR set, in exploration order.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Global id of local node `l`.
    #[inline]
    pub fn node(&self, l: u32) -> NodeId {
        self.nodes[l as usize]
    }

    /// Heap bytes held by this RR graph's three arrays — the unit the
    /// shared-pool cache's byte budget is accounted in.
    #[inline]
    pub fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * size_of::<NodeId>()
            + self.offsets.capacity() * size_of::<u32>()
            + self.targets.capacity() * size_of::<u32>()
    }

    /// Out-neighbors (local indices) of local node `l`.
    #[inline]
    pub fn out_neighbors(&self, l: u32) -> &[u32] {
        let l = l as usize;
        &self.targets[self.offsets[l] as usize..self.offsets[l + 1] as usize]
    }

    /// Nodes reachable from the source when traversal is restricted to
    /// nodes satisfying `keep` — the reachable set of the induced RR graph
    /// `R_g(C)` of Definition 3. Returns global ids; empty if the source
    /// itself is excluded.
    pub fn reachable_within(&self, keep: impl Fn(NodeId) -> bool) -> Vec<NodeId> {
        if !keep(self.source()) {
            return Vec::new();
        }
        let n = self.len();
        let mut seen = vec![false; n];
        seen[0] = true;
        let mut stack = vec![0u32];
        let mut out = vec![self.source()];
        while let Some(v) = stack.pop() {
            for &u in self.out_neighbors(v) {
                if !seen[u as usize] && keep(self.nodes[u as usize]) {
                    seen[u as usize] = true;
                    stack.push(u);
                    out.push(self.nodes[u as usize]);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// source 7 ⇒ 3 ⇒ 5, and 7 ⇒ 9 (local: 0⇒1⇒2, 0⇒3).
    fn sample() -> RrGraph {
        RrGraph::from_parts(vec![7, 3, 5, 9], &[(0, 1), (1, 2), (0, 3)])
    }

    #[test]
    fn structure_round_trip() {
        let r = sample();
        assert_eq!(r.source(), 7);
        assert_eq!(r.len(), 4);
        assert_eq!(r.num_edges(), 3);
        assert_eq!(r.out_neighbors(0), &[1, 3]);
        assert_eq!(r.out_neighbors(1), &[2]);
        assert_eq!(r.out_neighbors(2), &[] as &[u32]);
    }

    #[test]
    fn unrestricted_reachability_is_everything() {
        let r = sample();
        let mut got = r.reachable_within(|_| true);
        got.sort_unstable();
        assert_eq!(got, vec![3, 5, 7, 9]);
    }

    #[test]
    fn restriction_cuts_paths() {
        let r = sample();
        // Without node 3, node 5 is unreachable.
        let mut got = r.reachable_within(|v| v != 3);
        got.sort_unstable();
        assert_eq!(got, vec![7, 9]);
    }

    #[test]
    fn excluded_source_gives_empty_induced_set() {
        let r = sample();
        assert!(r.reachable_within(|v| v != 7).is_empty());
    }
}
