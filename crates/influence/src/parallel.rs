//! Scoped-thread execution layer with deterministic work splitting.
//!
//! The only primitive here is [`par_ranges`]: split `0..n` into contiguous
//! index ranges, run a worker per range on its own OS thread, and return the
//! per-range outputs **in index order**. Combined with per-index seed
//! derivation ([`crate::SeedSequence`]), this makes every parallel result a
//! pure function of `(input, master seed)`: chunk boundaries only decide
//! which thread computes a sample, never what the sample is, and outputs are
//! recombined in a fixed order (concatenation for sample pools, commutative
//! integer addition for count accumulators).
//!
//! The crate deliberately avoids a work-stealing pool dependency; scoped
//! threads are spawned per call, which is cheap relative to the
//! `O(Θ·ω)` sampling work each call amortizes.

use std::ops::Range;

use rand::Rng;

use crate::seed::SeedSequence;

/// How a sampling loop obtains randomness — the one axis on which the
/// legacy (serial) and deterministic-parallel code paths differ.
///
/// PR 2 left each sampling site duplicated into a `fn foo(rng)` /
/// `fn foo_seeded(seeds, par)` pair; this enum folds the pair back into a
/// single generic driver. [`SeedPolicy::Stream`] threads one caller RNG
/// through every sample in order (byte-compatible with the pre-PR-2
/// stream); [`SeedPolicy::PerIndex`] derives an independent RNG per sample
/// index from a [`SeedSequence`], which makes the result a pure function of
/// the master seed and therefore identical for every thread count.
pub enum SeedPolicy<'a, R: Rng> {
    /// Legacy single stream: sample `i + 1` continues where sample `i`
    /// left off. Inherently sequential.
    Stream(&'a mut R),
    /// Per-index derivation: sample `i` draws from `seeds.rng_for(i)`.
    /// Parallelizable under `par` without changing any drawn sample.
    PerIndex {
        /// The master seed sequence.
        seeds: SeedSequence,
        /// Fan-out policy for the sampling loop.
        par: Parallelism,
    },
}

impl<'a, R: Rng> SeedPolicy<'a, R> {
    /// The thread count this policy may legally use ([`SeedPolicy::Stream`]
    /// is always 1 — a shared mutable RNG cannot fan out).
    #[must_use]
    pub fn thread_count(&self) -> usize {
        match self {
            SeedPolicy::Stream(_) => 1,
            SeedPolicy::PerIndex { par, .. } => par.thread_count(),
        }
    }
}

/// [`SeedPolicy`] instantiation for call sites that never stream a caller
/// RNG (the `R` parameter is irrelevant when only
/// [`SeedPolicy::PerIndex`] is constructed).
pub type SeededOnly = SeedPolicy<'static, rand::rngs::SmallRng>;

/// How to execute a parallelizable stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Pick a thread count from the environment: `RAYON_NUM_THREADS`, then
    /// `COD_THREADS`, then [`std::thread::available_parallelism`].
    #[default]
    Auto,
    /// Single-threaded. In the query pipeline this also selects the legacy
    /// caller-RNG sampling stream (see `CodConfig::parallelism`).
    Serial,
    /// Exactly `n` worker threads (clamped to at least 1). Results are
    /// identical for every `n` — `Threads(1)` and `Threads(8)` agree bit
    /// for bit.
    Threads(usize),
}

impl Parallelism {
    /// The number of worker threads this policy resolves to.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        match *self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => env_thread_override()
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from)),
        }
    }

    /// `true` unless this is the legacy [`Parallelism::Serial`] policy.
    /// Seeded (per-index-derived) sampling paths are used exactly when this
    /// holds, independent of the resolved thread count.
    #[must_use]
    pub fn is_seeded(&self) -> bool {
        !matches!(self, Parallelism::Serial)
    }
}

fn env_thread_override() -> Option<usize> {
    for var in ["RAYON_NUM_THREADS", "COD_THREADS"] {
        if let Ok(raw) = std::env::var(var) {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n >= 1 {
                    return Some(n);
                }
            }
        }
    }
    None
}

/// Splits `0..n` into at most `threads` contiguous, balanced ranges and runs
/// `worker` on each, returning the per-range outputs in index order.
///
/// With `threads <= 1` (or `n <= 1`) the worker runs on the calling thread.
/// A worker panic is propagated to the caller.
pub fn par_ranges<T, F>(n: usize, threads: usize, worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return vec![worker(0..n)];
    }
    let chunk = n.div_ceil(threads);
    let ranges: Vec<Range<usize>> = (0..threads)
        .map(|t| (t * chunk).min(n)..((t + 1) * chunk).min(n))
        .filter(|r| !r.is_empty())
        .collect();
    std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(move || worker(r)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_exactly_once_for_any_thread_count() {
        for n in [0usize, 1, 2, 7, 64, 101] {
            for threads in [1usize, 2, 3, 8, 200] {
                let parts = par_ranges(n, threads, |r| r.collect::<Vec<_>>());
                let flat: Vec<usize> = parts.into_iter().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} t={threads}");
            }
        }
    }

    #[test]
    fn serial_runs_on_calling_thread() {
        let id = std::thread::current().id();
        let out = par_ranges(5, 1, |r| (std::thread::current().id(), r.len()));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, id);
        assert_eq!(out[0].1, 5);
    }

    #[test]
    fn thread_count_resolution() {
        assert_eq!(Parallelism::Serial.thread_count(), 1);
        assert_eq!(Parallelism::Threads(0).thread_count(), 1);
        assert_eq!(Parallelism::Threads(6).thread_count(), 6);
        assert!(Parallelism::Auto.thread_count() >= 1);
        assert!(!Parallelism::Serial.is_seeded());
        assert!(Parallelism::Auto.is_seeded());
        assert!(Parallelism::Threads(1).is_seeded());
    }
}
