//! RR-graph generation with reusable scratch space.

use cod_graph::{Csr, NodeId};
use rand::prelude::*;

use crate::model::Model;
use crate::rrgraph::RrGraph;

/// Generates RR graphs on a graph under a diffusion model.
///
/// Scratch arrays (visited stamps and local-id mapping) are allocated once
/// and reused across samples, so generating `Θ` RR graphs costs
/// `O(Θ · ω)` with no per-sample `O(|V|)` term (paper Theorem 4's sampling
/// cost).
///
/// ```
/// use cod_graph::GraphBuilder;
/// use cod_influence::{Model, RrSampler};
/// use rand::prelude::*;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let g = b.build();
/// let mut sampler = RrSampler::new(&g, Model::WeightedCascade);
/// let mut rng = SmallRng::seed_from_u64(7);
/// let rr = sampler.sample_from(1, &mut rng);
/// assert_eq!(rr.source(), 1);
/// assert!(rr.len() >= 1 && rr.len() <= 3);
/// ```
pub struct RrSampler<'g> {
    g: &'g Csr,
    model: Model,
    /// `stamp[v] == epoch` iff `v` is in the RR set being built.
    stamp: Vec<u32>,
    /// Local index of `v` in the current sample (valid when stamped).
    local: Vec<u32>,
    epoch: u32,
    stats: SampleStats,
}

/// Detached sampler scratch buffers, reusable across queries and graphs.
///
/// A sampler borrows the graph, so it cannot outlive a query that owns the
/// graph reference; the scratch can. Move buffers in with
/// [`RrSampler::with_scratch`] and recover them with
/// [`RrSampler::into_scratch`] so repeated queries skip the two `O(|V|)`
/// allocations per sampler.
///
/// The epoch travels with the stamps, so a scratch handed between samplers
/// (even over different graphs) never mistakes a stale stamp for a current
/// one: stamps are always `<= epoch`, and `with_scratch` zero-fills any
/// extension.
#[derive(Default, Debug)]
pub struct SamplerScratch {
    stamp: Vec<u32>,
    local: Vec<u32>,
    epoch: u32,
    stats: SampleStats,
}

impl SamplerScratch {
    /// Bytes held by the scratch buffers (capacity, not length).
    pub fn memory_bytes(&self) -> usize {
        (self.stamp.capacity() + self.local.capacity()) * std::mem::size_of::<u32>()
    }

    /// Cumulative sampling effort recorded by every sampler this scratch
    /// has passed through. Callers that want per-query numbers snapshot
    /// before and after and subtract.
    pub fn stats(&self) -> SampleStats {
        self.stats
    }
}

/// Cumulative sampling-effort counters.
///
/// `graphs` counts RR graphs generated; `edges` counts activated edges
/// recorded across them — together the `Θ · ω` of the paper's sampling
/// cost. Plain integers bumped on the sampling path (no atomics), carried
/// with the sampler and its detachable [`SamplerScratch`] so effort
/// accumulates across scratch reuse. Reading or resetting them never
/// touches the RNG: telemetry cannot change a drawn sample.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SampleStats {
    /// RR graphs generated.
    pub graphs: u64,
    /// Activated edges recorded across all generated RR graphs.
    pub edges: u64,
}

impl SampleStats {
    /// Component-wise difference since an `earlier` snapshot (saturating,
    /// so a swapped argument order cannot panic).
    #[must_use]
    pub fn delta_since(&self, earlier: SampleStats) -> SampleStats {
        SampleStats {
            graphs: self.graphs.saturating_sub(earlier.graphs),
            edges: self.edges.saturating_sub(earlier.edges),
        }
    }

    /// Component-wise sum.
    #[must_use]
    pub fn merged(&self, other: SampleStats) -> SampleStats {
        SampleStats {
            graphs: self.graphs + other.graphs,
            edges: self.edges + other.edges,
        }
    }
}

impl<'g> RrSampler<'g> {
    /// A sampler over `g` under `model`.
    pub fn new(g: &'g Csr, model: Model) -> Self {
        Self::with_scratch(g, model, SamplerScratch::default())
    }

    /// A sampler over `g` reusing previously allocated `scratch` buffers.
    ///
    /// Sampling behaviour is identical to [`RrSampler::new`] — the scratch
    /// only affects allocation, never the drawn RR graphs.
    pub fn with_scratch(g: &'g Csr, model: Model, scratch: SamplerScratch) -> Self {
        let SamplerScratch {
            mut stamp,
            mut local,
            epoch,
            stats,
        } = scratch;
        stamp.resize(g.num_nodes(), 0);
        local.resize(g.num_nodes(), 0);
        Self {
            g,
            model,
            stamp,
            local,
            epoch,
            stats,
        }
    }

    /// Releases the scratch buffers for reuse by a later sampler.
    pub fn into_scratch(self) -> SamplerScratch {
        SamplerScratch {
            stamp: self.stamp,
            local: self.local,
            epoch: self.epoch,
            stats: self.stats,
        }
    }

    /// Cumulative sampling effort (including any carried in via scratch).
    pub fn stats(&self) -> SampleStats {
        self.stats
    }

    /// The diffusion model in use.
    pub fn model(&self) -> Model {
        self.model
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Csr {
        self.g
    }

    /// Samples one RR graph from a uniformly random source.
    pub fn sample_uniform<R: Rng>(&mut self, rng: &mut R) -> RrGraph {
        let s = rng.random_range(0..self.g.num_nodes()) as NodeId;
        self.sample_from(s, rng)
    }

    /// Samples one RR graph from `source` (paper Definition 2).
    pub fn sample_from<R: Rng>(&mut self, source: NodeId, rng: &mut R) -> RrGraph {
        self.sample_restricted(source, rng, |_| true)
    }

    /// Samples an RR graph whose traversal never leaves the nodes accepted
    /// by `keep` — RR generation *on the community* used by the Independent
    /// baseline. Edge probabilities stay those of the full graph `g`
    /// (Theorem 2's possible-world coupling).
    ///
    /// `keep(source)` must hold.
    pub fn sample_restricted<R: Rng>(
        &mut self,
        source: NodeId,
        rng: &mut R,
        keep: impl Fn(NodeId) -> bool,
    ) -> RrGraph {
        debug_assert!(keep(source), "source must satisfy the restriction");
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap-around: reset (once every 2^32 samples).
            self.stamp.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        let mut nodes = vec![source];
        let mut edges: Vec<(u32, u32)> = Vec::new();
        self.stamp[source as usize] = epoch;
        self.local[source as usize] = 0;
        let mut frontier = 0usize;
        let mut expansion: Vec<NodeId> = Vec::new();
        while frontier < nodes.len() {
            let v = nodes[frontier];
            let lv = frontier as u32;
            frontier += 1;
            expansion.clear();
            self.model.reverse_expand(self.g, v, rng, &mut expansion);
            for &u in &expansion {
                if !keep(u) {
                    continue;
                }
                let lu = if self.stamp[u as usize] == epoch {
                    self.local[u as usize]
                } else {
                    let lu = nodes.len() as u32;
                    self.stamp[u as usize] = epoch;
                    self.local[u as usize] = lu;
                    nodes.push(u);
                    lu
                };
                edges.push((lv, lu));
            }
        }
        self.stats.graphs += 1;
        self.stats.edges += edges.len() as u64;
        RrGraph::from_parts(nodes, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::GraphBuilder;

    fn path3() -> Csr {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.build()
    }

    #[test]
    fn deterministic_graph_explores_everything() {
        // UniformIc(1.0): every coin is live, so the RR set is the whole
        // connected component and every directed edge is recorded.
        let g = path3();
        let mut s = RrSampler::new(&g, Model::UniformIc(1.0));
        let mut rng = SmallRng::seed_from_u64(0);
        let r = s.sample_from(1, &mut rng);
        assert_eq!(r.len(), 3);
        // Node 1 has two out-edges; 0 and 2 each record their edge back to 1.
        assert_eq!(r.num_edges(), 4);
    }

    #[test]
    fn zero_probability_keeps_only_source() {
        let g = path3();
        let mut s = RrSampler::new(&g, Model::UniformIc(0.0));
        let mut rng = SmallRng::seed_from_u64(0);
        let r = s.sample_from(1, &mut rng);
        assert_eq!(r.len(), 1);
        assert_eq!(r.source(), 1);
        assert_eq!(r.num_edges(), 0);
    }

    #[test]
    fn restriction_is_respected() {
        let g = path3();
        let mut s = RrSampler::new(&g, Model::UniformIc(1.0));
        let mut rng = SmallRng::seed_from_u64(0);
        let r = s.sample_restricted(0, &mut rng, |v| v != 2);
        assert!(r.nodes().iter().all(|&v| v != 2));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn scratch_reuse_across_samples_is_clean() {
        let g = path3();
        let mut s = RrSampler::new(&g, Model::UniformIc(1.0));
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..100 {
            let r = s.sample_uniform(&mut rng);
            // No duplicate nodes may appear.
            let mut ns = r.nodes().to_vec();
            ns.sort_unstable();
            ns.dedup();
            assert_eq!(ns.len(), r.len());
        }
    }

    #[test]
    fn recycled_scratch_draws_identical_samples() {
        let g = path3();
        let star = {
            let mut b = GraphBuilder::new(5);
            for v in 1..5 {
                b.add_edge(0, v);
            }
            b.build()
        };
        // Fresh-scratch reference stream.
        let mut fresh = RrSampler::new(&g, Model::WeightedCascade);
        let mut rng = SmallRng::seed_from_u64(11);
        let want: Vec<Vec<u32>> = (0..50)
            .map(|_| fresh.sample_uniform(&mut rng).nodes().to_vec())
            .collect();
        // Dirty the scratch on a different (larger) graph, then reuse it.
        let mut scratch = SamplerScratch::default();
        {
            let mut s = RrSampler::with_scratch(&star, Model::WeightedCascade, scratch);
            let mut r2 = SmallRng::seed_from_u64(99);
            for _ in 0..10 {
                s.sample_uniform(&mut r2);
            }
            scratch = s.into_scratch();
        }
        let mut reused = RrSampler::with_scratch(&g, Model::WeightedCascade, scratch);
        let mut rng = SmallRng::seed_from_u64(11);
        let got: Vec<Vec<u32>> = (0..50)
            .map(|_| reused.sample_uniform(&mut rng).nodes().to_vec())
            .collect();
        assert_eq!(want, got, "scratch reuse must not change drawn samples");
    }

    #[test]
    fn stats_count_graphs_and_edges_and_travel_with_scratch() {
        let g = path3();
        let mut s = RrSampler::new(&g, Model::UniformIc(1.0));
        let mut rng = SmallRng::seed_from_u64(3);
        s.sample_from(1, &mut rng); // 3 nodes, 4 recorded edges
        s.sample_from(1, &mut rng);
        assert_eq!(
            s.stats(),
            SampleStats {
                graphs: 2,
                edges: 8
            }
        );
        // Stats ride along when the scratch is recycled into a new sampler.
        let scratch = s.into_scratch();
        assert_eq!(scratch.stats().graphs, 2);
        let mut s2 = RrSampler::with_scratch(&g, Model::UniformIc(0.0), scratch);
        s2.sample_from(0, &mut rng); // source only, no edges
        assert_eq!(
            s2.stats(),
            SampleStats {
                graphs: 3,
                edges: 8
            }
        );
        let d = s2.stats().delta_since(SampleStats {
            graphs: 2,
            edges: 8,
        });
        assert_eq!(
            d,
            SampleStats {
                graphs: 1,
                edges: 0
            }
        );
    }

    #[test]
    fn weighted_cascade_respects_structure() {
        // Star: center 0 with leaves. RR from a leaf reaches the center
        // with p = 1 (leaf degree 1); RR from center reaches each leaf
        // with p = 1/4.
        let mut b = GraphBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v);
        }
        let g = b.build();
        let mut s = RrSampler::new(&g, Model::WeightedCascade);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut center_reached = 0;
        for _ in 0..500 {
            let r = s.sample_from(1, &mut rng);
            if r.nodes().contains(&0) {
                center_reached += 1;
            }
        }
        assert_eq!(center_reached, 500, "leaf always reaches the center");
    }
}
