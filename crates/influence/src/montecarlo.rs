//! Forward-simulation ground truth for influence values.
//!
//! RR-based estimates are validated against plain forward simulation of the
//! diffusion process. This is the reference used for the paper's top-k
//! precision experiments (§V-C) and for tests of Theorems 1 and 2.

use cod_graph::{Csr, NodeId};
use rand::prelude::*;

use crate::model::Model;
use crate::parallel::{par_ranges, Parallelism};
use crate::seed::SeedSequence;

/// Estimates `σ_C(seed)` — the expected number of nodes activated by `seed`
/// when the process runs inside the node set accepted by `keep` — by
/// averaging `trials` forward simulations.
///
/// Edge probabilities are those of the full graph `g` regardless of the
/// restriction, matching the community influence semantics of Theorem 2.
pub fn influence<R: Rng>(
    g: &Csr,
    model: Model,
    seed: NodeId,
    trials: usize,
    rng: &mut R,
    keep: impl Fn(NodeId) -> bool,
) -> f64 {
    assert!(trials > 0);
    let mut total = 0usize;
    let mut scratch = Scratch::new(g.num_nodes());
    for _ in 0..trials {
        total += match model {
            Model::LinearThreshold => simulate_lt(g, seed, rng, &keep, &mut scratch),
            Model::RandomK(k) => simulate_triggering(g, k, seed, rng, &keep, &mut scratch),
            _ => simulate_ic(g, model, seed, rng, &keep, &mut scratch),
        };
    }
    total as f64 / trials as f64
}

/// [`influence`] with per-index seed derivation: trial `i` runs entirely on
/// `seeds.rng_for(i)`. Activation counts are integers, so the sum over
/// contiguous trial ranges is exact and the estimate is bit-identical for
/// every thread count.
pub fn influence_seeded(
    g: &Csr,
    model: Model,
    seed: NodeId,
    trials: usize,
    seeds: SeedSequence,
    par: Parallelism,
    keep: impl Fn(NodeId) -> bool + Sync,
) -> f64 {
    assert!(trials > 0);
    let partials = par_ranges(trials, par.thread_count(), |range| {
        let mut scratch = Scratch::new(g.num_nodes());
        let mut total = 0usize;
        for i in range {
            let mut rng = seeds.rng_for(i as u64);
            total += match model {
                Model::LinearThreshold => simulate_lt(g, seed, &mut rng, &keep, &mut scratch),
                Model::RandomK(k) => simulate_triggering(g, k, seed, &mut rng, &keep, &mut scratch),
                _ => simulate_ic(g, model, seed, &mut rng, &keep, &mut scratch),
            };
        }
        total
    });
    partials.into_iter().sum::<usize>() as f64 / trials as f64
}

struct Scratch {
    stamp: Vec<u32>,
    epoch: u32,
    acc: Vec<f64>,
    threshold: Vec<f64>,
    thr_stamp: Vec<u32>,
    /// Per-node trigger sets (triggering models), lazily sampled per
    /// cascade.
    trigger: Vec<Vec<cod_graph::NodeId>>,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Self {
            stamp: vec![0; n],
            epoch: 0,
            acc: vec![0.0; n],
            threshold: vec![0.0; n],
            thr_stamp: vec![0; n],
            trigger: vec![Vec::new(); n],
        }
    }

    fn next_epoch(&mut self) -> u32 {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.thr_stamp.fill(0);
            self.epoch = 1;
        }
        self.epoch
    }
}

/// One forward IC cascade; returns the number of activated nodes.
fn simulate_ic<R: Rng>(
    g: &Csr,
    model: Model,
    seed: NodeId,
    rng: &mut R,
    keep: &impl Fn(NodeId) -> bool,
    s: &mut Scratch,
) -> usize {
    debug_assert!(keep(seed));
    let epoch = s.next_epoch();
    s.stamp[seed as usize] = epoch;
    let mut queue = vec![seed];
    let mut head = 0usize;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for &u in g.neighbors(v) {
            if s.stamp[u as usize] == epoch || !keep(u) {
                continue;
            }
            let p = model.edge_prob(g, u);
            if p > 0.0 && rng.random_bool(p.min(1.0)) {
                s.stamp[u as usize] = epoch;
                queue.push(u);
            }
        }
    }
    queue.len()
}

/// One forward LT cascade with uniform weights `w(u, v) = 1/deg(v)`;
/// returns the number of activated nodes.
fn simulate_lt<R: Rng>(
    g: &Csr,
    seed: NodeId,
    rng: &mut R,
    keep: &impl Fn(NodeId) -> bool,
    s: &mut Scratch,
) -> usize {
    debug_assert!(keep(seed));
    let epoch = s.next_epoch();
    s.stamp[seed as usize] = epoch;
    let mut queue = vec![seed];
    let mut head = 0usize;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for &u in g.neighbors(v) {
            if s.stamp[u as usize] == epoch || !keep(u) {
                continue;
            }
            // Lazily draw u's threshold once per cascade.
            if s.thr_stamp[u as usize] != epoch {
                s.thr_stamp[u as usize] = epoch;
                s.threshold[u as usize] = rng.random();
                s.acc[u as usize] = 0.0;
            }
            s.acc[u as usize] += 1.0 / g.degree(u) as f64;
            if s.acc[u as usize] >= s.threshold[u as usize] {
                s.stamp[u as usize] = epoch;
                queue.push(u);
            }
        }
    }
    queue.len()
}

/// One forward cascade under the `RandomK` triggering model: each node's
/// trigger set (`min(k, deg)` distinct uniform neighbors) is drawn lazily
/// once per cascade; a node activates when an active neighbor belongs to
/// its trigger set.
fn simulate_triggering<R: Rng>(
    g: &Csr,
    k: u32,
    seed: NodeId,
    rng: &mut R,
    keep: &impl Fn(NodeId) -> bool,
    s: &mut Scratch,
) -> usize {
    debug_assert!(keep(seed));
    let epoch = s.next_epoch();
    s.stamp[seed as usize] = epoch;
    let mut queue = vec![seed];
    let mut head = 0usize;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for &u in g.neighbors(v) {
            if s.stamp[u as usize] == epoch || !keep(u) {
                continue;
            }
            if s.thr_stamp[u as usize] != epoch {
                s.thr_stamp[u as usize] = epoch;
                let set = &mut s.trigger[u as usize];
                set.clear();
                Model::RandomK(k).reverse_expand(g, u, rng, set);
            }
            if s.trigger[u as usize].contains(&v) {
                s.stamp[u as usize] = epoch;
                queue.push(u);
            }
        }
    }
    queue.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::GraphBuilder;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(11)
    }

    #[test]
    fn seed_always_counts_itself() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.build();
        let mut r = rng();
        let inf = influence(&g, Model::UniformIc(0.0), 0, 100, &mut r, |_| true);
        assert_eq!(inf, 1.0);
    }

    #[test]
    fn full_probability_reaches_component() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        // node 3 disconnected
        let g = b.build();
        let mut r = rng();
        let inf = influence(&g, Model::UniformIc(1.0), 0, 50, &mut r, |_| true);
        assert_eq!(inf, 3.0);
    }

    #[test]
    fn restriction_limits_spread() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        let mut r = rng();
        let inf = influence(&g, Model::UniformIc(1.0), 0, 50, &mut r, |v| v != 2);
        assert_eq!(inf, 2.0);
    }

    #[test]
    fn two_node_wc_influence_matches_closed_form() {
        // 0 - 1: p(0,1) = 1/deg(1) = 1. σ(0) = 2.
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.build();
        let mut r = rng();
        let inf = influence(&g, Model::WeightedCascade, 0, 2000, &mut r, |_| true);
        assert!((inf - 2.0).abs() < 1e-9);
    }

    #[test]
    fn star_center_wc_influence_matches_closed_form() {
        // Star with 4 leaves: center activates each leaf with p = 1
        // (deg(leaf) = 1), so σ(center) = 5; a leaf activates the center
        // with p = 1/4, then the center activates the other 3 leaves:
        // σ(leaf) = 1 + (1/4)(1 + 3) = 2.
        let mut b = GraphBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v);
        }
        let g = b.build();
        let mut r = rng();
        let c = influence(&g, Model::WeightedCascade, 0, 4000, &mut r, |_| true);
        assert!((c - 5.0).abs() < 1e-9, "center {c}");
        let l = influence(&g, Model::WeightedCascade, 1, 40_000, &mut r, |_| true);
        assert!((l - 2.0).abs() < 0.08, "leaf {l}");
    }

    #[test]
    fn triggering_with_full_degree_matches_always_live_ic() {
        // RandomK(deg) puts every neighbor in every trigger set: the
        // cascade reaches the whole component deterministically.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let g = b.build();
        let mut r = rng();
        let inf = influence(&g, Model::RandomK(10), 0, 200, &mut r, |_| true);
        assert_eq!(inf, 4.0);
    }

    #[test]
    fn triggering_rr_estimate_matches_simulation() {
        // Star + an extra edge: compare RR-based estimation with the
        // forward triggering simulation for RandomK(2).
        let mut b = GraphBuilder::new(6);
        for v in 1..6 {
            b.add_edge(0, v);
        }
        b.add_edge(1, 2);
        let g = b.build();
        let mut r = rng();
        let est =
            crate::estimate::InfluenceEstimate::on_graph(&g, Model::RandomK(2), 40_000, &mut r);
        let mut mc = SmallRng::seed_from_u64(99);
        for v in 0..6u32 {
            let truth = influence(&g, Model::RandomK(2), v, 20_000, &mut mc, |_| true);
            let got = est.sigma(v);
            assert!(
                (got - truth).abs() < 0.25 * truth.max(1.0),
                "node {v}: RR {got} vs MC {truth}"
            );
        }
    }

    #[test]
    fn lt_influence_on_pair_is_exact() {
        // 0 - 1: under LT with weight 1, node 1's threshold is always
        // covered once 0 is active. σ(0) = 2.
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.build();
        let mut r = rng();
        let inf = influence(&g, Model::LinearThreshold, 0, 500, &mut r, |_| true);
        assert_eq!(inf, 2.0);
    }
}
