//! RR-based influence estimation and rank computation.

use cod_graph::{Csr, FxHashMap, NodeId};
use rand::prelude::*;

use crate::model::Model;
use crate::parallel::{par_ranges, Parallelism, SeedPolicy};
use crate::sampler::{RrSampler, SamplerScratch};
use crate::seed::SeedSequence;

fn merge_count_shards(shards: Vec<FxHashMap<NodeId, u32>>) -> FxHashMap<NodeId, u32> {
    let mut iter = shards.into_iter();
    let mut counts = iter.next().unwrap_or_default();
    for shard in iter {
        // Addition commutes, so the merge order cannot affect the result.
        for (v, c) in shard {
            *counts.entry(v).or_insert(0) += c;
        }
    }
    counts
}

/// Where RR-sample sources are drawn from (and what traversal may touch).
#[derive(Clone, Copy, Debug)]
pub enum SourceUniverse<'a> {
    /// Uniform sources over the whole graph, unrestricted traversal.
    Graph,
    /// Uniform sources over `members` (sorted ascending), traversal
    /// restricted to `members` — the paper's per-community estimator.
    Members(&'a [NodeId]),
}

impl SourceUniverse<'_> {
    fn len(&self, g: &Csr) -> usize {
        match self {
            SourceUniverse::Graph => g.num_nodes(),
            SourceUniverse::Members(m) => m.len(),
        }
    }
}

/// Draws one RR sample per the universe and folds its nodes into `counts`.
/// This is the shared per-sample body of every estimation loop; the seed
/// policy only decides which `rng` arrives here.
#[inline]
fn record_one<R: Rng>(
    sampler: &mut RrSampler<'_>,
    universe: SourceUniverse<'_>,
    rng: &mut R,
    counts: &mut FxHashMap<NodeId, u32>,
) {
    let r = match universe {
        SourceUniverse::Graph => sampler.sample_uniform(rng),
        SourceUniverse::Members(members) => {
            let s = members[rng.random_range(0..members.len())];
            sampler.sample_restricted(s, rng, |v| members.binary_search(&v).is_ok())
        }
    };
    for &v in r.nodes() {
        *counts.entry(v).or_insert(0) += 1;
    }
}

/// RR-sample appearance counts over a node universe of size `universe`,
/// from `theta` samples. `σ̂(v) = count(v) / theta · universe` (Theorem 1).
#[derive(Clone, Debug)]
pub struct InfluenceEstimate {
    counts: FxHashMap<NodeId, u32>,
    theta: usize,
    universe: usize,
}

impl InfluenceEstimate {
    /// The single estimation driver: `theta` RR samples over `universe`,
    /// randomness per `policy`, optional reusable sampler `scratch`.
    ///
    /// Every `on_*` constructor is a thin wrapper over this. The drawn
    /// samples depend only on `(g, model, universe, theta, policy)` — the
    /// scratch and the resolved thread count never change a sample.
    pub fn with_policy<R: Rng>(
        g: &Csr,
        model: Model,
        universe: SourceUniverse<'_>,
        theta: usize,
        policy: SeedPolicy<'_, R>,
        mut scratch: Option<&mut SamplerScratch>,
    ) -> InfluenceEstimate {
        assert!(theta > 0 && universe.len(g) > 0);
        if let SourceUniverse::Members(m) = universe {
            debug_assert!(m.windows(2).all(|w| w[0] < w[1]));
        }
        let universe_len = universe.len(g);
        // Borrow the caller's scratch for single-threaded runs; parallel
        // shards allocate their own (a &mut cannot be shared across
        // workers, and shard-local scratch keeps workers contention-free).
        let take = |scratch: &mut Option<&mut SamplerScratch>| match scratch {
            Some(s) => RrSampler::with_scratch(g, model, std::mem::take(*s)),
            None => RrSampler::new(g, model),
        };
        let put = |sampler: RrSampler<'_>, scratch: &mut Option<&mut SamplerScratch>| {
            if let Some(s) = scratch {
                **s = sampler.into_scratch();
            }
        };
        let counts = match policy {
            SeedPolicy::Stream(rng) => {
                let mut sampler = take(&mut scratch);
                let mut counts: FxHashMap<NodeId, u32> = FxHashMap::default();
                for _ in 0..theta {
                    record_one(&mut sampler, universe, rng, &mut counts);
                }
                put(sampler, &mut scratch);
                counts
            }
            SeedPolicy::PerIndex { seeds, par } if par.thread_count() <= 1 => {
                let mut sampler = take(&mut scratch);
                let mut counts: FxHashMap<NodeId, u32> = FxHashMap::default();
                for i in 0..theta {
                    let mut rng = seeds.rng_for(i as u64);
                    record_one(&mut sampler, universe, &mut rng, &mut counts);
                }
                put(sampler, &mut scratch);
                counts
            }
            SeedPolicy::PerIndex { seeds, par } => {
                merge_count_shards(par_ranges(theta, par.thread_count(), |range| {
                    let mut sampler = RrSampler::new(g, model);
                    let mut counts: FxHashMap<NodeId, u32> = FxHashMap::default();
                    for i in range {
                        let mut rng = seeds.rng_for(i as u64);
                        record_one(&mut sampler, universe, &mut rng, &mut counts);
                    }
                    counts
                }))
            }
        };
        InfluenceEstimate {
            counts,
            theta,
            universe: universe_len,
        }
    }

    /// Estimates influences on the whole graph from `theta` RR graphs with
    /// uniformly random sources.
    pub fn on_graph<R: Rng>(g: &Csr, model: Model, theta: usize, rng: &mut R) -> InfluenceEstimate {
        Self::with_policy(
            g,
            model,
            SourceUniverse::Graph,
            theta,
            SeedPolicy::Stream(rng),
            None,
        )
    }

    /// Estimates influences *within a community* from `theta` RR graphs
    /// whose sources are uniform over `members` and whose traversal is
    /// restricted to `members` — the Independent baseline's per-community
    /// estimator (§V-C). `members` must be sorted ascending.
    pub fn on_community<R: Rng>(
        g: &Csr,
        model: Model,
        members: &[NodeId],
        theta: usize,
        rng: &mut R,
    ) -> InfluenceEstimate {
        Self::with_policy(
            g,
            model,
            SourceUniverse::Members(members),
            theta,
            SeedPolicy::Stream(rng),
            None,
        )
    }

    /// [`InfluenceEstimate::on_graph`] with per-index seed derivation:
    /// sample `i` draws its source and RR graph from `seeds.rng_for(i)`, so
    /// the estimate is a pure function of `(g, model, theta, seeds)` and is
    /// identical for every thread count.
    pub fn on_graph_seeded(
        g: &Csr,
        model: Model,
        theta: usize,
        seeds: SeedSequence,
        par: Parallelism,
    ) -> InfluenceEstimate {
        Self::with_policy::<SmallRng>(
            g,
            model,
            SourceUniverse::Graph,
            theta,
            SeedPolicy::PerIndex { seeds, par },
            None,
        )
    }

    /// [`InfluenceEstimate::on_community`] with per-index seed derivation;
    /// thread-count-invariant like [`InfluenceEstimate::on_graph_seeded`].
    /// `members` must be sorted ascending.
    pub fn on_community_seeded(
        g: &Csr,
        model: Model,
        members: &[NodeId],
        theta: usize,
        seeds: SeedSequence,
        par: Parallelism,
    ) -> InfluenceEstimate {
        Self::with_policy::<SmallRng>(
            g,
            model,
            SourceUniverse::Members(members),
            theta,
            SeedPolicy::PerIndex { seeds, par },
            None,
        )
    }

    /// Raw appearance count of `v`.
    #[inline]
    pub fn count(&self, v: NodeId) -> u32 {
        self.counts.get(&v).copied().unwrap_or(0)
    }

    /// Estimated influence `σ̂(v)`.
    #[inline]
    pub fn sigma(&self, v: NodeId) -> f64 {
        self.count(v) as f64 / self.theta as f64 * self.universe as f64
    }

    /// Number of samples used.
    #[inline]
    pub fn theta(&self) -> usize {
        self.theta
    }

    /// Estimated 1-based influence rank of `q` among `members`
    /// (`|{v : σ̂(v) > σ̂(q)}| + 1`, the paper's `rank` with the
    /// top-k convention `rank ≤ k`).
    pub fn rank(&self, q: NodeId, members: &[NodeId]) -> usize {
        let cq = self.count(q);
        let higher = members.iter().filter(|&&v| self.count(v) > cq).count();
        higher + 1
    }

    /// Whether `q` is estimated top-k among `members`.
    pub fn is_top_k(&self, q: NodeId, members: &[NodeId], k: usize) -> bool {
        self.rank(q, members) <= k
    }
}

/// 1-based rank of `q` among `members` under an arbitrary score function
/// (strictly-greater comparison; ties favour `q`).
pub fn rank_in_members(members: &[NodeId], q: NodeId, score: impl Fn(NodeId) -> f64) -> usize {
    let sq = score(q);
    members.iter().filter(|&&v| score(v) > sq).count() + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::GraphBuilder;

    fn star() -> Csr {
        let mut b = GraphBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v);
        }
        b.build()
    }

    #[test]
    fn center_of_star_ranks_first() {
        let g = star();
        let mut rng = SmallRng::seed_from_u64(5);
        let est = InfluenceEstimate::on_graph(&g, Model::WeightedCascade, 5000, &mut rng);
        let members: Vec<NodeId> = (0..5).collect();
        assert_eq!(est.rank(0, &members), 1);
        // σ(center) = 5 under weighted cascade (see montecarlo tests).
        assert!((est.sigma(0) - 5.0).abs() < 0.35, "sigma {}", est.sigma(0));
    }

    #[test]
    fn estimate_matches_theorem_1_on_pair() {
        // 0 - 1 with p = 1 both ways: every RR set contains both nodes, so
        // σ̂ = 2 exactly for both.
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.build();
        let mut rng = SmallRng::seed_from_u64(6);
        let est = InfluenceEstimate::on_graph(&g, Model::UniformIc(1.0), 200, &mut rng);
        assert_eq!(est.sigma(0), 2.0);
        assert_eq!(est.sigma(1), 2.0);
    }

    #[test]
    fn community_estimate_restricts_universe() {
        let g = star();
        let mut rng = SmallRng::seed_from_u64(7);
        let members = vec![0, 1, 2];
        let est =
            InfluenceEstimate::on_community(&g, Model::UniformIc(1.0), &members, 300, &mut rng);
        // With p = 1 inside {0,1,2} every restricted RR set covers all
        // three members.
        for &v in &members {
            assert_eq!(est.sigma(v), 3.0);
        }
        assert_eq!(est.count(3), 0);
    }

    #[test]
    fn seeded_estimates_are_thread_count_invariant() {
        let g = star();
        let seeds = SeedSequence::new(99);
        let members: Vec<NodeId> = (0..5).collect();
        let base = InfluenceEstimate::on_graph_seeded(
            &g,
            Model::WeightedCascade,
            512,
            seeds,
            Parallelism::Threads(1),
        );
        let base_c = InfluenceEstimate::on_community_seeded(
            &g,
            Model::WeightedCascade,
            &members,
            512,
            seeds,
            Parallelism::Threads(1),
        );
        for t in [2usize, 8] {
            let est = InfluenceEstimate::on_graph_seeded(
                &g,
                Model::WeightedCascade,
                512,
                seeds,
                Parallelism::Threads(t),
            );
            let est_c = InfluenceEstimate::on_community_seeded(
                &g,
                Model::WeightedCascade,
                &members,
                512,
                seeds,
                Parallelism::Threads(t),
            );
            for v in 0..5 {
                assert_eq!(base.count(v), est.count(v), "graph t={t} v={v}");
                assert_eq!(base_c.count(v), est_c.count(v), "community t={t} v={v}");
            }
        }
    }

    #[test]
    fn scratch_reuse_never_changes_estimates() {
        use crate::sampler::SamplerScratch;
        let g = star();
        let members: Vec<NodeId> = (0..5).collect();
        let seeds = SeedSequence::new(42);
        let mut scratch = SamplerScratch::default();
        let want = InfluenceEstimate::on_community_seeded(
            &g,
            Model::WeightedCascade,
            &members,
            256,
            seeds,
            Parallelism::Threads(1),
        );
        for round in 0..3 {
            let got = InfluenceEstimate::with_policy::<SmallRng>(
                &g,
                Model::WeightedCascade,
                SourceUniverse::Members(&members),
                256,
                SeedPolicy::PerIndex {
                    seeds,
                    par: Parallelism::Threads(1),
                },
                Some(&mut scratch),
            );
            for v in 0..5 {
                assert_eq!(want.count(v), got.count(v), "round={round} v={v}");
            }
        }
        assert!(scratch.memory_bytes() > 0, "scratch buffers were recycled");
    }

    #[test]
    fn rank_breaks_ties_in_favor_of_query() {
        let members = vec![0, 1, 2];
        let score = |v: NodeId| if v == 2 { 5.0 } else { 3.0 };
        assert_eq!(rank_in_members(&members, 0, score), 2);
        assert_eq!(rank_in_members(&members, 2, score), 1);
    }
}
