//! RR-based influence estimation and rank computation.

use cod_graph::{Csr, FxHashMap, NodeId};
use rand::prelude::*;

use crate::model::Model;
use crate::parallel::{par_ranges, Parallelism};
use crate::sampler::RrSampler;
use crate::seed::SeedSequence;

fn merge_count_shards(shards: Vec<FxHashMap<NodeId, u32>>) -> FxHashMap<NodeId, u32> {
    let mut iter = shards.into_iter();
    let mut counts = iter.next().unwrap_or_default();
    for shard in iter {
        // Addition commutes, so the merge order cannot affect the result.
        for (v, c) in shard {
            *counts.entry(v).or_insert(0) += c;
        }
    }
    counts
}

/// RR-sample appearance counts over a node universe of size `universe`,
/// from `theta` samples. `σ̂(v) = count(v) / theta · universe` (Theorem 1).
#[derive(Clone, Debug)]
pub struct InfluenceEstimate {
    counts: FxHashMap<NodeId, u32>,
    theta: usize,
    universe: usize,
}

impl InfluenceEstimate {
    /// Estimates influences on the whole graph from `theta` RR graphs with
    /// uniformly random sources.
    pub fn on_graph<R: Rng>(
        g: &Csr,
        model: Model,
        theta: usize,
        rng: &mut R,
    ) -> InfluenceEstimate {
        assert!(theta > 0 && g.num_nodes() > 0);
        let mut sampler = RrSampler::new(g, model);
        let mut counts: FxHashMap<NodeId, u32> = FxHashMap::default();
        for _ in 0..theta {
            let r = sampler.sample_uniform(rng);
            for &v in r.nodes() {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        InfluenceEstimate {
            counts,
            theta,
            universe: g.num_nodes(),
        }
    }

    /// Estimates influences *within a community* from `theta` RR graphs
    /// whose sources are uniform over `members` and whose traversal is
    /// restricted to `members` — the Independent baseline's per-community
    /// estimator (§V-C). `members` must be sorted ascending.
    pub fn on_community<R: Rng>(
        g: &Csr,
        model: Model,
        members: &[NodeId],
        theta: usize,
        rng: &mut R,
    ) -> InfluenceEstimate {
        assert!(theta > 0 && !members.is_empty());
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
        let mut sampler = RrSampler::new(g, model);
        let mut counts: FxHashMap<NodeId, u32> = FxHashMap::default();
        for _ in 0..theta {
            let s = members[rng.random_range(0..members.len())];
            let r = sampler.sample_restricted(s, rng, |v| members.binary_search(&v).is_ok());
            for &v in r.nodes() {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        InfluenceEstimate {
            counts,
            theta,
            universe: members.len(),
        }
    }

    /// [`InfluenceEstimate::on_graph`] with per-index seed derivation:
    /// sample `i` draws its source and RR graph from `seeds.rng_for(i)`, so
    /// the estimate is a pure function of `(g, model, theta, seeds)` and is
    /// identical for every thread count.
    pub fn on_graph_seeded(
        g: &Csr,
        model: Model,
        theta: usize,
        seeds: SeedSequence,
        par: Parallelism,
    ) -> InfluenceEstimate {
        assert!(theta > 0 && g.num_nodes() > 0);
        let shards = par_ranges(theta, par.thread_count(), |range| {
            let mut sampler = RrSampler::new(g, model);
            let mut counts: FxHashMap<NodeId, u32> = FxHashMap::default();
            for i in range {
                let mut rng = seeds.rng_for(i as u64);
                let r = sampler.sample_uniform(&mut rng);
                for &v in r.nodes() {
                    *counts.entry(v).or_insert(0) += 1;
                }
            }
            counts
        });
        InfluenceEstimate {
            counts: merge_count_shards(shards),
            theta,
            universe: g.num_nodes(),
        }
    }

    /// [`InfluenceEstimate::on_community`] with per-index seed derivation;
    /// thread-count-invariant like [`InfluenceEstimate::on_graph_seeded`].
    /// `members` must be sorted ascending.
    pub fn on_community_seeded(
        g: &Csr,
        model: Model,
        members: &[NodeId],
        theta: usize,
        seeds: SeedSequence,
        par: Parallelism,
    ) -> InfluenceEstimate {
        assert!(theta > 0 && !members.is_empty());
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
        let shards = par_ranges(theta, par.thread_count(), |range| {
            let mut sampler = RrSampler::new(g, model);
            let mut counts: FxHashMap<NodeId, u32> = FxHashMap::default();
            for i in range {
                let mut rng = seeds.rng_for(i as u64);
                let s = members[rng.random_range(0..members.len())];
                let r =
                    sampler.sample_restricted(s, &mut rng, |v| members.binary_search(&v).is_ok());
                for &v in r.nodes() {
                    *counts.entry(v).or_insert(0) += 1;
                }
            }
            counts
        });
        InfluenceEstimate {
            counts: merge_count_shards(shards),
            theta,
            universe: members.len(),
        }
    }

    /// Raw appearance count of `v`.
    #[inline]
    pub fn count(&self, v: NodeId) -> u32 {
        self.counts.get(&v).copied().unwrap_or(0)
    }

    /// Estimated influence `σ̂(v)`.
    #[inline]
    pub fn sigma(&self, v: NodeId) -> f64 {
        self.count(v) as f64 / self.theta as f64 * self.universe as f64
    }

    /// Number of samples used.
    #[inline]
    pub fn theta(&self) -> usize {
        self.theta
    }

    /// Estimated 1-based influence rank of `q` among `members`
    /// (`|{v : σ̂(v) > σ̂(q)}| + 1`, the paper's `rank` with the
    /// top-k convention `rank ≤ k`).
    pub fn rank(&self, q: NodeId, members: &[NodeId]) -> usize {
        let cq = self.count(q);
        let higher = members.iter().filter(|&&v| self.count(v) > cq).count();
        higher + 1
    }

    /// Whether `q` is estimated top-k among `members`.
    pub fn is_top_k(&self, q: NodeId, members: &[NodeId], k: usize) -> bool {
        self.rank(q, members) <= k
    }
}

/// 1-based rank of `q` among `members` under an arbitrary score function
/// (strictly-greater comparison; ties favour `q`).
pub fn rank_in_members(
    members: &[NodeId],
    q: NodeId,
    score: impl Fn(NodeId) -> f64,
) -> usize {
    let sq = score(q);
    members.iter().filter(|&&v| score(v) > sq).count() + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::GraphBuilder;

    fn star() -> Csr {
        let mut b = GraphBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v);
        }
        b.build()
    }

    #[test]
    fn center_of_star_ranks_first() {
        let g = star();
        let mut rng = SmallRng::seed_from_u64(5);
        let est = InfluenceEstimate::on_graph(&g, Model::WeightedCascade, 5000, &mut rng);
        let members: Vec<NodeId> = (0..5).collect();
        assert_eq!(est.rank(0, &members), 1);
        // σ(center) = 5 under weighted cascade (see montecarlo tests).
        assert!((est.sigma(0) - 5.0).abs() < 0.35, "sigma {}", est.sigma(0));
    }

    #[test]
    fn estimate_matches_theorem_1_on_pair() {
        // 0 - 1 with p = 1 both ways: every RR set contains both nodes, so
        // σ̂ = 2 exactly for both.
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.build();
        let mut rng = SmallRng::seed_from_u64(6);
        let est = InfluenceEstimate::on_graph(&g, Model::UniformIc(1.0), 200, &mut rng);
        assert_eq!(est.sigma(0), 2.0);
        assert_eq!(est.sigma(1), 2.0);
    }

    #[test]
    fn community_estimate_restricts_universe() {
        let g = star();
        let mut rng = SmallRng::seed_from_u64(7);
        let members = vec![0, 1, 2];
        let est =
            InfluenceEstimate::on_community(&g, Model::UniformIc(1.0), &members, 300, &mut rng);
        // With p = 1 inside {0,1,2} every restricted RR set covers all
        // three members.
        for &v in &members {
            assert_eq!(est.sigma(v), 3.0);
        }
        assert_eq!(est.count(3), 0);
    }

    #[test]
    fn seeded_estimates_are_thread_count_invariant() {
        let g = star();
        let seeds = SeedSequence::new(99);
        let members: Vec<NodeId> = (0..5).collect();
        let base =
            InfluenceEstimate::on_graph_seeded(&g, Model::WeightedCascade, 512, seeds, Parallelism::Threads(1));
        let base_c = InfluenceEstimate::on_community_seeded(
            &g,
            Model::WeightedCascade,
            &members,
            512,
            seeds,
            Parallelism::Threads(1),
        );
        for t in [2usize, 8] {
            let est = InfluenceEstimate::on_graph_seeded(
                &g,
                Model::WeightedCascade,
                512,
                seeds,
                Parallelism::Threads(t),
            );
            let est_c = InfluenceEstimate::on_community_seeded(
                &g,
                Model::WeightedCascade,
                &members,
                512,
                seeds,
                Parallelism::Threads(t),
            );
            for v in 0..5 {
                assert_eq!(base.count(v), est.count(v), "graph t={t} v={v}");
                assert_eq!(base_c.count(v), est_c.count(v), "community t={t} v={v}");
            }
        }
    }

    #[test]
    fn rank_breaks_ties_in_favor_of_query() {
        let members = vec![0, 1, 2];
        let score = |v: NodeId| if v == 2 { 5.0 } else { 3.0 };
        assert_eq!(rank_in_members(&members, 0, score), 2);
        assert_eq!(rank_in_members(&members, 2, score), 1);
    }
}
