//! Influence models and reverse-reachable (RR) estimation for COD.
//!
//! Implements the paper's §II-A influence machinery:
//!
//! * [`model::Model`] — the independent cascade model under the *weighted
//!   cascade* parametrization (`p(u, v) = 1/deg(v)`, the paper's §V-A
//!   default), a uniform-probability IC variant, and the linear threshold
//!   model (the paper's claimed extension, §II-A);
//! * [`rrgraph::RrGraph`] — an RR set *plus its activated edges*
//!   (Definition 2), supporting induced restriction to a community
//!   (Definition 3) and the possible-world coupling of Theorem 2;
//! * [`sampler::RrSampler`] — RR-graph generation with reusable scratch
//!   space, including community-restricted sampling for the Independent
//!   baseline;
//! * [`montecarlo`] — forward IC/LT simulation for ground-truth influence
//!   `σ_C(q)` (used for the paper's top-k precision measure, §V-C);
//! * [`estimate`] — RR-based influence and rank estimation on a whole graph
//!   or a single community.
//!
//! Influence of `q` in community `C` keeps the *original* edge probabilities
//! of `g` (Theorem 2 couples the community process to possible worlds of
//! `g`); only traversal is restricted to `C`.

pub mod cancel;
pub mod estimate;
pub mod im;
pub mod model;
pub mod montecarlo;
pub mod parallel;
pub mod rrgraph;
pub mod sampler;
pub mod seed;

pub use cancel::CancelToken;
pub use estimate::{rank_in_members, InfluenceEstimate, SourceUniverse};
pub use im::RrPool;
pub use model::Model;
pub use parallel::{par_ranges, Parallelism, SeedPolicy, SeededOnly};
pub use rrgraph::RrGraph;
pub use sampler::{RrSampler, SampleStats, SamplerScratch};
pub use seed::{splitmix64, SeedSequence};
