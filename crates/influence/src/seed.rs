//! Deterministic per-sample seed derivation.
//!
//! Parallel RR sampling must not make results depend on the thread count or
//! on scheduling. The contract here is *per-index* derivation: a
//! [`SeedSequence`] turns one master seed into an independent RNG for every
//! sample index, so the `i`-th RR graph is a pure function of
//! `(graph, master, i)` no matter which thread draws it, in what order, or
//! how the index range is chunked. Per-*thread* seeding (one stream per
//! worker) cannot give this guarantee: changing the thread count reshuffles
//! which samples come from which stream.
//!
//! Derivation is SplitMix64 over `(master, index)`: the index is passed
//! through the SplitMix64 finalizer (a bijection on `u64`), XORed into the
//! master, and finalized again. Both steps are bijective in the index for a
//! fixed master, so **distinct indices always get distinct seeds** — no
//! birthday-collision caveat.

use rand::prelude::*;

/// The SplitMix64 finalizer: a fast, well-mixed bijection on `u64`
/// (Steele, Lea & Flood 2014 — the same mixer `SmallRng::seed_from_u64`
/// uses for state expansion).
#[inline]
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives an independent RNG per sample index from a single master seed.
///
/// ```
/// use cod_influence::SeedSequence;
/// use rand::prelude::*;
///
/// let seq = SeedSequence::new(42);
/// // Same (master, index) always replays the same stream ...
/// assert_eq!(seq.rng_for(7).next_u64(), seq.rng_for(7).next_u64());
/// // ... and distinct indices get distinct seeds, unconditionally.
/// assert_ne!(seq.seed_for(7), seq.seed_for(8));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// A sequence rooted at `master`.
    #[must_use]
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// The master seed this sequence derives from.
    #[must_use]
    pub fn master(&self) -> u64 {
        self.master
    }

    /// The derived 64-bit seed of sample `index`. Injective in `index` for
    /// a fixed master (composition of bijections).
    #[inline]
    #[must_use]
    pub fn seed_for(&self, index: u64) -> u64 {
        splitmix64(self.master ^ splitmix64(index))
    }

    /// A fresh RNG for sample `index`.
    #[inline]
    #[must_use]
    pub fn rng_for(&self, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.seed_for(index))
    }

    /// A derived child sequence for sub-stream `stream` — used when one
    /// logical operation needs several independent index spaces (e.g. the
    /// adaptive sampler's doubling rounds, each of which must draw fresh
    /// samples). The tweak constant keeps child masters out of the
    /// `seed_for` image of typical small indices.
    #[must_use]
    pub fn child(&self, stream: u64) -> SeedSequence {
        SeedSequence::new(splitmix64(
            self.master ^ splitmix64(stream ^ 0x5851_f42d_4c95_7f2d),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_exact() {
        let seq = SeedSequence::new(123);
        for i in 0..50u64 {
            let mut a = seq.rng_for(i);
            let mut b = seq.rng_for(i);
            for _ in 0..20 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn distinct_indices_distinct_seeds() {
        let seq = SeedSequence::new(0);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(seq.seed_for(i)), "collision at index {i}");
        }
    }

    #[test]
    fn distinct_masters_distinct_streams() {
        let a = SeedSequence::new(1);
        let b = SeedSequence::new(2);
        assert_ne!(a.seed_for(0), b.seed_for(0));
    }

    #[test]
    fn child_streams_are_independent() {
        let seq = SeedSequence::new(7);
        let c0 = seq.child(0);
        let c1 = seq.child(1);
        assert_ne!(c0.master(), c1.master());
        assert_ne!(c0.master(), seq.master());
        // Children must not alias the parent's per-index seeds for small
        // indices (the tweak constant separates the spaces).
        for i in 0..100u64 {
            assert_ne!(c0.master(), seq.seed_for(i));
        }
    }
}
