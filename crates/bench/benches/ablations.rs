//! Ablation benches for the design choices called out in `DESIGN.md` §4:
//! linkage function, attribute weight `β`, and diffusion model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cod_core::chain::DendroChain;
use cod_core::compressed::compressed_cod;
use cod_core::recluster::{build_hierarchy, global_recluster};
use cod_core::CodConfig;
use cod_hierarchy::LcaIndex;
use cod_hierarchy::Linkage;
use cod_influence::Model;
use rand::prelude::*;

fn bench_ablations(c: &mut Criterion) {
    let data = cod_datasets::cora_like(1);
    let g = &data.graph;
    let cfg = CodConfig::default();

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    // Linkage function: clustering cost per variant.
    for (name, linkage) in [
        ("linkage_average", Linkage::Average),
        ("linkage_single", Linkage::Single),
        ("linkage_complete", Linkage::Complete),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(build_hierarchy(g.csr(), linkage).num_vertices()))
        });
    }

    // Hierarchy construction family: agglomerative NN-chain vs divisive
    // recursive bisection (the balancedness lever of Table II).
    group.bench_function("hgc_divisive_bisection", |b| {
        b.iter(|| black_box(cod_hierarchy::bisect(g.csr()).num_vertices()))
    });

    // Attribute boost β: global reclustering cost (identical asymptotics;
    // measures the weight-transform overhead).
    for beta in [0.0f64, 1.0, 4.0] {
        group.bench_function(format!("recluster_beta_{beta}"), |b| {
            b.iter(|| black_box(global_recluster(g, 0, beta, cfg.linkage).num_vertices()))
        });
    }

    // Diffusion model: compressed evaluation under WC / uniform IC / LT.
    let dendro = build_hierarchy(g.csr(), cfg.linkage);
    let lca = LcaIndex::new(&dendro);
    let mut qrng = SmallRng::seed_from_u64(40);
    let queries = cod_datasets::gen_queries(g, 4, &mut qrng);
    for (name, model) in [
        ("model_weighted_cascade", Model::WeightedCascade),
        ("model_uniform_ic", Model::UniformIc(0.05)),
        ("model_linear_threshold", Model::LinearThreshold),
    ] {
        group.bench_function(name, |b| {
            let mut rng = SmallRng::seed_from_u64(41);
            b.iter(|| {
                for &(q, _) in &queries {
                    let chain =
                        DendroChain::new(&dendro, &lca, q).expect("query node within hierarchy");
                    black_box(
                        compressed_cod(g.csr(), model, &chain, q, cfg.k, cfg.theta, &mut rng)
                            .expect("valid query")
                            .best_level,
                    );
                }
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
