//! Serving-tier overhead: what the HTTP layer costs on top of the engine.
//!
//! Two legs over the identical warm single-query workload:
//!
//! * **engine_direct** — `CodEngine::query` called in-process;
//! * **http_query** — the same query as a full `GET /query` round trip
//!   through the serve tier (connect, parse, route, evaluate, serialize,
//!   close) against an in-process server on a loopback socket.
//!
//! `bench_report` gates the `http_query / engine_direct` ratio: both legs
//! run in the same process on the same machine, so the ratio isolates the
//! serving tier's overhead (socket + parse + JSON + thread handoff) from
//! hardware drift. The cache is pre-warmed on both sides — the ratio is
//! about the HTTP layer, not recluster builds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use cod_core::{CodConfig, CodEngine, Method, Query};
use rand::prelude::*;

fn warm_engine() -> Arc<CodEngine> {
    let data = cod_datasets::cora_like(1);
    let cfg = CodConfig {
        k: 3,
        theta: 8,
        ..CodConfig::default()
    };
    let engine = Arc::new(CodEngine::new(data.graph, cfg));
    let mut rng = SmallRng::seed_from_u64(42);
    // Warm the recluster cache for attribute 0 so both legs measure the
    // steady state.
    let q = Query::new(0, 0, Method::Codr);
    let _ = engine.query(q, &mut rng);
    engine
}

fn http_round_trip(addr: &str) -> usize {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET /query?node=0&attr=0&method=codr HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 200"), "{out}");
    out.len()
}

fn bench_serve_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_http");
    group.sample_size(10);

    let engine = warm_engine();

    group.bench_function("engine_direct", |b| {
        let q = Query::new(0, 0, Method::Codr);
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(42);
            black_box(engine.query(q, &mut rng).unwrap().map(|a| a.size()))
        })
    });

    let handle = cod_serve::serve(Arc::clone(&engine), cod_serve::ServeConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    http_round_trip(&addr); // connectivity check outside the timed loop
    group.bench_function("http_query", |b| {
        b.iter(|| black_box(http_round_trip(&addr)))
    });
    handle.shutdown();
    group.finish();
}

criterion_group!(benches, bench_serve_overhead);
criterion_main!(benches);
