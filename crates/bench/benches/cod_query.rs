//! Query-time benchmark for the four COD variants (the criterion
//! companion to the Fig. 9 harness binary).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cod_bench::multik::{codl_minus_multi_k, codl_multi_k, codr_multi_k, codu_multi_k};
use cod_core::recluster::build_hierarchy;
use cod_core::{CodConfig, HimorIndex};
use cod_hierarchy::LcaIndex;
use rand::prelude::*;

fn bench_queries(c: &mut Criterion) {
    let data = cod_datasets::cora_like(1);
    let g = &data.graph;
    let cfg = CodConfig::default();
    let dendro = build_hierarchy(g.csr(), cfg.linkage);
    let lca = LcaIndex::new(&dendro);
    let mut rng = SmallRng::seed_from_u64(4);
    let index = HimorIndex::build(g.csr(), cfg.model, &dendro, &lca, cfg.theta, &mut rng);
    let queries = cod_datasets::gen_queries(g, 8, &mut rng);

    let mut group = c.benchmark_group("cod_query_cora");
    group.sample_size(10);

    group.bench_function("codu", |b| {
        let mut rng = SmallRng::seed_from_u64(5);
        b.iter(|| {
            for &(q, _) in &queries {
                black_box(
                    codu_multi_k(g, cfg, &dendro, &lca, q, cfg.k, &mut rng)
                        .per_k
                        .len(),
                );
            }
        })
    });

    group.bench_function("codr", |b| {
        let mut rng = SmallRng::seed_from_u64(6);
        b.iter(|| {
            for &(q, a) in &queries {
                black_box(codr_multi_k(g, cfg, q, a, cfg.k, &mut rng).per_k.len());
            }
        })
    });

    group.bench_function("codl_minus", |b| {
        let mut rng = SmallRng::seed_from_u64(7);
        b.iter(|| {
            for &(q, a) in &queries {
                black_box(
                    codl_minus_multi_k(g, cfg, &dendro, &lca, q, a, cfg.k, &mut rng)
                        .per_k
                        .len(),
                );
            }
        })
    });

    group.bench_function("codl", |b| {
        let mut rng = SmallRng::seed_from_u64(8);
        b.iter(|| {
            for &(q, a) in &queries {
                black_box(
                    codl_multi_k(g, cfg, &dendro, &lca, &index, q, a, cfg.k, &mut rng)
                        .per_k
                        .len(),
                );
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
