//! Criterion companion to the incremental-mutation pipeline: a ~1% edge
//! churn stream over the cora-like dataset, applied one event at a time
//! and flushed after every event — the streaming model where queries
//! interleave with mutations, so the engine must be consistent after each
//! edge. The repair leg takes the localized splice + HIMOR patch path
//! (verification off: that is the production streaming configuration; the
//! verified mode reruns the full clustering purely to prove equivalence
//! and is exercised by `tests/mutation.rs` instead). The rebuild leg pins
//! the rebuild threshold to zero so the identical stream is absorbed by
//! full from-scratch rebuilds. The `repair_vs_rebuild` ratio gate in
//! `bench_report` holds the repair leg to a fraction of the rebuild leg.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cod_core::dynamic::DynamicCod;
use cod_core::{CodConfig, DurabilityConfig, DurableCod, FsyncPolicy, Mutation};
use cod_graph::NodeId;
use cod_influence::Parallelism;
use rand::prelude::*;

/// `count` edges absent from `g`, deterministic in `seed`.
fn absent_edges(g: &cod_graph::AttributedGraph, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let n = g.num_nodes() as NodeId;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut picked = Vec::with_capacity(count);
    while picked.len() < count {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        let (u, v) = (a.min(b), a.max(b));
        if u != v && !g.csr().has_edge(u, v) && !picked.contains(&(u, v)) {
            picked.push((u, v));
        }
    }
    picked
}

fn bench_churn(c: &mut Criterion) {
    let data = cod_datasets::cora_like(1);
    let g = &data.graph;
    let cfg = CodConfig {
        parallelism: Parallelism::Threads(1),
        ..CodConfig::default()
    };
    let batch = (g.num_edges() / 100).max(1); // ~1% of |E| in the stream
    let edges = absent_edges(g, batch, 0xC0D);

    let mut group = c.benchmark_group("mutation_churn");
    group.sample_size(10);

    // One iteration = one edge event + one flush through the repair path.
    // The stream cycles through the 1%-churn edge list, toggling each edge
    // so the graph never drifts from its seed topology.
    group.bench_function("repair_per_event", |b| {
        let mut d = DynamicCod::with_seed(g, cfg, 7);
        d.set_repair_verification(false);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut present = vec![false; edges.len()];
        let mut i = 0usize;
        b.iter(|| {
            let (u, v) = edges[i % edges.len()];
            if present[i % edges.len()] {
                d.remove_edge(u, v);
            } else {
                d.insert_edge(u, v);
            }
            present[i % edges.len()] = !present[i % edges.len()];
            i += 1;
            black_box(d.flush(&mut rng).expect("ungoverned flush").outcome)
        })
    });

    // The identical stream through the durable wrapper: every event is
    // appended to a group-commit WAL (fsync'd every 32 records / 10 ms)
    // before the same repair-path flush. The `wal_append_overhead` gate in
    // `bench_report` holds this leg to ≤ 1.25× the bare repair leg.
    group.bench_function("wal_group_commit_per_event", |b| {
        let dir = std::env::temp_dir().join(format!("cod_bench_wal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dcfg = DurabilityConfig {
            fsync: FsyncPolicy::GroupCommit {
                max_records: 32,
                max_delay: std::time::Duration::from_millis(10),
            },
            // Never checkpoint mid-measurement: the leg isolates append +
            // apply + flush, the checkpoint cost has its own cadence.
            checkpoint_every_events: u64::MAX,
            checkpoint_wal_bytes: u64::MAX,
        };
        let mut d = DurableCod::create(&dir, g, cfg, 7, dcfg).expect("create durable dir");
        d.set_repair_verification(false);
        let mut present = vec![false; edges.len()];
        let mut i = 0usize;
        b.iter(|| {
            let (u, v) = edges[i % edges.len()];
            let m = if present[i % edges.len()] {
                Mutation::RemoveEdge { u, v }
            } else {
                Mutation::InsertEdge { u, v }
            };
            present[i % edges.len()] = !present[i % edges.len()];
            i += 1;
            d.apply(&m).expect("durable apply");
            black_box(d.flush().expect("durable flush").outcome)
        });
        drop(d);
        let _ = std::fs::remove_dir_all(&dir);
    });

    // The identical stream forced through full from-scratch rebuilds.
    group.bench_function("rebuild_per_event", |b| {
        let mut d = DynamicCod::with_seed(g, cfg, 7);
        d.set_rebuild_threshold(0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut present = vec![false; edges.len()];
        let mut i = 0usize;
        b.iter(|| {
            let (u, v) = edges[i % edges.len()];
            if present[i % edges.len()] {
                d.remove_edge(u, v);
            } else {
                d.insert_edge(u, v);
            }
            present[i % edges.len()] = !present[i % edges.len()];
            i += 1;
            black_box(d.flush(&mut rng).expect("ungoverned flush").outcome)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_churn);
criterion_main!(benches);
