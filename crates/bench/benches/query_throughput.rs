//! Serving-layer throughput: what the `CodEngine` reuse layers actually buy.
//!
//! Three comparisons, all over identical query streams with identical
//! (bit-for-bit) answers — the engine's caches and scratch reuse are not
//! allowed to change results, only latency:
//!
//! * **cold vs warm artifact cache** — repeat-attribute CODR queries with
//!   the recluster cache disabled (capacity 0: every query rebuilds `T_ℓ`,
//!   the legacy facade behaviour) vs enabled and pre-warmed;
//! * **single vs batch** — the same mixed workload issued one `query()` at
//!   a time vs one `query_batch()` call that groups by attribute and fans
//!   groups out;
//! * a plain-text QPS report with the measured cache hit rate, so the CI
//!   log shows the warm/cold ratio directly.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cod_core::{CodConfig, CodEngine, Method, Query, QueryLimits};
use cod_influence::Parallelism;
use rand::prelude::*;

fn cfg(par: Parallelism) -> CodConfig {
    CodConfig {
        k: 3,
        theta: 8,
        parallelism: par,
        ..CodConfig::default()
    }
}

/// A repeat-attribute workload: many nodes querying the same few
/// attributes, the access pattern the artifact cache is built for.
fn repeat_attr_queries(n_nodes: usize) -> Vec<Query> {
    (0..n_nodes as u32)
        .map(|q| Query::new(q, (q % 2) as cod_graph::AttrId, Method::Codr))
        .collect()
}

fn run_all(engine: &CodEngine, queries: &[Query], seed: u64) -> usize {
    let mut rng = SmallRng::seed_from_u64(seed);
    engine
        .query_batch(queries, &mut rng)
        .into_iter()
        .flatten()
        .flatten()
        .map(|a| a.size())
        .sum()
}

fn bench_cold_vs_warm_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_throughput/repeat_attr");
    group.sample_size(10);

    for (name, data) in [
        ("cora", cod_datasets::cora_like(1)),
        ("citeseer", cod_datasets::citeseer_like(2)),
    ] {
        let queries = repeat_attr_queries(32);
        // Capacity 0 replays the legacy facade path: every query rebuilds
        // its reclustered hierarchy from scratch.
        let uncached = CodEngine::with_cache_capacity(
            std::sync::Arc::new(data.graph.clone()),
            cfg(Parallelism::Threads(1)),
            0,
        );
        group.bench_function(format!("{name}_uncached"), |b| {
            b.iter(|| black_box(run_all(&uncached, &queries, 42)))
        });

        let cached = CodEngine::new(data.graph.clone(), cfg(Parallelism::Threads(1)));
        run_all(&cached, &queries, 42); // pre-warm: steady state is all hits
        group.bench_function(format!("{name}_warm_cache"), |b| {
            b.iter(|| black_box(run_all(&cached, &queries, 42)))
        });

        // The shared RR-pool cache on top: a warm pool skips the Θ·ω
        // sampling term entirely, leaving only the HFS + top-k fold.
        // `bench_report` gates cora_pool_warm/cora_uncached at ≤ 0.2
        // (≥ 5× QPS).
        let pool_cfg = CodConfig {
            pool: true,
            ..cfg(Parallelism::Threads(1))
        };
        let pooled = CodEngine::new(data.graph.clone(), pool_cfg);
        run_all(&pooled, &queries, 42); // pre-warm pools + artifact cache
        group.bench_function(format!("{name}_pool_warm"), |b| {
            b.iter(|| black_box(run_all(&pooled, &queries, 42)))
        });
    }
    group.finish();
}

fn bench_single_vs_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_throughput/single_vs_batch");
    group.sample_size(10);

    let data = cod_datasets::cora_like(1);
    let queries = repeat_attr_queries(32);
    let engine = CodEngine::new(data.graph.clone(), cfg(Parallelism::Threads(4)));
    run_all(&engine, &queries, 7); // warm the cache for both sides

    group.bench_function("single", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(7);
            let mut total = 0usize;
            for &q in &queries {
                if let Ok(Some(a)) = engine.query(q, &mut rng) {
                    total += a.size();
                }
            }
            black_box(total)
        })
    });
    group.bench_function("batch", |b| {
        b.iter(|| black_box(run_all(&engine, &queries, 7)))
    });
    group.finish();
}

/// Governance checkpoint overhead: the same warm workload with query limits
/// unarmed (no token; checkpoints are no-ops) vs armed with generous caps
/// that never fire (every checkpoint polls a token and charges budgets).
/// Answers are bit-identical; `bench_report` gates the armed/unarmed ratio
/// at ≤ 1.05 — the governance layer may cost at most 5%.
fn bench_governance_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_throughput/governance");
    group.sample_size(10);

    let data = cod_datasets::cora_like(1);
    let queries = repeat_attr_queries(32);

    let unarmed = CodEngine::new(data.graph.clone(), cfg(Parallelism::Threads(1)));
    run_all(&unarmed, &queries, 42); // warm: measure checkpoints, not builds
    group.bench_function("limits_unarmed", |b| {
        b.iter(|| black_box(run_all(&unarmed, &queries, 42)))
    });

    let armed_cfg = CodConfig {
        limits: QueryLimits {
            deadline: Some(std::time::Duration::from_secs(3600)),
            max_rr_edges: Some(u64::MAX / 2),
            max_memory_bytes: Some(usize::MAX / 2),
        },
        ..cfg(Parallelism::Threads(1))
    };
    let armed = CodEngine::new(data.graph.clone(), armed_cfg);
    run_all(&armed, &queries, 42);
    group.bench_function("limits_armed", |b| {
        b.iter(|| black_box(run_all(&armed, &queries, 42)))
    });
    group.finish();
}

/// Prints warm-vs-cold QPS and the measured hit rate so the CI log carries
/// the acceptance number (warm-cache repeat-attribute queries must beat the
/// legacy rebuild-every-time path).
fn throughput_report(_c: &mut Criterion) {
    use std::time::Instant;

    let data = cod_datasets::cora_like(1);
    let queries = repeat_attr_queries(32);
    let median_secs = |engine: &CodEngine| {
        let mut runs: Vec<f64> = (0..5)
            .map(|_| {
                let t = Instant::now();
                black_box(run_all(engine, &queries, 42));
                t.elapsed().as_secs_f64()
            })
            .collect();
        runs.sort_by(|a, b| a.total_cmp(b));
        runs[runs.len() / 2]
    };

    let uncached = CodEngine::with_cache_capacity(
        std::sync::Arc::new(data.graph.clone()),
        cfg(Parallelism::Threads(1)),
        0,
    );
    let cold = median_secs(&uncached);

    let cached = CodEngine::new(data.graph.clone(), cfg(Parallelism::Threads(1)));
    run_all(&cached, &queries, 42);
    let warm = median_secs(&cached);

    let pool_cfg = CodConfig {
        pool: true,
        ..cfg(Parallelism::Threads(1))
    };
    let pooled = CodEngine::new(data.graph.clone(), pool_cfg);
    run_all(&pooled, &queries, 42);
    let pool_warm = median_secs(&pooled);

    let stats = cached.cache_stats();
    let qps = |secs: f64| queries.len() as f64 / secs;
    println!(
        "query_throughput/report: uncached {:.1} q/s vs warm-cache {:.1} q/s -> {:.2}x \
         (cache: {} hits / {} misses, {:.0}% hit rate)",
        qps(cold),
        qps(warm),
        cold / warm,
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
    );
    let pstats = pooled.pool_stats();
    println!(
        "query_throughput/report: pool-warm {:.1} q/s -> {:.2}x over uncached \
         (pools: {}, resident {} KiB; gate pool_warm_ratio <= 0.2)",
        qps(pool_warm),
        cold / pool_warm,
        pstats.pools,
        pstats.resident_bytes / 1024,
    );
}

/// Out-of-core startup: opening a CODX v3 file as a memory mapping and
/// serving a cold batch vs eagerly deserializing the same file first.
/// The mmap path defers section loads (and their CRC sweeps) to first
/// touch, so cold start-to-first-answer should never be slower than the
/// parse-everything path; `bench_report` tracks `mmap_cold_vs_eager`.
fn bench_mmap_cold_vs_eager(c: &mut Criterion) {
    use cod_core::MappedArtifacts;

    let mut group = c.benchmark_group("query_throughput/mmap");
    group.sample_size(10);

    let data = cod_datasets::cora_like(1);
    let g = &data.graph;
    let engine = CodEngine::new(g.clone(), cfg(Parallelism::Threads(1)));
    let base = engine.base_hierarchy();
    let index = engine.ensure_himor(&mut SmallRng::seed_from_u64(4242));
    let path = std::env::temp_dir().join(format!("bench_mmap_{}.codx", std::process::id()));
    cod_core::save_artifacts(&path, g, &base.dendro, &index).expect("save artifacts");
    let queries = repeat_attr_queries(16);
    let limits = QueryLimits::default();
    let run_cold = |arts: MappedArtifacts| {
        let engine = CodEngine::from_mapped(&arts, cfg(Parallelism::Threads(1))).expect("engine");
        let mut rng = SmallRng::seed_from_u64(42);
        engine
            .query_batch_with_limits(&queries, &limits, &mut rng)
            .into_iter()
            .flatten()
            .flatten()
            .map(|a| a.size())
            .sum::<usize>()
    };

    group.bench_function("mmap_cold", |b| {
        b.iter(|| black_box(run_cold(MappedArtifacts::open(&path).expect("open"))))
    });
    group.bench_function("eager_cold", |b| {
        b.iter(|| black_box(run_cold(MappedArtifacts::open_eager(&path).expect("open"))))
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

/// Scatter-gather overhead: the same warm batch through a two-shard
/// `ShardedEngine` (route → per-shard sub-batches → gather) vs one
/// unsharded engine over identical shared artifacts. Answers are
/// bit-identical by the positional-seed contract; `bench_report` tracks
/// `shard_batch_ratio` so routing can never silently become a tax.
fn bench_sharded_vs_single_batch(c: &mut Criterion) {
    use cod_core::ShardedEngine;
    use cod_graph::{AttrTable, AttributedGraph, GraphBuilder, NodeId};
    use std::sync::Arc;

    let mut group = c.benchmark_group("query_throughput/sharded");
    group.sample_size(10);

    // Two disjoint copies of the dataset, so the partitioner has real
    // components to spread and the batch genuinely fans out.
    let data = cod_datasets::cora_like(1);
    let src = &data.graph;
    let n = src.num_nodes();
    let mut b = GraphBuilder::new(2 * n);
    for v in 0..n as NodeId {
        for &u in src.csr().neighbors(v) {
            if u > v {
                b.add_edge(v, u);
                b.add_edge(v + n as NodeId, u + n as NodeId);
            }
        }
    }
    let lists: Vec<Vec<cod_graph::AttrId>> = (0..2 * n)
        .map(|v| src.node_attrs((v % n) as NodeId).to_vec())
        .collect();
    let g = Arc::new(AttributedGraph::from_parts(
        b.build(),
        AttrTable::from_lists(lists),
        src.interner().clone(),
    ));

    let config = cfg(Parallelism::Threads(2));
    let builder = CodEngine::from_shared(Arc::clone(&g), config);
    let base = builder.base_hierarchy();
    let index = builder.ensure_himor(&mut SmallRng::seed_from_u64(4242));
    let queries: Vec<Query> = (0..32u32)
        .map(|i| {
            let q = (i as usize % 2 * n + (i as usize / 2) % n) as NodeId;
            Query::new(q, (i % 2) as cod_graph::AttrId, Method::Codr)
        })
        .collect();
    let limits = QueryLimits::default();

    let single = CodEngine::from_shared_parts(
        Arc::clone(&g),
        config,
        Arc::clone(&base),
        Arc::clone(&index),
    );
    let sharded = ShardedEngine::from_shared_parts(Arc::clone(&g), config, base, index, 2);
    // Warm both sides: measure routing + evaluation, not artifact builds.
    let mut rng = SmallRng::seed_from_u64(7);
    let _ = single.query_batch_with_limits(&queries, &limits, &mut rng);
    let _ = sharded.query_batch_with_limits(&queries, &limits, &mut rng);

    group.bench_function("single_batch", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(7);
            black_box(
                single
                    .query_batch_with_limits(&queries, &limits, &mut rng)
                    .into_iter()
                    .flatten()
                    .flatten()
                    .map(|a| a.size())
                    .sum::<usize>(),
            )
        })
    });
    group.bench_function("sharded_batch", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(7);
            black_box(
                sharded
                    .query_batch_with_limits(&queries, &limits, &mut rng)
                    .into_iter()
                    .flatten()
                    .flatten()
                    .map(|a| a.size())
                    .sum::<usize>(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cold_vs_warm_cache,
    bench_single_vs_batch,
    bench_governance_overhead,
    bench_mmap_cold_vs_eager,
    bench_sharded_vs_single_batch,
    throughput_report
);
criterion_main!(benches);
