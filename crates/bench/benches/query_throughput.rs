//! Serving-layer throughput: what the `CodEngine` reuse layers actually buy.
//!
//! Three comparisons, all over identical query streams with identical
//! (bit-for-bit) answers — the engine's caches and scratch reuse are not
//! allowed to change results, only latency:
//!
//! * **cold vs warm artifact cache** — repeat-attribute CODR queries with
//!   the recluster cache disabled (capacity 0: every query rebuilds `T_ℓ`,
//!   the legacy facade behaviour) vs enabled and pre-warmed;
//! * **single vs batch** — the same mixed workload issued one `query()` at
//!   a time vs one `query_batch()` call that groups by attribute and fans
//!   groups out;
//! * a plain-text QPS report with the measured cache hit rate, so the CI
//!   log shows the warm/cold ratio directly.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cod_core::{CodConfig, CodEngine, Method, Query, QueryLimits};
use cod_influence::Parallelism;
use rand::prelude::*;

fn cfg(par: Parallelism) -> CodConfig {
    CodConfig {
        k: 3,
        theta: 8,
        parallelism: par,
        ..CodConfig::default()
    }
}

/// A repeat-attribute workload: many nodes querying the same few
/// attributes, the access pattern the artifact cache is built for.
fn repeat_attr_queries(n_nodes: usize) -> Vec<Query> {
    (0..n_nodes as u32)
        .map(|q| Query::new(q, (q % 2) as cod_graph::AttrId, Method::Codr))
        .collect()
}

fn run_all(engine: &CodEngine, queries: &[Query], seed: u64) -> usize {
    let mut rng = SmallRng::seed_from_u64(seed);
    engine
        .query_batch(queries, &mut rng)
        .into_iter()
        .flatten()
        .flatten()
        .map(|a| a.size())
        .sum()
}

fn bench_cold_vs_warm_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_throughput/repeat_attr");
    group.sample_size(10);

    for (name, data) in [
        ("cora", cod_datasets::cora_like(1)),
        ("citeseer", cod_datasets::citeseer_like(2)),
    ] {
        let queries = repeat_attr_queries(32);
        // Capacity 0 replays the legacy facade path: every query rebuilds
        // its reclustered hierarchy from scratch.
        let uncached = CodEngine::with_cache_capacity(
            std::sync::Arc::new(data.graph.clone()),
            cfg(Parallelism::Threads(1)),
            0,
        );
        group.bench_function(format!("{name}_uncached"), |b| {
            b.iter(|| black_box(run_all(&uncached, &queries, 42)))
        });

        let cached = CodEngine::new(data.graph.clone(), cfg(Parallelism::Threads(1)));
        run_all(&cached, &queries, 42); // pre-warm: steady state is all hits
        group.bench_function(format!("{name}_warm_cache"), |b| {
            b.iter(|| black_box(run_all(&cached, &queries, 42)))
        });

        // The shared RR-pool cache on top: a warm pool skips the Θ·ω
        // sampling term entirely, leaving only the HFS + top-k fold.
        // `bench_report` gates cora_pool_warm/cora_uncached at ≤ 0.2
        // (≥ 5× QPS).
        let pool_cfg = CodConfig {
            pool: true,
            ..cfg(Parallelism::Threads(1))
        };
        let pooled = CodEngine::new(data.graph.clone(), pool_cfg);
        run_all(&pooled, &queries, 42); // pre-warm pools + artifact cache
        group.bench_function(format!("{name}_pool_warm"), |b| {
            b.iter(|| black_box(run_all(&pooled, &queries, 42)))
        });
    }
    group.finish();
}

fn bench_single_vs_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_throughput/single_vs_batch");
    group.sample_size(10);

    let data = cod_datasets::cora_like(1);
    let queries = repeat_attr_queries(32);
    let engine = CodEngine::new(data.graph.clone(), cfg(Parallelism::Threads(4)));
    run_all(&engine, &queries, 7); // warm the cache for both sides

    group.bench_function("single", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(7);
            let mut total = 0usize;
            for &q in &queries {
                if let Ok(Some(a)) = engine.query(q, &mut rng) {
                    total += a.size();
                }
            }
            black_box(total)
        })
    });
    group.bench_function("batch", |b| {
        b.iter(|| black_box(run_all(&engine, &queries, 7)))
    });
    group.finish();
}

/// Governance checkpoint overhead: the same warm workload with query limits
/// unarmed (no token; checkpoints are no-ops) vs armed with generous caps
/// that never fire (every checkpoint polls a token and charges budgets).
/// Answers are bit-identical; `bench_report` gates the armed/unarmed ratio
/// at ≤ 1.05 — the governance layer may cost at most 5%.
fn bench_governance_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_throughput/governance");
    group.sample_size(10);

    let data = cod_datasets::cora_like(1);
    let queries = repeat_attr_queries(32);

    let unarmed = CodEngine::new(data.graph.clone(), cfg(Parallelism::Threads(1)));
    run_all(&unarmed, &queries, 42); // warm: measure checkpoints, not builds
    group.bench_function("limits_unarmed", |b| {
        b.iter(|| black_box(run_all(&unarmed, &queries, 42)))
    });

    let armed_cfg = CodConfig {
        limits: QueryLimits {
            deadline: Some(std::time::Duration::from_secs(3600)),
            max_rr_edges: Some(u64::MAX / 2),
            max_memory_bytes: Some(usize::MAX / 2),
        },
        ..cfg(Parallelism::Threads(1))
    };
    let armed = CodEngine::new(data.graph.clone(), armed_cfg);
    run_all(&armed, &queries, 42);
    group.bench_function("limits_armed", |b| {
        b.iter(|| black_box(run_all(&armed, &queries, 42)))
    });
    group.finish();
}

/// Prints warm-vs-cold QPS and the measured hit rate so the CI log carries
/// the acceptance number (warm-cache repeat-attribute queries must beat the
/// legacy rebuild-every-time path).
fn throughput_report(_c: &mut Criterion) {
    use std::time::Instant;

    let data = cod_datasets::cora_like(1);
    let queries = repeat_attr_queries(32);
    let median_secs = |engine: &CodEngine| {
        let mut runs: Vec<f64> = (0..5)
            .map(|_| {
                let t = Instant::now();
                black_box(run_all(engine, &queries, 42));
                t.elapsed().as_secs_f64()
            })
            .collect();
        runs.sort_by(|a, b| a.total_cmp(b));
        runs[runs.len() / 2]
    };

    let uncached = CodEngine::with_cache_capacity(
        std::sync::Arc::new(data.graph.clone()),
        cfg(Parallelism::Threads(1)),
        0,
    );
    let cold = median_secs(&uncached);

    let cached = CodEngine::new(data.graph.clone(), cfg(Parallelism::Threads(1)));
    run_all(&cached, &queries, 42);
    let warm = median_secs(&cached);

    let pool_cfg = CodConfig {
        pool: true,
        ..cfg(Parallelism::Threads(1))
    };
    let pooled = CodEngine::new(data.graph.clone(), pool_cfg);
    run_all(&pooled, &queries, 42);
    let pool_warm = median_secs(&pooled);

    let stats = cached.cache_stats();
    let qps = |secs: f64| queries.len() as f64 / secs;
    println!(
        "query_throughput/report: uncached {:.1} q/s vs warm-cache {:.1} q/s -> {:.2}x \
         (cache: {} hits / {} misses, {:.0}% hit rate)",
        qps(cold),
        qps(warm),
        cold / warm,
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
    );
    let pstats = pooled.pool_stats();
    println!(
        "query_throughput/report: pool-warm {:.1} q/s -> {:.2}x over uncached \
         (pools: {}, resident {} KiB; gate pool_warm_ratio <= 0.2)",
        qps(pool_warm),
        cold / pool_warm,
        pstats.pools,
        pstats.resident_bytes / 1024,
    );
}

criterion_group!(
    benches,
    bench_cold_vs_warm_cache,
    bench_single_vs_batch,
    bench_governance_overhead,
    throughput_report
);
criterion_main!(benches);
