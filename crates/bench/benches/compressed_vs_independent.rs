//! Criterion companion to Fig. 8(c)/(f): compressed vs independent COD
//! evaluation time per query on the Cora preset.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cod_core::chain::DendroChain;
use cod_core::compressed::compressed_cod;
use cod_core::independent::independent_cod;
use cod_core::recluster::global_recluster;
use cod_core::CodConfig;
use cod_hierarchy::LcaIndex;
use rand::prelude::*;

fn bench_eval(c: &mut Criterion) {
    let data = cod_datasets::cora_like(1);
    let g = &data.graph;
    let cfg = CodConfig::default();
    let mut rng = SmallRng::seed_from_u64(20);
    let queries = cod_datasets::gen_queries(g, 4, &mut rng);
    // Fix one attribute-aware hierarchy per query up front: the benchmark
    // isolates the *evaluation* cost, as Fig. 8 does.
    let prepared: Vec<_> = queries
        .iter()
        .map(|&(q, a)| {
            let dendro = global_recluster(g, a, cfg.beta, cfg.linkage);
            (q, dendro)
        })
        .collect();

    let mut group = c.benchmark_group("cod_evaluation_cora");
    group.sample_size(10);

    for theta in [10usize, 40] {
        group.bench_function(format!("compressed_theta{theta}"), |b| {
            let mut rng = SmallRng::seed_from_u64(21);
            b.iter(|| {
                for (q, dendro) in &prepared {
                    let lca = LcaIndex::new(dendro);
                    let chain =
                        DendroChain::new(dendro, &lca, *q).expect("query node within hierarchy");
                    black_box(
                        compressed_cod(g.csr(), cfg.model, &chain, *q, cfg.k, theta, &mut rng)
                            .expect("valid query")
                            .best_level,
                    );
                }
            })
        });
        group.bench_function(format!("independent_theta{theta}"), |b| {
            let mut rng = SmallRng::seed_from_u64(22);
            b.iter(|| {
                for (q, dendro) in &prepared {
                    let lca = LcaIndex::new(dendro);
                    let chain =
                        DendroChain::new(dendro, &lca, *q).expect("query node within hierarchy");
                    black_box(
                        independent_cod(g.csr(), cfg.model, &chain, *q, cfg.k, theta, &mut rng)
                            .best_level,
                    );
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
