//! Micro-benchmarks for the substrate layers: RR-graph sampling,
//! agglomerative clustering, LCA indexing and truss decomposition.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cod_core::recluster::build_hierarchy;
use cod_hierarchy::{cluster_unweighted, LcaIndex, Linkage};
use cod_influence::{Model, RrSampler};
use cod_search::truss::TrussDecomposition;
use rand::prelude::*;

fn bench_substrates(c: &mut Criterion) {
    let data = cod_datasets::cora_like(1);
    let g = data.graph.csr();

    let mut group = c.benchmark_group("substrates");
    group.sample_size(20);

    group.bench_function("rr_sample_1k_wc", |b| {
        let mut sampler = RrSampler::new(g, Model::WeightedCascade);
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..1000 {
                total += sampler.sample_uniform(&mut rng).len();
            }
            black_box(total)
        })
    });

    group.bench_function("rr_sample_1k_lt", |b| {
        let mut sampler = RrSampler::new(g, Model::LinearThreshold);
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..1000 {
                total += sampler.sample_uniform(&mut rng).len();
            }
            black_box(total)
        })
    });

    group.bench_function("nnchain_cluster_cora", |b| {
        b.iter(|| black_box(cluster_unweighted(g, Linkage::Average).len()))
    });

    group.bench_function("lca_build_cora", |b| {
        let dendro = build_hierarchy(g, Linkage::Average);
        b.iter(|| black_box(LcaIndex::new(&dendro)))
    });

    group.bench_function("lca_query_10k", |b| {
        let dendro = build_hierarchy(g, Linkage::Average);
        let lca = LcaIndex::new(&dendro);
        let nv = dendro.num_vertices() as u32;
        let mut rng = SmallRng::seed_from_u64(3);
        let pairs: Vec<(u32, u32)> = (0..10_000)
            .map(|_| (rng.random_range(0..nv), rng.random_range(0..nv)))
            .collect();
        b.iter_batched(
            || pairs.clone(),
            |pairs| {
                let mut acc = 0u64;
                for (a, x) in pairs {
                    acc += u64::from(lca.lca(a, x));
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("truss_decomposition_cora", |b| {
        b.iter(|| black_box(TrussDecomposition::new(g).trussness.len()))
    });

    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
