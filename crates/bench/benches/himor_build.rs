//! Criterion companion to Table II: HIMOR index construction time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cod_core::recluster::build_hierarchy;
use cod_core::{CodConfig, HimorIndex};
use cod_hierarchy::LcaIndex;
use rand::prelude::*;

fn bench_build(c: &mut Criterion) {
    let cfg = CodConfig::default();
    let mut group = c.benchmark_group("himor_build");
    group.sample_size(10);

    for (name, data) in [
        ("cora", cod_datasets::cora_like(1)),
        ("citeseer", cod_datasets::citeseer_like(2)),
    ] {
        let g = data.graph.csr().clone();
        let dendro = build_hierarchy(&g, cfg.linkage);
        let lca = LcaIndex::new(&dendro);
        group.bench_function(name, |b| {
            let mut rng = SmallRng::seed_from_u64(30);
            b.iter(|| {
                black_box(
                    HimorIndex::build(&g, cfg.model, &dendro, &lca, cfg.theta, &mut rng)
                        .memory_bytes(),
                )
            })
        });
        group.bench_function(format!("{name}_parallel4"), |b| {
            b.iter(|| {
                black_box(
                    HimorIndex::build_parallel(&g, cfg.model, &dendro, &lca, cfg.theta, 30, 4)
                        .memory_bytes(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
