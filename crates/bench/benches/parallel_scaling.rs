//! Serial vs parallel throughput of the deterministic execution layer.
//!
//! Both sides of every pair run the *same* seeded code path and produce
//! bit-identical results (see `tests/seed_replay.rs`); this bench measures
//! only the wall-clock effect of the thread count. The acceptance bar is
//! >1.5× RR-pool throughput at 4 threads.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cod_core::recluster::build_hierarchy;
use cod_core::{CodConfig, HimorIndex};
use cod_hierarchy::LcaIndex;
use cod_influence::{Model, Parallelism, RrPool, SeedSequence};

fn bench_rr_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling/rr_pool");
    group.sample_size(10);

    for (name, data) in [
        ("cora", cod_datasets::cora_like(1)),
        ("citeseer", cod_datasets::citeseer_like(2)),
    ] {
        let g = data.graph.csr().clone();
        let theta = 4 * g.num_nodes();
        let seeds = SeedSequence::new(42);
        for (label, par) in [
            ("serial", Parallelism::Threads(1)),
            ("threads4", Parallelism::Threads(4)),
        ] {
            group.bench_function(format!("{name}_{label}"), |b| {
                b.iter(|| {
                    black_box(
                        RrPool::sample_seeded(&g, Model::WeightedCascade, theta, seeds, None, par)
                            .len(),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_himor_build(c: &mut Criterion) {
    let cfg = CodConfig::default();
    let mut group = c.benchmark_group("parallel_scaling/himor_build");
    group.sample_size(10);

    for (name, data) in [
        ("cora", cod_datasets::cora_like(1)),
        ("citeseer", cod_datasets::citeseer_like(2)),
    ] {
        let g = data.graph.csr().clone();
        let dendro = build_hierarchy(&g, cfg.linkage);
        let lca = LcaIndex::new(&dendro);
        for (label, par) in [
            ("serial", Parallelism::Threads(1)),
            ("threads4", Parallelism::Threads(4)),
        ] {
            group.bench_function(format!("{name}_{label}"), |b| {
                b.iter(|| {
                    black_box(
                        HimorIndex::build_seeded(&g, cfg.model, &dendro, &lca, cfg.theta, 30, par)
                            .memory_bytes(),
                    )
                })
            });
        }
    }
    group.finish();
}

/// Prints a speedup summary (serial / 4-thread median) so the CI log shows
/// the scaling factor directly. On a single-core host the ratio is
/// meaningless — threads can only add overhead — so the report says so
/// instead of pretending to measure scaling.
fn speedup_report(_c: &mut Criterion) {
    use std::time::Instant;

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 2 {
        println!(
            "parallel_scaling/speedup: host has {cores} core(s); \
             scaling cannot be measured here (need >= 2)"
        );
        return;
    }

    let data = cod_datasets::cora_like(1);
    let g = data.graph.csr().clone();
    let theta = 4 * g.num_nodes();
    let seeds = SeedSequence::new(42);
    let median = |par: Parallelism| {
        let mut runs: Vec<f64> = (0..5)
            .map(|_| {
                let t = Instant::now();
                black_box(RrPool::sample_seeded(
                    &g,
                    Model::WeightedCascade,
                    theta,
                    seeds,
                    None,
                    par,
                ));
                t.elapsed().as_secs_f64()
            })
            .collect();
        runs.sort_by(|a, b| a.total_cmp(b));
        runs[runs.len() / 2]
    };
    let serial = median(Parallelism::Threads(1));
    let par4 = median(Parallelism::Threads(4));
    let speedup = serial / par4;
    println!(
        "parallel_scaling/speedup: rr_pool serial {serial:.4}s vs threads4 {par4:.4}s \
         -> {speedup:.2}x (target > 1.5x on >= 4 cores)"
    );
}

criterion_group!(benches, bench_rr_pool, bench_himor_build, speedup_report);
criterion_main!(benches);
