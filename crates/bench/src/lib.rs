//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§V). See `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! The harness is a library so that both the `src/bin/*` experiment
//! binaries and the criterion benches reuse the same code paths:
//!
//! * [`multik`] — evaluate one query for *all* `k = 1..=k_max`
//!   simultaneously (one compressed evaluation yields every k's verdict,
//!   which is how the Fig. 7 sweeps stay affordable);
//! * [`experiments`] — one function per table/figure;
//! * [`util`] — timing and table formatting.

pub mod experiments;
pub mod multik;
pub mod util;
