//! Regenerates the paper's table1 (see DESIGN.md §4).
//!
//! Usage: cargo run -p cod-bench --release --bin table1 -- [--queries N] [--seed N] [--theta N] [--datasets a,b] [--scale N]

fn main() {
    let opts = cod_bench::util::CliOpts::parse(20);
    cod_bench::experiments::table1(&opts);
}
