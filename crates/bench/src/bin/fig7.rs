//! Regenerates the paper's Fig. 7 effectiveness sweep (see DESIGN.md §4).
//!
//! Usage: cargo run -p cod-bench --release --bin fig7 -- [--queries N] [--seed N] [--theta N] [--datasets a,b] [--scale N]

fn main() {
    let opts = cod_bench::util::CliOpts::parse(20);
    cod_bench::experiments::fig7(&opts);
}
