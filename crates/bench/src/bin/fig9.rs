//! Regenerates the paper's fig9 (see DESIGN.md §4).
//!
//! Usage: cargo run -p cod-bench --release --bin fig9 -- [--queries N] [--seed N] [--theta N] [--datasets a,b] [--scale N]

fn main() {
    let opts = cod_bench::util::CliOpts::parse(8);
    cod_bench::experiments::fig9(&opts);
}
