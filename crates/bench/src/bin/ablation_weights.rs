//! Ablation: the g_l attribute-weight transform (DESIGN.md §4).
//!
//! Usage: cargo run -p cod-bench --release --bin ablation_weights -- [--queries N] [--datasets NAME]

fn main() {
    let opts = cod_bench::util::CliOpts::parse(20);
    cod_bench::experiments::ablation_weights(&opts);
}
