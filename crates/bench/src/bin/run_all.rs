//! Runs the entire experiment suite (every table and figure) in sequence.
//!
//! Usage: cargo run -p cod-bench --release --bin run_all -- [--queries N] [--seed N]

fn main() {
    let opts = cod_bench::util::CliOpts::parse(20);
    cod_bench::experiments::table1(&opts);
    cod_bench::experiments::fig4(&opts);
    cod_bench::experiments::fig7(&opts);
    cod_bench::experiments::fig8(&cod_bench::util::CliOpts {
        queries: opts.queries.min(10),
        ..opts.clone()
    });
    cod_bench::experiments::fig9(&cod_bench::util::CliOpts {
        queries: opts.queries.min(8),
        ..opts.clone()
    });
    cod_bench::experiments::table2(&opts);
    cod_bench::experiments::case_study(&opts);
    cod_bench::experiments::ablation_hgc(&opts);
    cod_bench::experiments::ablation_weights(&opts);
}
