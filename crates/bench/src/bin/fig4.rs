//! Regenerates the paper's fig4 (see DESIGN.md §4).
//!
//! Usage: cargo run -p cod-bench --release --bin fig4 -- [--queries N] [--seed N] [--theta N] [--datasets a,b] [--scale N]

fn main() {
    let opts = cod_bench::util::CliOpts::parse(60);
    cod_bench::experiments::fig4(&opts);
}
