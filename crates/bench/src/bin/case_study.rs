//! Regenerates the paper's case study (see DESIGN.md §4).
//!
//! Usage: cargo run -p cod-bench --release --bin case_study -- [--queries N] [--seed N] [--theta N] [--datasets a,b] [--scale N]

fn main() {
    let opts = cod_bench::util::CliOpts::parse(1);
    cod_bench::experiments::case_study(&opts);
}
