//! Ablation: agglomerative vs divisive hierarchy construction (DESIGN.md §4).
//!
//! Usage: cargo run -p cod-bench --release --bin ablation_hgc -- [--queries N] [--datasets a,b]

fn main() {
    let opts = cod_bench::util::CliOpts::parse(20);
    cod_bench::experiments::ablation_hgc(&opts);
}
