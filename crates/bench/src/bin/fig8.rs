//! Regenerates the paper's fig8 (see DESIGN.md §4).
//!
//! Usage: cargo run -p cod-bench --release --bin fig8 -- [--queries N] [--seed N] [--theta N] [--datasets a,b] [--scale N]

fn main() {
    let opts = cod_bench::util::CliOpts::parse(10);
    cod_bench::experiments::fig8(&opts);
}
