//! `loadgen` — an open-loop HTTP load generator for the `cod serve` tier.
//!
//! ```text
//! loadgen [--addr HOST:PORT | --preset cora] --qps 50 --duration-secs 5
//!         [--deadline-ms 200] [--attrs A,B,C] [--nodes N] [--retries 3]
//!         [--workers 2] [--max-inflight 4] [--accept-queue 16]
//!         [--seed 42] [--json]
//! ```
//!
//! Arrival is **open-loop**: request start times are fixed up front at
//! `1/qps` spacing (with ±30% jitter) and never wait for earlier requests
//! to finish, so server slowdowns build real queueing pressure instead of
//! being absorbed by the generator — the honest way to drive a tier whose
//! whole point is shedding under overload.
//!
//! The workload mixes three axes per request, all drawn deterministically
//! from `--seed`:
//!
//! * **node** — uniform over `[0, nodes)`;
//! * **attribute skew** — when `--attrs` lists names, request `i` picks
//!   attribute `j` with weight `1/(j+1)` (Zipf-ish, so the recluster cache
//!   sees a realistic hot head); otherwise the server defaults to the
//!   node's first attribute;
//! * **deadline mix** — 25% tight (`base/4`), 50% base, 25% loose
//!   (`base*4`), exercising the degradation ladder at the tight end.
//!
//! A 503 (shed at the socket, at the accept queue, or by the engine's
//! admission control) is retried up to `--retries` times with jittered
//! exponential backoff seeded from the response's `Retry-After` hint.
//! Every other status is terminal.
//!
//! Without `--addr`, the generator self-hosts: it builds the `--preset`
//! dataset, stands up an in-process server on an ephemeral port, drives it,
//! and reports the server's own shed/panic counters next to the
//! client-side view — which is what the chaos-soak CI leg asserts against.
//!
//! The report gives p50/p90/p99 end-to-end latency (including retries),
//! shed rate, degraded-answer rate, and error counts; `--json` appends one
//! machine-readable summary line for scripts.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

struct Opts {
    addr: Option<String>,
    preset: String,
    qps: f64,
    duration_secs: f64,
    deadline_ms: u64,
    attrs: Vec<String>,
    nodes: Option<u64>,
    retries: u32,
    workers: usize,
    max_inflight: usize,
    accept_queue: usize,
    seed: u64,
    json: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            addr: None,
            preset: "cora".into(),
            qps: 50.0,
            duration_secs: 5.0,
            deadline_ms: 200,
            attrs: Vec::new(),
            nodes: None,
            retries: 3,
            workers: 2,
            max_inflight: 4,
            accept_queue: 16,
            seed: 42,
            json: false,
        }
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts::default();
    let mut i = 0;
    let value = |args: &[String], i: usize| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", args[i]))
    };
    while i < args.len() {
        if args[i] == "--json" {
            o.json = true;
            i += 1;
            continue;
        }
        let v = value(args, i);
        match args[i].as_str() {
            "--addr" => o.addr = Some(v?),
            "--preset" => o.preset = v?,
            "--qps" => o.qps = v?.parse().map_err(|_| "--qps wants a number")?,
            "--duration-secs" => {
                o.duration_secs = v?.parse().map_err(|_| "--duration-secs wants a number")?
            }
            "--deadline-ms" => {
                o.deadline_ms = v?.parse().map_err(|_| "--deadline-ms wants a number")?
            }
            "--attrs" => o.attrs = v?.split(',').map(str::to_owned).collect(),
            "--nodes" => o.nodes = Some(v?.parse().map_err(|_| "--nodes wants a number")?),
            "--retries" => o.retries = v?.parse().map_err(|_| "--retries wants a number")?,
            "--workers" => o.workers = v?.parse().map_err(|_| "--workers wants a number")?,
            "--max-inflight" => {
                o.max_inflight = v?.parse().map_err(|_| "--max-inflight wants a number")?
            }
            "--accept-queue" => {
                o.accept_queue = v?.parse().map_err(|_| "--accept-queue wants a number")?
            }
            "--seed" => o.seed = v?.parse().map_err(|_| "--seed wants a number")?,
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 2;
    }
    if o.qps <= 0.0 || o.duration_secs <= 0.0 {
        return Err("--qps and --duration-secs must be positive".into());
    }
    Ok(o)
}

/// Final fate of one logical request (after retries).
#[derive(Clone, Copy, Debug)]
enum Outcome {
    /// 200, clean answer (or clean "no community").
    Ok,
    /// 200, but the answer was served by a lower rung of the ladder.
    Degraded,
    /// Still 503 after all retries.
    Shed,
    /// Terminal non-200/503 status (400/404/408/413/422/500/504…).
    Status(u16),
    /// Socket-level failure (connect refused, reset, timeout).
    Io,
}

struct Sample {
    outcome: Outcome,
    /// Arrival-to-final-byte latency, retries and backoff included.
    latency: Duration,
    attempts: u32,
}

/// A minimal `Connection: close` HTTP exchange: writes one GET, reads to
/// EOF, returns (status, retry_after, body).
fn http_get(
    addr: &str,
    target: &str,
    timeout: Duration,
) -> std::io::Result<(u16, Option<u64>, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header end"))?;
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let retry_after = head.lines().find_map(|l| {
        let (name, val) = l.split_once(':')?;
        name.eq_ignore_ascii_case("retry-after")
            .then(|| val.trim().parse().ok())
            .flatten()
    });
    Ok((status, retry_after, body.to_owned()))
}

/// Issues one logical request, retrying 503s with jittered exponential
/// backoff (the `Retry-After` hint seeds the first backoff step).
fn drive_one(addr: &str, target: &str, retries: u32, rng: &mut SmallRng) -> Sample {
    let started = Instant::now();
    // Generous socket timeout: the request's own deadline_ms governs the
    // server side; this only bounds a wedged connection.
    let socket_timeout = Duration::from_secs(10);
    let mut attempts = 0;
    loop {
        attempts += 1;
        match http_get(addr, target, socket_timeout) {
            Ok((200, _, body)) => {
                let degraded = body.contains("\"degraded\":\"");
                return Sample {
                    outcome: if degraded {
                        Outcome::Degraded
                    } else {
                        Outcome::Ok
                    },
                    latency: started.elapsed(),
                    attempts,
                };
            }
            Ok((503, retry_after, _)) => {
                if attempts > retries {
                    return Sample {
                        outcome: Outcome::Shed,
                        latency: started.elapsed(),
                        attempts,
                    };
                }
                // Base step: the server's hint when it gave one, else 25ms;
                // doubled per attempt, jittered to 50–150% to avoid retry
                // synchronization across the fleet.
                let base_ms = retry_after.map_or(25, |s| (s * 1000).clamp(25, 2_000));
                let step = base_ms.saturating_mul(1 << (attempts - 1).min(6)) as f64;
                let jittered = step * (0.5 + rng.random::<f64>());
                std::thread::sleep(Duration::from_millis(jittered as u64));
            }
            Ok((status, _, _)) => {
                return Sample {
                    outcome: Outcome::Status(status),
                    latency: started.elapsed(),
                    attempts,
                };
            }
            Err(_) => {
                return Sample {
                    outcome: Outcome::Io,
                    latency: started.elapsed(),
                    attempts,
                };
            }
        }
    }
}

/// Builds request `i`'s target path from the workload mix.
fn target_for(i: u64, o: &Opts, nodes: u64, rng: &mut SmallRng) -> String {
    let node = rng.random_range(0..nodes.max(1));
    let deadline = match rng.random_range(0..4u32) {
        0 => (o.deadline_ms / 4).max(1),
        3 => o.deadline_ms.saturating_mul(4),
        _ => o.deadline_ms,
    };
    let attr = if o.attrs.is_empty() {
        String::new()
    } else {
        // Zipf-ish skew: attribute j with weight 1/(j+1).
        let total: f64 = (0..o.attrs.len()).map(|j| 1.0 / (j + 1) as f64).sum();
        let mut draw = rng.random::<f64>() * total;
        let mut pick = 0;
        for j in 0..o.attrs.len() {
            let w = 1.0 / (j + 1) as f64;
            if draw < w {
                pick = j;
                break;
            }
            draw -= w;
        }
        format!("&attr={}", o.attrs[pick])
    };
    let _ = i;
    format!("/query?node={node}&deadline_ms={deadline}{attr}")
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;

    // Self-host when no --addr: in-process engine + server, torn down (and
    // its counters reported) after the run.
    let mut hosted = None;
    let (addr, nodes) = match &o.addr {
        Some(addr) => {
            let nodes = o
                .nodes
                .ok_or("--addr mode needs --nodes (max node id bound)")?;
            (addr.clone(), nodes)
        }
        None => {
            let data = cod_datasets::by_name(&o.preset, o.seed)
                .ok_or_else(|| format!("unknown preset {:?}", o.preset))?;
            let nodes = o.nodes.unwrap_or(data.graph.num_nodes() as u64);
            let cfg = cod_core::CodConfig {
                k: 3,
                theta: 8,
                max_inflight: Some(o.max_inflight),
                ..cod_core::CodConfig::default()
            };
            let engine = Arc::new(cod_core::CodEngine::new(data.graph, cfg));
            let serve_cfg = cod_serve::ServeConfig {
                workers: o.workers.max(1),
                accept_queue: o.accept_queue.max(1),
                seed: o.seed,
                ..cod_serve::ServeConfig::default()
            };
            let handle = cod_serve::serve(Arc::clone(&engine), serve_cfg)
                .map_err(|e| format!("starting in-process server: {e}"))?;
            let addr = handle.addr().to_string();
            eprintln!("self-hosting {} on http://{addr}", o.preset);
            hosted = Some((handle, engine));
            (addr, nodes)
        }
    };

    let total = (o.qps * o.duration_secs).ceil() as u64;
    eprintln!(
        "open-loop: {total} requests at {} qps over {}s against {addr}",
        o.qps, o.duration_secs
    );

    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::with_capacity(total as usize)));
    let mut arrival_rng = SmallRng::seed_from_u64(o.seed);
    let start = Instant::now();
    let mut handles = Vec::with_capacity(total as usize);
    for i in 0..total {
        // Fixed spacing with ±30% jitter; arrival never waits on completion.
        let spacing = 1.0 / o.qps;
        let jitter: f64 = arrival_rng.random::<f64>() * 0.6 - 0.3;
        let at = Duration::from_secs_f64((spacing * i as f64 + spacing * jitter).max(0.0));
        if let Some(wait) = at.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let addr = addr.clone();
        let samples = Arc::clone(&samples);
        let retries = o.retries;
        let mut rng = SmallRng::seed_from_u64(o.seed ^ (i + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let target = target_for(i, &o, nodes, &mut rng);
        handles.push(std::thread::spawn(move || {
            let s = drive_one(&addr, &target, retries, &mut rng);
            samples.lock().unwrap().push(s);
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    let wall = start.elapsed();

    let samples = samples.lock().unwrap();
    let (mut ok, mut degraded, mut shed, mut io, mut other) = (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut status_counts: std::collections::BTreeMap<u16, u64> = std::collections::BTreeMap::new();
    let mut retried_attempts = 0u64;
    let mut ok_lat: Vec<Duration> = Vec::new();
    for s in samples.iter() {
        retried_attempts += (s.attempts - 1) as u64;
        match s.outcome {
            Outcome::Ok => {
                ok += 1;
                ok_lat.push(s.latency);
            }
            Outcome::Degraded => {
                degraded += 1;
                ok_lat.push(s.latency);
            }
            Outcome::Shed => shed += 1,
            Outcome::Io => io += 1,
            Outcome::Status(s) => {
                other += 1;
                *status_counts.entry(s).or_default() += 1;
            }
        }
    }
    ok_lat.sort();
    let n = samples.len().max(1) as f64;
    let answered = ok + degraded;
    println!(
        "loadgen report ({} requests in {:.2}s, {:.1} qps achieved)",
        samples.len(),
        wall.as_secs_f64(),
        samples.len() as f64 / wall.as_secs_f64()
    );
    println!("  answered:  {answered} ({ok} clean, {degraded} degraded)");
    println!(
        "  shed:      {shed} ({:.1}% after retries)",
        shed as f64 / n * 100.0
    );
    let status_detail: String = status_counts
        .iter()
        .map(|(s, n)| format!(" {s}x{n}"))
        .collect();
    println!("  errors:    {other} http{status_detail}, {io} io");
    println!("  retries:   {retried_attempts} extra attempt(s)");
    println!(
        "  latency:   p50 {:.1}ms  p90 {:.1}ms  p99 {:.1}ms (answered only)",
        percentile(&ok_lat, 0.50).as_secs_f64() * 1e3,
        percentile(&ok_lat, 0.90).as_secs_f64() * 1e3,
        percentile(&ok_lat, 0.99).as_secs_f64() * 1e3,
    );
    println!(
        "  rates:     shed {:.3}  degraded {:.3}",
        shed as f64 / n,
        degraded as f64 / n
    );
    if o.json {
        println!(
            "{{\"requests\":{},\"answered\":{answered},\"clean\":{ok},\"degraded\":{degraded},\
             \"shed\":{shed},\"http_errors\":{other},\"io_errors\":{io},\
             \"retries\":{retried_attempts},\"p50_ms\":{:.3},\"p90_ms\":{:.3},\"p99_ms\":{:.3}}}",
            samples.len(),
            percentile(&ok_lat, 0.50).as_secs_f64() * 1e3,
            percentile(&ok_lat, 0.90).as_secs_f64() * 1e3,
            percentile(&ok_lat, 0.99).as_secs_f64() * 1e3,
        );
    }

    if let Some((handle, engine)) = hosted {
        let report = handle.shutdown();
        let st = &report.http_stats;
        eprintln!(
            "server: {} request(s), shed {} socket + {} engine, {} draining reject(s), {} panic(s); drained in time: {}",
            st.requests, st.shed_socket, st.shed_engine, st.draining_rejects, st.panics, report.drained_in_time
        );
        let leaked = engine.inflight();
        if leaked != 0 {
            return Err(format!(
                "engine leaked {leaked} inflight permit(s) post-run"
            ));
        }
        if st.panics != 0 {
            return Err(format!("{} worker panic(s) during the run", st.panics));
        }
        if !report.drained_in_time {
            return Err("shutdown drain overran its deadline".into());
        }
        eprintln!("server: 0 leaked permits, 0 panics, clean drain");
    }
    Ok(())
}
