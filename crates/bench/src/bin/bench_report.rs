//! `bench_report` — folds criterion JSONL output into a committed-schema
//! benchmark report and gates CI on median regressions.
//!
//! ```text
//! bench_report --input bench.jsonl --out BENCH_PR4.json
//!              [--baseline BENCH_BASELINE.json] [--max-regression 25]
//! ```
//!
//! The input is the append-only sink written by the vendored criterion
//! stand-in when `CRITERION_JSONL` is set (one
//! `{"id":...,"median_ns":...,"samples":...}` line per benchmark; several
//! bench binaries may share one sink). The report adds a snapshot of the
//! engine's telemetry counters on a fixed workload — counters are
//! deterministic under a fixed seed, so counter drift in a diff against the
//! baseline is an algorithmic change, not noise.
//!
//! With `--baseline`, every benchmark id present in both files is compared
//! and the run fails (exit 1) when any median regresses by more than
//! `--max-regression` percent (default 25). Ids only on one side are
//! reported but never fail the gate — benchmarks come and go across PRs.
//!
//! Report schema (`schema_version` 1), one benchmark entry per line so the
//! file diffs cleanly and parses line-wise without a JSON library:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "benchmarks": [
//!     {"id": "query_throughput/engine_warm", "median_ns": 123, "samples": 10}
//!   ],
//!   "counters": {"rr_graphs_sampled": 456}
//! }
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use cod_core::{CodConfig, CodEngine, Method, Query, COUNTERS};
use cod_influence::Parallelism;
use rand::prelude::*;

const SCHEMA_VERSION: u64 = 1;
const DEFAULT_MAX_REGRESSION_PCT: f64 = 25.0;

fn main() -> ExitCode {
    match run() {
        Ok(ok) => {
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<bool, String> {
    let opts = Opts::parse(&std::env::args().skip(1).collect::<Vec<_>>())?;
    let input = std::fs::read_to_string(&opts.input)
        .map_err(|e| format!("reading {}: {e}", opts.input.display()))?;
    let benchmarks = parse_entries(&input)?;
    if benchmarks.is_empty() {
        return Err(format!("{}: no benchmark lines", opts.input.display()));
    }
    let counters = counter_snapshot();
    let report = render_report(&benchmarks, &counters);
    std::fs::write(&opts.out, &report)
        .map_err(|e| format!("writing {}: {e}", opts.out.display()))?;
    eprintln!(
        "wrote {} ({} benchmarks, {} counters)",
        opts.out.display(),
        benchmarks.len(),
        counters.len()
    );

    let Some(baseline_path) = &opts.baseline else {
        return Ok(true);
    };
    let baseline_text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
    let baseline = parse_entries(&baseline_text)?;
    Ok(gate(&benchmarks, &baseline, opts.max_regression_pct))
}

struct Opts {
    input: PathBuf,
    out: PathBuf,
    baseline: Option<PathBuf>,
    max_regression_pct: f64,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut input = None;
        let mut out = None;
        let mut baseline = None;
        let mut max_regression_pct = DEFAULT_MAX_REGRESSION_PCT;
        let mut i = 0;
        while i < args.len() {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))?;
            match args[i].as_str() {
                "--input" => input = Some(PathBuf::from(value)),
                "--out" => out = Some(PathBuf::from(value)),
                "--baseline" => baseline = Some(PathBuf::from(value)),
                "--max-regression" => {
                    max_regression_pct = value
                        .parse()
                        .map_err(|_| "--max-regression wants a percentage".to_string())?
                }
                other => return Err(format!("unknown option {other:?}")),
            }
            i += 2;
        }
        Ok(Self {
            input: input.ok_or("--input FILE is required")?,
            out: out.ok_or("--out FILE is required")?,
            baseline,
            max_regression_pct,
        })
    }
}

/// One benchmark measurement; `samples` is 0 for baseline files predating
/// the field (none exist yet, but parsing stays lenient).
#[derive(Clone, Debug, PartialEq, Eq)]
struct Entry {
    median_ns: u64,
    samples: u64,
}

/// Extracts `"field":` or `"field": ` followed by a bare number.
fn field_u64(line: &str, field: &str) -> Option<u64> {
    let key = format!("\"{field}\":");
    let at = line.find(&key)? + key.len();
    let rest = line[at..].trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Extracts `"field":` or `"field": ` followed by a quoted string
/// (un-escaping the two sequences the writer emits).
fn field_str(line: &str, field: &str) -> Option<String> {
    let key = format!("\"{field}\":");
    let at = line.find(&key)? + key.len();
    let rest = line[at..].trim_start().strip_prefix('"')?;
    let mut s = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(s),
            '\\' => s.push(chars.next()?),
            c => s.push(c),
        }
    }
    None
}

/// Parses benchmark entries out of either format: raw criterion JSONL, or a
/// committed report (whose `benchmarks` array holds one entry per line).
/// Lines without an `id` field (schema scaffolding, counters) are skipped;
/// duplicate ids keep the last measurement, matching append semantics.
fn parse_entries(text: &str) -> Result<BTreeMap<String, Entry>, String> {
    let mut entries = BTreeMap::new();
    for line in text.lines() {
        let Some(id) = field_str(line, "id") else {
            continue;
        };
        let median_ns = field_u64(line, "median_ns")
            .ok_or_else(|| format!("line for {id:?} lacks median_ns: {line:?}"))?;
        let samples = field_u64(line, "samples").unwrap_or(0);
        entries.insert(id, Entry { median_ns, samples });
    }
    Ok(entries)
}

/// A deterministic telemetry-counter snapshot: a fixed mixed-method batch on
/// the `cora` preset, serial, seed 42. Counters never depend on wall-clock
/// timing, so two runs of the same code produce identical numbers and any
/// diff against the committed baseline reflects an algorithmic change.
fn counter_snapshot() -> BTreeMap<&'static str, u64> {
    let data = cod_datasets::by_name("cora", 42).expect("cora preset exists");
    let g = data.graph;
    let attr_of = |q: u32| g.node_attrs(q).first().copied().unwrap_or(0);
    let queries = vec![
        Query::codu(17),
        Query::new(17, attr_of(17), Method::Codr),
        Query::new(42, attr_of(42), Method::CodlMinus),
        Query::new(42, attr_of(42), Method::Codl),
        Query::new(99, attr_of(99), Method::Codl),
    ];
    let cfg = CodConfig {
        parallelism: Parallelism::Serial,
        ..CodConfig::default()
    };
    let engine = CodEngine::new(g, cfg);
    let mut rng = SmallRng::seed_from_u64(42);
    for result in engine.query_batch(&queries, &mut rng) {
        if let Err(e) = result {
            eprintln!("warning: counter-snapshot query failed: {e}");
        }
    }
    let snapshot = engine.metrics();
    COUNTERS
        .iter()
        .map(|c| (c.name(), snapshot.counters.get(*c)))
        .collect()
}

fn render_report(
    benchmarks: &BTreeMap<String, Entry>,
    counters: &BTreeMap<&'static str, u64>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    out.push_str("  \"benchmarks\": [\n");
    let mut first = true;
    for (id, e) in benchmarks {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let escaped: String = id
            .chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                c => vec![c],
            })
            .collect();
        out.push_str(&format!(
            "    {{\"id\": \"{escaped}\", \"median_ns\": {}, \"samples\": {}}}",
            e.median_ns, e.samples
        ));
    }
    out.push_str("\n  ],\n");
    out.push_str("  \"counters\": {\n");
    let mut first = true;
    for (name, value) in counters {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("    \"{name}\": {value}"));
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Compares current medians against the baseline. Returns false (gate
/// failed) when any shared id regressed past the threshold.
fn gate(
    current: &BTreeMap<String, Entry>,
    baseline: &BTreeMap<String, Entry>,
    max_regression_pct: f64,
) -> bool {
    let mut failed = false;
    for (id, cur) in current {
        let Some(base) = baseline.get(id) else {
            eprintln!("note: {id}: new benchmark (no baseline)");
            continue;
        };
        if base.median_ns == 0 {
            continue;
        }
        let change_pct =
            (cur.median_ns as f64 - base.median_ns as f64) / base.median_ns as f64 * 100.0;
        if change_pct > max_regression_pct {
            eprintln!(
                "REGRESSION: {id}: {} ns -> {} ns (+{change_pct:.1}% > +{max_regression_pct:.0}%)",
                base.median_ns, cur.median_ns
            );
            failed = true;
        } else {
            eprintln!(
                "ok: {id}: {} ns -> {} ns ({change_pct:+.1}%)",
                base.median_ns, cur.median_ns
            );
        }
    }
    for id in baseline.keys() {
        if !current.contains_key(id) {
            eprintln!("note: {id}: in baseline but not in this run");
        }
    }
    if failed {
        eprintln!("bench gate FAILED (threshold +{max_regression_pct:.0}%)");
    } else {
        eprintln!("bench gate passed (threshold +{max_regression_pct:.0}%)");
    }
    !failed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_jsonl_and_keeps_last_duplicate() {
        let text = "\
{\"id\":\"g/a\",\"median_ns\":100,\"samples\":10}\n\
not json at all\n\
{\"id\":\"g/b\",\"median_ns\":200,\"samples\":5}\n\
{\"id\":\"g/a\",\"median_ns\":150,\"samples\":10}\n";
        let entries = parse_entries(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries["g/a"].median_ns, 150);
        assert_eq!(entries["g/b"].samples, 5);
    }

    #[test]
    fn report_round_trips_through_the_parser() {
        let mut benchmarks = BTreeMap::new();
        benchmarks.insert(
            "q/one".to_string(),
            Entry {
                median_ns: 123,
                samples: 7,
            },
        );
        benchmarks.insert(
            "q/two".to_string(),
            Entry {
                median_ns: 456,
                samples: 9,
            },
        );
        let mut counters = BTreeMap::new();
        counters.insert("rr_graphs_sampled", 42u64);
        let report = render_report(&benchmarks, &counters);
        assert!(report.contains("\"schema_version\": 1"));
        assert!(report.contains("\"rr_graphs_sampled\": 42"));
        let reparsed = parse_entries(&report).unwrap();
        assert_eq!(reparsed, benchmarks);
    }

    #[test]
    fn gate_fails_only_past_threshold() {
        let entry = |m: u64| Entry {
            median_ns: m,
            samples: 1,
        };
        let mut base = BTreeMap::new();
        base.insert("a".to_string(), entry(1000));
        base.insert("gone".to_string(), entry(50));
        let mut cur = BTreeMap::new();
        cur.insert("a".to_string(), entry(1250));
        cur.insert("new".to_string(), entry(9999));
        // +25% exactly is within the gate; ids on one side never fail it.
        assert!(gate(&cur, &base, 25.0));
        cur.insert("a".to_string(), entry(1251));
        assert!(!gate(&cur, &base, 25.0));
        // A loosened threshold admits the same medians.
        assert!(gate(&cur, &base, 30.0));
    }

    #[test]
    fn string_fields_unescape() {
        let line = "{\"id\":\"g\\\\x/\\\"y\\\"\",\"median_ns\":1}";
        assert_eq!(field_str(line, "id").unwrap(), "g\\x/\"y\"");
    }
}
