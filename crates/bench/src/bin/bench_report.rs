//! `bench_report` — folds criterion JSONL output into a committed-schema
//! benchmark report and gates CI on median regressions.
//!
//! ```text
//! bench_report --input bench.jsonl --out BENCH_PR4.json
//!              [--baseline BENCH_BASELINE.json] [--max-regression 25]
//!              [--gate ratio|absolute]
//! ```
//!
//! The input is the append-only sink written by the vendored criterion
//! stand-in when `CRITERION_JSONL` is set (one
//! `{"id":...,"median_ns":...,"samples":...}` line per benchmark; several
//! bench binaries may share one sink). The report adds a snapshot of the
//! engine's telemetry counters on a fixed workload — counters are
//! deterministic under a fixed seed, so counter drift in a diff against the
//! baseline is an algorithmic change, not noise.
//!
//! With `--baseline`, the run is gated against the baseline file and exits 1
//! on a regression past `--max-regression` percent (default 25). The default
//! `ratio` gate compares *within-run* ratios (compressed vs. independent,
//! warm vs. cold cache, batch vs. single — see [`RATIOS`]): both sides of
//! each ratio are measured in the same process on the same machine, so
//! runner-hardware generation and noisy-neighbor variance cancel and the
//! gate is meaningful even when the baseline was recorded elsewhere.
//! Absolute medians are still compared, but as informational output only.
//! `--gate absolute` restores strict per-id median gating — useful locally
//! when baseline and run come from the same machine. In either mode, ids
//! (or ratio legs) present on only one side are reported but never fail the
//! gate — benchmarks come and go across PRs.
//!
//! Report schema (`schema_version` 1), one benchmark entry per line so the
//! file diffs cleanly and parses line-wise without a JSON library:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "benchmarks": [
//!     {"id": "query_throughput/engine_warm", "median_ns": 123, "samples": 10}
//!   ],
//!   "counters": {"rr_graphs_sampled": 456}
//! }
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use cod_core::{CodConfig, CodEngine, Method, Query, COUNTERS};
use cod_influence::Parallelism;
use rand::prelude::*;

const SCHEMA_VERSION: u64 = 1;
const DEFAULT_MAX_REGRESSION_PCT: f64 = 25.0;

/// Hardware-invariant gate ratios: `(name, numerator id, denominator id,
/// absolute cap)`. Both legs of a ratio are measured in the same bench
/// process, so absolute wall-clock shifts (runner generation, noisy
/// neighbors, CPU scaling) cancel out; a ratio only moves when the
/// *relative* cost the paper argues about — compressed vs. independent
/// evaluation, warm vs. cold recluster cache, batch vs. single-query
/// serving — actually changes. A `Some` cap additionally bounds the
/// *current run's* ratio outright, baseline or not: it encodes an
/// acceptance ceiling (e.g. governance checkpoints may cost at most 5%)
/// rather than a no-worse-than-before comparison.
const RATIOS: &[(&str, &str, &str, Option<f64>)] = &[
    (
        "compressed_vs_independent_theta10",
        "cod_evaluation_cora/compressed_theta10",
        "cod_evaluation_cora/independent_theta10",
        None,
    ),
    (
        "compressed_vs_independent_theta40",
        "cod_evaluation_cora/compressed_theta40",
        "cod_evaluation_cora/independent_theta40",
        None,
    ),
    (
        "warm_vs_cold_cora",
        "query_throughput/repeat_attr/cora_warm_cache",
        "query_throughput/repeat_attr/cora_uncached",
        None,
    ),
    (
        "warm_vs_cold_citeseer",
        "query_throughput/repeat_attr/citeseer_warm_cache",
        "query_throughput/repeat_attr/citeseer_uncached",
        None,
    ),
    // The cross-query RR-pool cache acceptance gate: a pool-warm engine
    // (pools and artifact cache resident) must answer the repeat-attribute
    // workload at ≥ 5× the QPS of the uncached legacy path, i.e. in ≤ 0.2×
    // the time.
    (
        "pool_warm_ratio",
        "query_throughput/repeat_attr/cora_pool_warm",
        "query_throughput/repeat_attr/cora_uncached",
        Some(0.2),
    ),
    (
        "batch_vs_single",
        "query_throughput/single_vs_batch/batch",
        "query_throughput/single_vs_batch/single",
        None,
    ),
    (
        "governance_overhead",
        "query_throughput/governance/limits_armed",
        "query_throughput/governance/limits_unarmed",
        Some(1.05),
    ),
    // The incremental-mutation acceptance gate: flushing one edge event of
    // a 1% churn stream through the localized repair + HIMOR patch must run
    // in ≤ 1/3 the time of absorbing the same event with a from-scratch
    // rebuild (i.e. repair ≥ 3× faster; measured headroom is ~7×).
    (
        "repair_vs_rebuild",
        "mutation_churn/repair_per_event",
        "mutation_churn/rebuild_per_event",
        Some(0.34),
    ),
    // The durability acceptance gate: appending each event to the
    // group-commit WAL before the identical repair-path flush may cost at
    // most 25% over the bare in-memory pipeline.
    (
        "wal_append_overhead",
        "mutation_churn/wal_group_commit_per_event",
        "mutation_churn/repair_per_event",
        Some(1.25),
    ),
    // HTTP round trip vs direct engine call on the same warm query: the
    // serving tier's socket + parse + JSON + handoff overhead. No absolute
    // cap — the warm query is fast enough that the ratio is loopback-RTT
    // dominated; the baseline comparison still flags regressions.
    (
        "serve_http_overhead",
        "serve_http/http_query",
        "serve_http/engine_direct",
        None,
    ),
    // Out-of-core acceptance gate: opening a CODX v3 file as a memory
    // mapping and answering a cold batch must never be slower than eagerly
    // deserializing the whole file first — the mmap path skips the parse
    // and defers section CRC sweeps to first touch. The 1.10 cap leaves
    // room for page-fault noise on the shared sections the batch does
    // touch.
    (
        "mmap_cold_vs_eager",
        "query_throughput/mmap/mmap_cold",
        "query_throughput/mmap/eager_cold",
        Some(1.10),
    ),
    // Scatter-gather routing tax: a two-shard batch over shared artifacts
    // vs the same batch on one engine. No absolute cap — on small graphs
    // the ratio is dominated by per-sub-batch dispatch, which varies by
    // core count; the baseline comparison still flags regressions.
    (
        "shard_batch_ratio",
        "query_throughput/sharded/sharded_batch",
        "query_throughput/sharded/single_batch",
        None,
    ),
];

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum GateMode {
    /// Gate on within-run ratios; absolute medians are informational.
    Ratio,
    /// Gate on absolute per-id medians (same-machine baselines only).
    Absolute,
}

fn main() -> ExitCode {
    match run() {
        Ok(ok) => {
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<bool, String> {
    let opts = Opts::parse(&std::env::args().skip(1).collect::<Vec<_>>())?;
    let input = std::fs::read_to_string(&opts.input)
        .map_err(|e| format!("reading {}: {e}", opts.input.display()))?;
    let benchmarks = parse_entries(&input)?;
    if benchmarks.is_empty() {
        return Err(format!("{}: no benchmark lines", opts.input.display()));
    }
    let counters = counter_snapshot();
    let report = render_report(&benchmarks, &counters);
    std::fs::write(&opts.out, &report)
        .map_err(|e| format!("writing {}: {e}", opts.out.display()))?;
    eprintln!(
        "wrote {} ({} benchmarks, {} counters)",
        opts.out.display(),
        benchmarks.len(),
        counters.len()
    );

    let Some(baseline_path) = &opts.baseline else {
        return Ok(true);
    };
    let baseline_text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
    let baseline = parse_entries(&baseline_text)?;
    Ok(match opts.gate {
        GateMode::Ratio => gate_ratio(&benchmarks, &baseline, opts.max_regression_pct),
        GateMode::Absolute => gate_absolute(&benchmarks, &baseline, opts.max_regression_pct),
    })
}

struct Opts {
    input: PathBuf,
    out: PathBuf,
    baseline: Option<PathBuf>,
    max_regression_pct: f64,
    gate: GateMode,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut input = None;
        let mut out = None;
        let mut baseline = None;
        let mut max_regression_pct = DEFAULT_MAX_REGRESSION_PCT;
        let mut gate = GateMode::Ratio;
        let mut i = 0;
        while i < args.len() {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))?;
            match args[i].as_str() {
                "--input" => input = Some(PathBuf::from(value)),
                "--out" => out = Some(PathBuf::from(value)),
                "--baseline" => baseline = Some(PathBuf::from(value)),
                "--max-regression" => {
                    max_regression_pct = value
                        .parse()
                        .map_err(|_| "--max-regression wants a percentage".to_string())?
                }
                "--gate" => {
                    gate = match value.as_str() {
                        "ratio" => GateMode::Ratio,
                        "absolute" => GateMode::Absolute,
                        _ => return Err("--gate wants ratio or absolute".to_string()),
                    }
                }
                other => return Err(format!("unknown option {other:?}")),
            }
            i += 2;
        }
        Ok(Self {
            input: input.ok_or("--input FILE is required")?,
            out: out.ok_or("--out FILE is required")?,
            baseline,
            max_regression_pct,
            gate,
        })
    }
}

/// One benchmark measurement; `samples` is 0 for baseline files predating
/// the field (none exist yet, but parsing stays lenient).
#[derive(Clone, Debug, PartialEq, Eq)]
struct Entry {
    median_ns: u64,
    samples: u64,
}

/// Extracts `"field":` or `"field": ` followed by a bare number.
fn field_u64(line: &str, field: &str) -> Option<u64> {
    let key = format!("\"{field}\":");
    let at = line.find(&key)? + key.len();
    let rest = line[at..].trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Extracts `"field":` or `"field": ` followed by a quoted string
/// (un-escaping the two sequences the writer emits).
fn field_str(line: &str, field: &str) -> Option<String> {
    let key = format!("\"{field}\":");
    let at = line.find(&key)? + key.len();
    let rest = line[at..].trim_start().strip_prefix('"')?;
    let mut s = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(s),
            '\\' => s.push(chars.next()?),
            c => s.push(c),
        }
    }
    None
}

/// Parses benchmark entries out of either format: raw criterion JSONL, or a
/// committed report (whose `benchmarks` array holds one entry per line).
/// Lines without an `id` field (schema scaffolding, counters) are skipped;
/// duplicate ids keep the last measurement, matching append semantics.
fn parse_entries(text: &str) -> Result<BTreeMap<String, Entry>, String> {
    let mut entries = BTreeMap::new();
    for line in text.lines() {
        let Some(id) = field_str(line, "id") else {
            continue;
        };
        let median_ns = field_u64(line, "median_ns")
            .ok_or_else(|| format!("line for {id:?} lacks median_ns: {line:?}"))?;
        let samples = field_u64(line, "samples").unwrap_or(0);
        entries.insert(id, Entry { median_ns, samples });
    }
    Ok(entries)
}

/// A deterministic telemetry-counter snapshot: a fixed mixed-method batch on
/// the `cora` preset, serial, seed 42. Counters never depend on wall-clock
/// timing, so two runs of the same code produce identical numbers and any
/// diff against the committed baseline reflects an algorithmic change.
fn counter_snapshot() -> BTreeMap<&'static str, u64> {
    let data = cod_datasets::by_name("cora", 42).expect("cora preset exists");
    let g = data.graph;
    let attr_of = |q: u32| g.node_attrs(q).first().copied().unwrap_or(0);
    let queries = vec![
        Query::codu(17),
        Query::new(17, attr_of(17), Method::Codr),
        Query::new(42, attr_of(42), Method::CodlMinus),
        Query::new(42, attr_of(42), Method::Codl),
        Query::new(99, attr_of(99), Method::Codl),
    ];
    let cfg = CodConfig {
        parallelism: Parallelism::Serial,
        ..CodConfig::default()
    };
    let engine = CodEngine::new(g, cfg);
    let mut rng = SmallRng::seed_from_u64(42);
    for result in engine.query_batch(&queries, &mut rng) {
        if let Err(e) = result {
            eprintln!("warning: counter-snapshot query failed: {e}");
        }
    }
    let snapshot = engine.metrics();
    COUNTERS
        .iter()
        .map(|c| (c.name(), snapshot.counters.get(*c)))
        .collect()
}

fn render_report(
    benchmarks: &BTreeMap<String, Entry>,
    counters: &BTreeMap<&'static str, u64>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    out.push_str("  \"benchmarks\": [\n");
    let mut first = true;
    for (id, e) in benchmarks {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let escaped: String = id
            .chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                c => vec![c],
            })
            .collect();
        out.push_str(&format!(
            "    {{\"id\": \"{escaped}\", \"median_ns\": {}, \"samples\": {}}}",
            e.median_ns, e.samples
        ));
    }
    out.push_str("\n  ],\n");
    // The within-run ratios the CI gate actually enforces — recorded so the
    // artifact shows the gated quantities next to the raw medians.
    out.push_str("  \"ratios\": {\n");
    let mut first = true;
    for (name, num, den, _cap) in RATIOS {
        let Some(ratio) = ratio_of(benchmarks, num, den) else {
            continue;
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("    \"{name}\": {ratio:.4}"));
    }
    out.push_str("\n  },\n");
    out.push_str("  \"counters\": {\n");
    let mut first = true;
    for (name, value) in counters {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("    \"{name}\": {value}"));
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Prints the per-id absolute median comparison. With `enforce`, a change
/// past the threshold counts as a regression (returned as `true`); without
/// it the listing is informational and always returns `false`.
fn absolute_changes(
    current: &BTreeMap<String, Entry>,
    baseline: &BTreeMap<String, Entry>,
    max_regression_pct: f64,
    enforce: bool,
) -> bool {
    let tag = if enforce { "ok" } else { "info" };
    let mut failed = false;
    for (id, cur) in current {
        let Some(base) = baseline.get(id) else {
            eprintln!("note: {id}: new benchmark (no baseline)");
            continue;
        };
        if base.median_ns == 0 {
            continue;
        }
        let change_pct =
            (cur.median_ns as f64 - base.median_ns as f64) / base.median_ns as f64 * 100.0;
        if enforce && change_pct > max_regression_pct {
            eprintln!(
                "REGRESSION: {id}: {} ns -> {} ns (+{change_pct:.1}% > +{max_regression_pct:.0}%)",
                base.median_ns, cur.median_ns
            );
            failed = true;
        } else {
            eprintln!(
                "{tag}: {id}: {} ns -> {} ns ({change_pct:+.1}%)",
                base.median_ns, cur.median_ns
            );
        }
    }
    for id in baseline.keys() {
        if !current.contains_key(id) {
            eprintln!("note: {id}: in baseline but not in this run");
        }
    }
    failed
}

/// Strict per-id median gate: fails when any shared id regressed past the
/// threshold. Only meaningful when baseline and run share a machine.
fn gate_absolute(
    current: &BTreeMap<String, Entry>,
    baseline: &BTreeMap<String, Entry>,
    max_regression_pct: f64,
) -> bool {
    let failed = absolute_changes(current, baseline, max_regression_pct, true);
    if failed {
        eprintln!("bench gate FAILED (absolute, threshold +{max_regression_pct:.0}%)");
    } else {
        eprintln!("bench gate passed (absolute, threshold +{max_regression_pct:.0}%)");
    }
    !failed
}

/// The within-run ratio named by a [`RATIOS`] entry, when both legs were
/// measured with a nonzero denominator.
fn ratio_of(entries: &BTreeMap<String, Entry>, num: &str, den: &str) -> Option<f64> {
    let n = entries.get(num)?.median_ns;
    let d = entries.get(den)?.median_ns;
    (d != 0).then(|| n as f64 / d as f64)
}

/// Hardware-invariant gate: each [`RATIOS`] entry computable on both sides
/// must not grow by more than the threshold. Absolute medians are printed
/// informationally. Fails loudly when *no* ratio is computable — a gate
/// with nothing to compare is broken, not passing.
fn gate_ratio(
    current: &BTreeMap<String, Entry>,
    baseline: &BTreeMap<String, Entry>,
    max_regression_pct: f64,
) -> bool {
    let mut failed = false;
    let mut compared = 0usize;
    for (name, num, den, cap) in RATIOS {
        let cur_ratio = ratio_of(current, num, den);
        // An absolute cap gates the current run by itself — even on the
        // first run, before the baseline has these legs.
        if let (Some(cap), Some(cur)) = (cap, cur_ratio) {
            compared += 1;
            if cur > *cap {
                eprintln!("REGRESSION: ratio {name}: {cur:.4} exceeds absolute cap {cap:.2}");
                failed = true;
            } else {
                eprintln!("ok: ratio {name}: {cur:.4} within absolute cap {cap:.2}");
            }
        }
        let (Some(cur), Some(base)) = (cur_ratio, ratio_of(baseline, num, den)) else {
            eprintln!("note: ratio {name}: legs missing on one side; skipped");
            continue;
        };
        compared += 1;
        let change_pct = (cur - base) / base * 100.0;
        if change_pct > max_regression_pct {
            eprintln!(
                "REGRESSION: ratio {name}: {base:.4} -> {cur:.4} \
                 (+{change_pct:.1}% > +{max_regression_pct:.0}%)"
            );
            failed = true;
        } else {
            eprintln!("ok: ratio {name}: {base:.4} -> {cur:.4} ({change_pct:+.1}%)");
        }
    }
    if compared == 0 {
        eprintln!("REGRESSION GATE BROKEN: no ratio had both legs in both files");
        failed = true;
    }
    absolute_changes(current, baseline, max_regression_pct, false);
    if failed {
        eprintln!("bench gate FAILED (ratio, threshold +{max_regression_pct:.0}%)");
    } else {
        eprintln!("bench gate passed (ratio, threshold +{max_regression_pct:.0}%)");
    }
    !failed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_jsonl_and_keeps_last_duplicate() {
        let text = "\
{\"id\":\"g/a\",\"median_ns\":100,\"samples\":10}\n\
not json at all\n\
{\"id\":\"g/b\",\"median_ns\":200,\"samples\":5}\n\
{\"id\":\"g/a\",\"median_ns\":150,\"samples\":10}\n";
        let entries = parse_entries(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries["g/a"].median_ns, 150);
        assert_eq!(entries["g/b"].samples, 5);
    }

    #[test]
    fn report_round_trips_through_the_parser() {
        let mut benchmarks = BTreeMap::new();
        benchmarks.insert(
            "q/one".to_string(),
            Entry {
                median_ns: 123,
                samples: 7,
            },
        );
        benchmarks.insert(
            "q/two".to_string(),
            Entry {
                median_ns: 456,
                samples: 9,
            },
        );
        let mut counters = BTreeMap::new();
        counters.insert("rr_graphs_sampled", 42u64);
        let report = render_report(&benchmarks, &counters);
        assert!(report.contains("\"schema_version\": 1"));
        assert!(report.contains("\"rr_graphs_sampled\": 42"));
        let reparsed = parse_entries(&report).unwrap();
        assert_eq!(reparsed, benchmarks);
    }

    fn entry(median_ns: u64) -> Entry {
        Entry {
            median_ns,
            samples: 1,
        }
    }

    #[test]
    fn absolute_gate_fails_only_past_threshold() {
        let mut base = BTreeMap::new();
        base.insert("a".to_string(), entry(1000));
        base.insert("gone".to_string(), entry(50));
        let mut cur = BTreeMap::new();
        cur.insert("a".to_string(), entry(1250));
        cur.insert("new".to_string(), entry(9999));
        // +25% exactly is within the gate; ids on one side never fail it.
        assert!(gate_absolute(&cur, &base, 25.0));
        cur.insert("a".to_string(), entry(1251));
        assert!(!gate_absolute(&cur, &base, 25.0));
        // A loosened threshold admits the same medians.
        assert!(gate_absolute(&cur, &base, 30.0));
    }

    /// Entries holding the two legs of the first [`RATIOS`] pair at the
    /// given medians.
    fn ratio_legs(num_ns: u64, den_ns: u64) -> BTreeMap<String, Entry> {
        let (_, num, den, _) = RATIOS[0];
        let mut m = BTreeMap::new();
        m.insert(num.to_string(), entry(num_ns));
        m.insert(den.to_string(), entry(den_ns));
        m
    }

    #[test]
    fn ratio_gate_tracks_the_ratio_not_absolute_medians() {
        let base = ratio_legs(500, 1000);
        // Everything 3x slower (a different machine) but the same ratio:
        // the absolute gate would fail, the ratio gate must not.
        let slower = ratio_legs(1500, 3000);
        assert!(gate_ratio(&slower, &base, 25.0));
        assert!(!gate_absolute(&slower, &base, 25.0));
        // Numerator regressed relative to its in-run denominator: 0.5 ->
        // 0.75 is +50%, past the threshold even though the machine is
        // uniformly "fast".
        let regressed = ratio_legs(75, 100);
        assert!(!gate_ratio(&regressed, &base, 25.0));
        assert!(gate_ratio(&regressed, &base, 60.0));
    }

    /// Entries holding both legs of the capped `governance_overhead`
    /// ratio at the given medians.
    fn governance_legs(num_ns: u64, den_ns: u64) -> BTreeMap<String, Entry> {
        let (_, num, den, cap) = RATIOS
            .iter()
            .find(|(name, ..)| *name == "governance_overhead")
            .expect("governance_overhead ratio exists");
        assert_eq!(*cap, Some(1.05), "cap is the 5% acceptance ceiling");
        let mut m = BTreeMap::new();
        m.insert(num.to_string(), entry(num_ns));
        m.insert(den.to_string(), entry(den_ns));
        m
    }

    #[test]
    fn capped_ratio_gates_the_current_run_even_without_baseline_legs() {
        let empty_baseline = BTreeMap::new();
        // 4% overhead: inside the cap; the baseline has no legs to compare.
        assert!(gate_ratio(
            &governance_legs(1040, 1000),
            &empty_baseline,
            25.0
        ));
        // 10% overhead: past the absolute cap, so the gate fails outright.
        assert!(!gate_ratio(
            &governance_legs(1100, 1000),
            &empty_baseline,
            25.0
        ));
    }

    #[test]
    fn capped_ratio_fails_even_when_no_worse_than_baseline() {
        // Baseline and current agree at 10% overhead — 0% relative change,
        // but the acceptance ceiling is absolute.
        let legs = governance_legs(1100, 1000);
        assert!(!gate_ratio(&legs, &legs.clone(), 25.0));
        // At 3% overhead the same no-change comparison passes both checks.
        let fine = governance_legs(1030, 1000);
        assert!(gate_ratio(&fine, &fine.clone(), 25.0));
    }

    #[test]
    fn ratio_gate_fails_loudly_with_no_computable_ratio() {
        let mut base = BTreeMap::new();
        base.insert("only/here".to_string(), entry(100));
        let mut cur = BTreeMap::new();
        cur.insert("only/there".to_string(), entry(100));
        assert!(!gate_ratio(&cur, &base, 25.0));
    }

    #[test]
    fn report_embeds_gate_ratios() {
        let report = render_report(&ratio_legs(500, 1000), &BTreeMap::new());
        assert!(
            report.contains(&format!("\"{}\": 0.5000", RATIOS[0].0)),
            "{report}"
        );
    }

    #[test]
    fn string_fields_unescape() {
        let line = "{\"id\":\"g\\\\x/\\\"y\\\"\",\"median_ns\":1}";
        assert_eq!(field_str(line, "id").unwrap(), "g\\x/\"y\"");
    }
}
