//! One runner per table/figure of the paper's §V evaluation.

use cod_core::chain::Chain;
use cod_core::compressed::compressed_cod;
use cod_core::independent::independent_cod;
use cod_core::lore::select_recluster_community;
use cod_core::measures::{answer_quality, average_quality, AnswerQuality};
use cod_core::recluster::{build_hierarchy, global_recluster, local_recluster};
use cod_core::{CodConfig, ComposedChain, DendroChain, HimorIndex, SubgraphChain};
use cod_datasets::{by_name, gen_queries, Dataset};
use cod_graph::{measures as gm, AttrId, AttributedGraph, NodeId};
use cod_hierarchy::LcaIndex;
use cod_influence::InfluenceEstimate;
use cod_search::atc::AtcParams;
use rand::prelude::*;
use std::time::Duration;

use crate::multik::{
    baseline_multi_k, codl_minus_multi_k, codl_multi_k, codr_multi_k, codu_multi_k,
};
use crate::util::{print_table, secs, timed, CliOpts};

/// ACQ's structural parameter in all experiments (a 2-core keeps ACQ's
/// "large community" character from the paper's discussion).
pub const ACQ_K: u32 = 2;

fn load(name: &str, opts: &CliOpts) -> Dataset {
    if opts.scale > 0 {
        match name {
            "amazon" => return cod_datasets::amazon_like_scaled(opts.scale, opts.seed),
            "dblp" => return cod_datasets::dblp_like_scaled(opts.scale, opts.seed),
            "livejournal" => return cod_datasets::livejournal_like_scaled(opts.scale, opts.seed),
            _ => {}
        }
    }
    by_name(name, opts.seed).unwrap_or_else(|| panic!("unknown dataset {name}"))
}

fn cfg_from(opts: &CliOpts) -> CodConfig {
    CodConfig {
        theta: opts.theta,
        ..CodConfig::default()
    }
}

/// **Table I**: network statistics including the average attribute-aware
/// chain length `|H̄_ℓ(q)|` over a sampled query workload.
pub fn table1(opts: &CliOpts) {
    let names: Vec<String> = if opts.datasets.is_empty() {
        [
            "cora",
            "citeseer",
            "pubmed",
            "retweet",
            "amazon",
            "dblp",
            "livejournal",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    } else {
        opts.datasets.clone()
    };
    let mut rows = Vec::new();
    for name in &names {
        let data = load(name, opts);
        let g = &data.graph;
        let cfg = cfg_from(opts);
        let dendro = build_hierarchy(g.csr(), cfg.linkage);
        let lca = LcaIndex::new(&dendro);
        let mut rng = SmallRng::seed_from_u64(opts.seed);
        let queries = gen_queries(g, opts.queries, &mut rng);
        // |H_ℓ(q)|: length of LORE's composed chain.
        let mut total = 0usize;
        for &(q, a) in &queries {
            total += match select_recluster_community(g, &dendro, &lca, q, a) {
                None => dendro.root_path(q).len(),
                Some(choice) => {
                    let members = dendro.members_sorted(choice.vertex);
                    let (sub, sd) = local_recluster(g, &members, a, cfg.beta, cfg.linkage);
                    let slca = LcaIndex::new(&sd);
                    let lower = SubgraphChain::new(&sub, &sd, &slca, q, true)
                        .expect("query node inside C_ell");
                    ComposedChain::new(lower, &dendro, &lca, choice.vertex)
                        .expect("lower chain includes C_ell")
                        .len()
                }
            };
        }
        let avg_chain = total as f64 / queries.len().max(1) as f64;
        let (n, m, a) = data.stats();
        rows.push(vec![
            name.clone(),
            n.to_string(),
            m.to_string(),
            a.to_string(),
            format!("{avg_chain:.1}"),
        ]);
    }
    println!("\n== Table I: network statistics (simulated presets) ==");
    print_table(
        ["dataset", "|V|", "|E|", "|A|", "|H_l(q)| avg"]
            .map(String::from)
            .as_ref(),
        &rows,
    );
    println!(
        "(paper, full scale: cora 2485/5069/7/18.5; citeseer 2110/3668/6/18.9; pubmed \
         19717/44327/3/34.2; retweet 18470/48053/2/165.3; amazon 334863/925872/33/54.8; \
         dblp 317080/1049866/31/47.9; livejournal 3997962/34681189/400/271.2)"
    );
}

/// **Fig. 4**: average size of the 5 deepest communities containing a
/// query node, for CODU / CODR / CODL hierarchies.
pub fn fig4(opts: &CliOpts) {
    let names: Vec<String> = if opts.datasets.is_empty() {
        ["cora", "citeseer", "pubmed", "retweet"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        opts.datasets.clone()
    };
    let mut rows = Vec::new();
    for name in &names {
        let data = load(name, opts);
        let g = &data.graph;
        let cfg = cfg_from(opts);
        let dendro = build_hierarchy(g.csr(), cfg.linkage);
        let lca = LcaIndex::new(&dendro);
        let mut rng = SmallRng::seed_from_u64(opts.seed + 4);
        let queries = gen_queries(g, opts.queries, &mut rng);

        let avg5 = |sizes: &mut Vec<f64>| -> f64 {
            let s: f64 = sizes.iter().sum();
            s / sizes.len().max(1) as f64
        };

        let mut codu_sizes = Vec::new();
        let mut codr_sizes = Vec::new();
        let mut codl_sizes = Vec::new();
        for &(q, a) in &queries {
            // CODU: the 5 deepest on T.
            for v in dendro.root_path(q).iter().take(5) {
                codu_sizes.push(dendro.size(*v) as f64);
            }
            // CODR: the 5 deepest on the globally reclustered hierarchy.
            let gr = global_recluster(g, a, cfg.beta, cfg.linkage);
            for v in gr.root_path(q).iter().take(5) {
                codr_sizes.push(gr.size(*v) as f64);
            }
            // CODL: the 5 deepest on the composed (locally reclustered)
            // chain.
            match select_recluster_community(g, &dendro, &lca, q, a) {
                None => {
                    for v in dendro.root_path(q).iter().take(5) {
                        codl_sizes.push(dendro.size(*v) as f64);
                    }
                }
                Some(choice) => {
                    let members = dendro.members_sorted(choice.vertex);
                    let (sub, sd) = local_recluster(g, &members, a, cfg.beta, cfg.linkage);
                    let slca = LcaIndex::new(&sd);
                    let lower = SubgraphChain::new(&sub, &sd, &slca, q, true)
                        .expect("query node inside C_ell");
                    let chain = ComposedChain::new(lower, &dendro, &lca, choice.vertex)
                        .expect("lower chain includes C_ell");
                    for h in 0..chain.len().min(5) {
                        codl_sizes.push(chain.size(h) as f64);
                    }
                }
            }
        }
        rows.push(vec![
            name.clone(),
            format!("{:.1}", avg5(&mut codu_sizes)),
            format!("{:.1}", avg5(&mut codr_sizes)),
            format!("{:.1}", avg5(&mut codl_sizes)),
        ]);
    }
    println!("\n== Fig. 4: average size of the 5-deepest communities containing q ==");
    print_table(
        ["dataset", "CODU", "CODR", "CODL"]
            .map(String::from)
            .as_ref(),
        &rows,
    );
    println!("(paper shape: CODU and CODR much larger than CODL, worst on PubMed/Retweet)");
}

/// Per-method accumulators for Fig. 7.
struct Fig7Acc {
    quality: Vec<Vec<AnswerQuality>>,
    influence: Vec<Vec<f64>>,
}

impl Fig7Acc {
    fn new(k_max: usize) -> Self {
        Self {
            quality: vec![Vec::new(); k_max],
            influence: vec![Vec::new(); k_max],
        }
    }

    fn push(
        &mut self,
        g: &AttributedGraph,
        attr: AttrId,
        global_sigma: f64,
        mk: &crate::multik::MultiK,
    ) {
        for (i, ans) in mk.per_k.iter().enumerate() {
            let answer = ans.as_ref().map(|members| cod_core::CodAnswer {
                members: members.clone(),
                rank: 0,
                source: cod_core::pipeline::AnswerSource::Compressed,
                uncertain: false,
                cache: None,
                degraded: None,
                trace: None,
            });
            self.quality[i].push(answer_quality(g, attr, answer.as_ref()));
            if ans.is_some() {
                self.influence[i].push(global_sigma);
            }
        }
    }
}

/// **Fig. 7**: effectiveness of all six methods across `k = 1..=5`
/// (average size, topology density, attribute density, query influence).
pub fn fig7(opts: &CliOpts) {
    let names: Vec<String> = if opts.datasets.is_empty() {
        ["cora", "citeseer", "pubmed", "retweet", "amazon", "dblp"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        opts.datasets.clone()
    };
    let k_max = 5usize;
    let methods = ["ACQ", "ATC", "CAC", "CODU", "CODR", "CODL"];

    for name in &names {
        let data = load(name, opts);
        let g = &data.graph;
        let cfg = cfg_from(opts);
        let ((dendro, lca, index), setup_t) = timed(|| {
            let dendro = build_hierarchy(g.csr(), cfg.linkage);
            let lca = LcaIndex::new(&dendro);
            let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0xbeef);
            let index = HimorIndex::build(g.csr(), cfg.model, &dendro, &lca, cfg.theta, &mut rng);
            (dendro, lca, index)
        });
        let mut rng = SmallRng::seed_from_u64(opts.seed + 7);
        let queries = gen_queries(g, opts.queries, &mut rng);
        // One global influence estimate serves every I(q) readout.
        let global_est =
            InfluenceEstimate::on_graph(g.csr(), cfg.model, cfg.theta * g.num_nodes(), &mut rng);

        let mut accs: Vec<Fig7Acc> = (0..methods.len()).map(|_| Fig7Acc::new(k_max)).collect();
        for &(q, a) in &queries {
            let sigma = global_est.sigma(q);
            let acq = baseline_multi_k(
                g,
                cfg,
                cod_search::acq_query(g, q, a, ACQ_K),
                q,
                k_max,
                &mut rng,
            );
            let atc = baseline_multi_k(
                g,
                cfg,
                cod_search::atc_query(g, q, a, AtcParams::default()),
                q,
                k_max,
                &mut rng,
            );
            let cac = baseline_multi_k(g, cfg, cod_search::cac_query(g, q, a), q, k_max, &mut rng);
            let codu = codu_multi_k(g, cfg, &dendro, &lca, q, k_max, &mut rng);
            let codr = codr_multi_k(g, cfg, q, a, k_max, &mut rng);
            let codl = codl_multi_k(g, cfg, &dendro, &lca, &index, q, a, k_max, &mut rng);
            for (acc, mk) in accs
                .iter_mut()
                .zip([acq, atc, cac, codu, codr, codl].iter())
            {
                acc.push(g, a, sigma, mk);
            }
        }

        println!(
            "\n== Fig. 7 [{name}]: {} queries, setup {} ==",
            queries.len(),
            secs(setup_t)
        );
        let header: Vec<String> = std::iter::once("method".to_string())
            .chain((1..=k_max).map(|k| format!("k={k}")))
            .collect();
        for (title, pick) in [
            ("average size |C*|", 0usize),
            ("topology density rho(C*)", 1),
            ("attribute density phi(C*)", 2),
            ("query influence I(q) (answered queries)", 3),
        ] {
            let mut rows = Vec::new();
            for (mi, m) in methods.iter().enumerate() {
                let mut row = vec![m.to_string()];
                for ki in 0..k_max {
                    let cell = match pick {
                        0 => format!("{:.1}", average_quality(&accs[mi].quality[ki]).size),
                        1 => format!(
                            "{:.3}",
                            average_quality(&accs[mi].quality[ki]).topology_density
                        ),
                        2 => format!(
                            "{:.3}",
                            average_quality(&accs[mi].quality[ki]).attribute_density
                        ),
                        _ => {
                            let v = &accs[mi].influence[ki];
                            if v.is_empty() {
                                "-".to_string()
                            } else {
                                format!("{:.1}", v.iter().sum::<f64>() / v.len() as f64)
                            }
                        }
                    };
                    row.push(cell);
                }
                rows.push(row);
            }
            println!("\n-- {title} --");
            print_table(&header, &rows);
        }
    }
    println!(
        "\n(paper shape: COD methods find far larger C* than ACQ/ATC/CAC; CODL densest; \
         sizes grow with k; CODL serves queries with the smallest I(q))"
    );
}

/// **Fig. 8**: Compressed vs Independent (both CODR variants) across θ.
pub fn fig8(opts: &CliOpts) {
    let names: Vec<String> = if opts.datasets.is_empty() {
        vec!["cora".into(), "citeseer".into()]
    } else {
        opts.datasets.clone()
    };
    let thetas = [10usize, 20, 40, 80];
    for name in &names {
        let data = load(name, opts);
        let g = &data.graph;
        let base = cfg_from(opts);
        let mut rng = SmallRng::seed_from_u64(opts.seed + 8);
        let queries = gen_queries(g, opts.queries, &mut rng);
        let mut rows = Vec::new();
        for &theta in &thetas {
            let cfg = CodConfig { theta, ..base };
            let mut stats = [Fig8Stat::default(), Fig8Stat::default()];
            for &(q, a) in &queries {
                // Both variants share CODR's attribute-aware hierarchy.
                let dendro = global_recluster(g, a, cfg.beta, cfg.linkage);
                let lca = LcaIndex::new(&dendro);
                let chain =
                    DendroChain::new(&dendro, &lca, q).expect("query node within hierarchy");
                if chain.is_empty() {
                    continue;
                }
                let (comp, t_comp) = timed(|| {
                    compressed_cod(g.csr(), cfg.model, &chain, q, cfg.k, theta, &mut rng)
                        .expect("valid query")
                });
                let (ind, t_ind) = timed(|| {
                    independent_cod(g.csr(), cfg.model, &chain, q, cfg.k, theta, &mut rng)
                });
                let (s0, s1) = stats.split_at_mut(1);
                for (stat, out, t) in [(&mut s0[0], &comp, t_comp), (&mut s1[0], &ind, t_ind)] {
                    stat.time += t;
                    if let Some(h) = out.best_level {
                        let members = chain.members(h);
                        stat.sizes.push(members.len() as f64);
                        let truth = InfluenceEstimate::on_community(
                            g.csr(),
                            cfg.model,
                            &members,
                            1000 * members.len().min(400),
                            &mut rng,
                        );
                        stat.found += 1;
                        if truth.is_top_k(q, &members, cfg.k) {
                            stat.correct += 1;
                        }
                    }
                }
            }
            for (mi, m) in ["Compressed", "Independent"].iter().enumerate() {
                let s = &stats[mi];
                rows.push(vec![
                    theta.to_string(),
                    m.to_string(),
                    format!("{:.2}", s.precision()),
                    format!("{:.1}", s.avg_size()),
                    format!("{:.0}", s.min_size()),
                    format!("{:.0}", s.max_size()),
                    secs(s.time / queries.len().max(1) as u32),
                ]);
            }
        }
        println!(
            "\n== Fig. 8 [{name}]: Compressed vs Independent ({} queries) ==",
            queries.len()
        );
        print_table(
            [
                "theta",
                "method",
                "top-k precision",
                "avg |C*|",
                "min",
                "max",
                "time/query",
            ]
            .map(String::from)
            .as_ref(),
            &rows,
        );
    }
    println!(
        "\n(paper shape: Compressed has higher precision, slightly smaller C*, and is \
         ~3-10x faster per query at equal theta)"
    );
}

#[derive(Default)]
struct Fig8Stat {
    time: Duration,
    sizes: Vec<f64>,
    found: usize,
    correct: usize,
}

impl Fig8Stat {
    fn precision(&self) -> f64 {
        if self.found == 0 {
            0.0
        } else {
            self.correct as f64 / self.found as f64
        }
    }
    fn avg_size(&self) -> f64 {
        if self.sizes.is_empty() {
            0.0
        } else {
            self.sizes.iter().sum::<f64>() / self.sizes.len() as f64
        }
    }
    fn min_size(&self) -> f64 {
        self.sizes
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(1e18)
    }
    fn max_size(&self) -> f64 {
        self.sizes.iter().copied().fold(0.0, f64::max)
    }
}

/// **Fig. 9**: per-query runtime of CODR vs CODL⁻ vs CODL (the 25×
/// speed-up plot), plus the LiveJournal scalability column.
pub fn fig9(opts: &CliOpts) {
    let names: Vec<String> = if opts.datasets.is_empty() {
        [
            "cora",
            "citeseer",
            "pubmed",
            "retweet",
            "amazon",
            "dblp",
            "livejournal",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    } else {
        opts.datasets.clone()
    };
    let mut rows = Vec::new();
    for name in &names {
        let data = load(name, opts);
        let g = &data.graph;
        let cfg = cfg_from(opts);
        // Scalability datasets get fewer queries to keep CODR affordable.
        let nq = if g.num_nodes() > 40_000 {
            opts.queries.min(3)
        } else {
            opts.queries
        };
        let mut rng = SmallRng::seed_from_u64(opts.seed + 9);
        let queries = gen_queries(g, nq, &mut rng);

        let (prep, t_prep) = timed(|| {
            let dendro = build_hierarchy(g.csr(), cfg.linkage);
            let lca = LcaIndex::new(&dendro);
            let mut irng = SmallRng::seed_from_u64(opts.seed ^ 0xf00d);
            let index = HimorIndex::build(g.csr(), cfg.model, &dendro, &lca, cfg.theta, &mut irng);
            (dendro, lca, index)
        });
        let (dendro, lca, index) = &prep;

        let mut t_codr = Duration::ZERO;
        let mut t_codl_minus = Duration::ZERO;
        let mut t_codl = Duration::ZERO;
        for &(q, a) in &queries {
            let (_, t) = timed(|| codr_multi_k(g, cfg, q, a, cfg.k, &mut rng));
            t_codr += t;
            let (_, t) = timed(|| codl_minus_multi_k(g, cfg, dendro, lca, q, a, cfg.k, &mut rng));
            t_codl_minus += t;
            let (_, t) = timed(|| codl_multi_k(g, cfg, dendro, lca, index, q, a, cfg.k, &mut rng));
            t_codl += t;
        }
        let per = |d: Duration| d / queries.len().max(1) as u32;
        let speedup = t_codr.as_secs_f64() / t_codl.as_secs_f64().max(1e-9);
        rows.push(vec![
            name.clone(),
            queries.len().to_string(),
            secs(per(t_codr)),
            secs(per(t_codl_minus)),
            secs(per(t_codl)),
            format!("{speedup:.1}x"),
            secs(t_prep),
        ]);
    }
    println!("\n== Fig. 9: query runtime (CODR vs CODL- vs CODL) ==");
    print_table(
        [
            "dataset",
            "queries",
            "CODR/q",
            "CODL-/q",
            "CODL/q",
            "CODR/CODL",
            "setup (T+HIMOR)",
        ]
        .map(String::from)
        .as_ref(),
        &rows,
    );
    println!("(paper shape: CODL fastest; ~25x over CODR on DBLP; CODL- in between)");
}

/// **Table II**: HIMOR construction time and index/input memory.
pub fn table2(opts: &CliOpts) {
    let names: Vec<String> = if opts.datasets.is_empty() {
        [
            "cora",
            "citeseer",
            "pubmed",
            "retweet",
            "amazon",
            "dblp",
            "livejournal",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    } else {
        opts.datasets.clone()
    };
    let mut rows = Vec::new();
    for name in &names {
        let data = load(name, opts);
        let g = &data.graph;
        let cfg = cfg_from(opts);
        let dendro = build_hierarchy(g.csr(), cfg.linkage);
        let lca = LcaIndex::new(&dendro);
        let mut rng = SmallRng::seed_from_u64(opts.seed + 10);
        let (index, t_build) =
            timed(|| HimorIndex::build(g.csr(), cfg.model, &dendro, &lca, cfg.theta, &mut rng));
        // Input size: CSR + attributes + hierarchy, in bytes.
        let input_bytes = g.csr().num_half_edges() * 4
            + (g.num_nodes() + 1) * 8
            + g.attrs().total_pairs() * 4
            + dendro.num_vertices() * 24;
        rows.push(vec![
            name.clone(),
            format!("{:.2}", t_build.as_secs_f64()),
            format!("{:.2}", index.memory_bytes() as f64 / 1048576.0),
            format!("{:.2}", input_bytes as f64 / 1048576.0),
            format!("{:.1}", dendro.avg_chain_len()),
        ]);
    }
    println!("\n== Table II: HIMOR construction time and memory ==");
    print_table(
        [
            "dataset",
            "build time (s)",
            "index (MB)",
            "input (MB)",
            "avg depth",
        ]
        .map(String::from)
        .as_ref(),
        &rows,
    );
    println!(
        "(paper shape: index a small constant factor of the input; skewed hierarchies \
         (retweet) cost disproportionally more build time than same-size pubmed)"
    );
}

/// **Ablation (DESIGN.md §4)**: agglomerative NN-chain vs divisive
/// bisection hierarchies — balancedness, HIMOR cost, and COD answer
/// quality under each (the paper claims COD works over any HGC method).
pub fn ablation_hgc(opts: &CliOpts) {
    let names: Vec<String> = if opts.datasets.is_empty() {
        vec!["cora".into(), "retweet".into()]
    } else {
        opts.datasets.clone()
    };
    let mut rows = Vec::new();
    for name in &names {
        let data = load(name, opts);
        let g = &data.graph;
        let cfg = cfg_from(opts);
        for (method, dendro) in [
            ("nnchain", build_hierarchy(g.csr(), cfg.linkage)),
            ("bisect", cod_hierarchy::bisect(g.csr())),
        ] {
            let lca = LcaIndex::new(&dendro);
            let mut rng = SmallRng::seed_from_u64(opts.seed + 12);
            let (index, t_build) =
                timed(|| HimorIndex::build(g.csr(), cfg.model, &dendro, &lca, cfg.theta, &mut rng));
            let queries = gen_queries(g, opts.queries, &mut rng);
            let mut qualities = Vec::new();
            for &(q, a) in &queries {
                let chain =
                    DendroChain::new(&dendro, &lca, q).expect("query node within hierarchy");
                let out = if chain.is_empty() {
                    None
                } else {
                    compressed_cod(g.csr(), cfg.model, &chain, q, cfg.k, cfg.theta, &mut rng)
                        .expect("valid query")
                        .best_level
                };
                let ans = out.map(|h| cod_core::CodAnswer {
                    members: chain.members(h),
                    rank: 0,
                    source: cod_core::pipeline::AnswerSource::Compressed,
                    uncertain: false,
                    cache: None,
                    degraded: None,
                    trace: None,
                });
                qualities.push(answer_quality(g, a, ans.as_ref()));
            }
            let avg = average_quality(&qualities);
            rows.push(vec![
                name.clone(),
                method.to_string(),
                format!("{:.1}", dendro.avg_chain_len()),
                format!("{:.2}", t_build.as_secs_f64()),
                format!("{:.2}", index.memory_bytes() as f64 / 1048576.0),
                format!("{:.1}", avg.size),
                format!("{:.3}", avg.topology_density),
            ]);
        }
    }
    println!("\n== Ablation: hierarchy construction method (CODU evaluation) ==");
    print_table(
        [
            "dataset",
            "hgc",
            "avg depth",
            "himor build (s)",
            "index (MB)",
            "avg |C*|",
            "rho",
        ]
        .map(String::from)
        .as_ref(),
        &rows,
    );
    println!(
        "(expected: bisection is far more balanced -> cheaper index, but its communities \
         are cut-driven rather than density-driven, typically lowering rho)"
    );
}

/// **Ablation (DESIGN.md §4)**: the `g_ℓ` weight transform — query boost
/// strength β and alternative weighting schemes (the paper treats the
/// transform as orthogonal; this quantifies how much it matters).
pub fn ablation_weights(opts: &CliOpts) {
    use cod_core::recluster::{attribute_weights_with, WeightScheme};
    use cod_hierarchy::Dendrogram;
    let name = opts
        .datasets
        .first()
        .cloned()
        .unwrap_or_else(|| "cora".to_string());
    let data = load(&name, opts);
    let g = &data.graph;
    let cfg = cfg_from(opts);
    let mut rng = SmallRng::seed_from_u64(opts.seed + 13);
    let queries = gen_queries(g, opts.queries, &mut rng);
    let schemes: Vec<(String, WeightScheme)> = vec![
        ("boost b=0".into(), WeightScheme::QueryBoost(0.0)),
        ("boost b=1".into(), WeightScheme::QueryBoost(1.0)),
        ("boost b=4".into(), WeightScheme::QueryBoost(4.0)),
        ("jaccard b=1".into(), WeightScheme::JaccardBlend(1.0)),
        (
            "degree-norm b=1".into(),
            WeightScheme::DegreeNormalized(1.0),
        ),
    ];
    let mut rows = Vec::new();
    for (label, scheme) in &schemes {
        let mut qualities = Vec::new();
        for &(q, a) in &queries {
            // CODR-style: recluster globally under the scheme, evaluate.
            let w = attribute_weights_with(g, a, *scheme);
            let dendro = Dendrogram::from_merges(
                g.num_nodes(),
                &cod_hierarchy::cluster(g.csr(), &w, cfg.linkage),
            );
            let lca = LcaIndex::new(&dendro);
            let chain = DendroChain::new(&dendro, &lca, q).expect("query node within hierarchy");
            let best = if chain.is_empty() {
                None
            } else {
                compressed_cod(g.csr(), cfg.model, &chain, q, cfg.k, cfg.theta, &mut rng)
                    .expect("valid query")
                    .best_level
            };
            let ans = best.map(|h| cod_core::CodAnswer {
                members: chain.members(h),
                rank: 0,
                source: cod_core::pipeline::AnswerSource::Compressed,
                uncertain: false,
                cache: None,
                degraded: None,
                trace: None,
            });
            qualities.push(answer_quality(g, a, ans.as_ref()));
        }
        let avg = average_quality(&qualities);
        rows.push(vec![
            label.clone(),
            format!("{:.1}", avg.size),
            format!("{:.3}", avg.topology_density),
            format!("{:.3}", avg.attribute_density),
        ]);
    }
    println!(
        "\n== Ablation: g_l weight transform [{name}] ({} queries) ==",
        queries.len()
    );
    print_table(
        ["scheme", "avg |C*|", "rho", "phi"]
            .map(String::from)
            .as_ref(),
        &rows,
    );
    println!("(expected: larger beta raises attribute density phi; b=0 degenerates to CODU)");
}

/// **§V-E case study**: CODL vs ATC/ACQ/CAC communities for two query
/// nodes at `k = 1`, with sizes, in-community ranks and conductance.
pub fn case_study(opts: &CliOpts) {
    let data = load("cora", opts);
    let g = &data.graph;
    let cfg = CodConfig {
        k: 1,
        theta: opts.theta.max(20),
        ..CodConfig::default()
    };
    let dendro = build_hierarchy(g.csr(), cfg.linkage);
    let lca = LcaIndex::new(&dendro);
    let mut rng = SmallRng::seed_from_u64(opts.seed + 11);
    let index = HimorIndex::build(g.csr(), cfg.model, &dendro, &lca, cfg.theta, &mut rng);
    let codl = cod_core::Codl::from_parts(g, cfg, dendro, lca, index);

    let queries = gen_queries(g, 400, &mut rng);
    let mut shown = 0;
    for &(q, a) in &queries {
        if shown >= 2 {
            break;
        }
        let Some(cod_ans) = codl.query(q, a, &mut rng).expect("valid query") else {
            continue;
        };
        let atc = cod_search::atc_query(g, q, a, AtcParams::default());
        let Some(atc_c) = atc else { continue };
        shown += 1;
        println!("\n== case study query node {q} (attribute {a}, k = 1) ==");
        let mut rows = Vec::new();
        let communities: Vec<(&str, Vec<NodeId>)> =
            vec![("CODL", cod_ans.members.clone()), ("ATC", atc_c)]
                .into_iter()
                .chain(cod_search::acq_query(g, q, a, ACQ_K).map(|c| ("ACQ", c)))
                .chain(cod_search::cac_query(g, q, a).map(|c| ("CAC", c)))
                .collect();
        for (m, c) in &communities {
            let est =
                InfluenceEstimate::on_community(g.csr(), cfg.model, c, 200 * c.len(), &mut rng);
            rows.push(vec![
                m.to_string(),
                c.len().to_string(),
                est.rank(q, c).to_string(),
                format!("{:.3}", gm::conductance(g.csr(), c)),
                format!("{:.3}", gm::topology_density(g.csr(), c)),
            ]);
        }
        print_table(
            ["method", "|C|", "rank(q)", "conductance", "rho"]
                .map(String::from)
                .as_ref(),
            &rows,
        );
    }
    if shown == 0 {
        println!("no query with both a CODL and an ATC community found — rerun with another seed");
    }
    println!(
        "\n(paper shape: CODL's community is larger, has lower conductance, and ranks \
         the query node at least as high as ATC/ACQ/CAC do)"
    );
}
