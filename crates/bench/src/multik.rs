//! Multi-k query evaluation.
//!
//! Fig. 7 sweeps `k = 1..=5` for every method; re-running each method per
//! `k` would quintuple the cost for nothing, because compressed COD
//! evaluation already produces the per-level rank of the query node
//! (`CodOutcome::ranks`), whose entries are exact whenever `≤ k_max`. This
//! module derives all per-k characteristic communities from one evaluation
//! (and one estimate per baseline community).

use cod_core::chain::{Chain, ComposedChain, DendroChain, SubgraphChain};
use cod_core::compressed::{compressed_cod, CodOutcome};
use cod_core::lore::select_recluster_community;
use cod_core::recluster::{global_recluster, local_recluster};
use cod_core::{CodConfig, HimorIndex};
use cod_graph::{AttrId, AttributedGraph, NodeId};
use cod_hierarchy::{Dendrogram, LcaIndex};
use cod_influence::InfluenceEstimate;
use rand::prelude::*;

/// Characteristic communities of one query for each `k = 1..=k_max`.
/// `per_k[k-1]` is `None` when no community qualifies at that `k`.
#[derive(Clone, Debug, Default)]
pub struct MultiK {
    /// Answer members per k (sorted), shared when the level coincides.
    pub per_k: Vec<Option<Vec<NodeId>>>,
}

impl MultiK {
    fn from_outcome(chain: &impl Chain, out: &CodOutcome, k_max: usize) -> Self {
        let mut per_k = Vec::with_capacity(k_max);
        for k in 1..=k_max {
            let best = (0..chain.len()).rfind(|&h| out.ranks[h] <= k);
            per_k.push(best.map(|h| chain.members(h)));
        }
        Self { per_k }
    }
}

/// CODU for all `k` at once.
pub fn codu_multi_k<R: Rng>(
    g: &AttributedGraph,
    cfg: CodConfig,
    dendro: &Dendrogram,
    lca: &LcaIndex,
    q: NodeId,
    k_max: usize,
    rng: &mut R,
) -> MultiK {
    let chain = DendroChain::new(dendro, lca, q).expect("query node within hierarchy");
    if chain.is_empty() {
        return MultiK {
            per_k: vec![None; k_max],
        };
    }
    let out =
        compressed_cod(g.csr(), cfg.model, &chain, q, k_max, cfg.theta, rng).expect("valid query");
    MultiK::from_outcome(&chain, &out, k_max)
}

/// CODR for all `k` at once (one global reclustering per query).
pub fn codr_multi_k<R: Rng>(
    g: &AttributedGraph,
    cfg: CodConfig,
    q: NodeId,
    attr: AttrId,
    k_max: usize,
    rng: &mut R,
) -> MultiK {
    let dendro = global_recluster(g, attr, cfg.beta, cfg.linkage);
    let lca = LcaIndex::new(&dendro);
    let chain = DendroChain::new(&dendro, &lca, q).expect("query node within hierarchy");
    if chain.is_empty() {
        return MultiK {
            per_k: vec![None; k_max],
        };
    }
    let out =
        compressed_cod(g.csr(), cfg.model, &chain, q, k_max, cfg.theta, rng).expect("valid query");
    MultiK::from_outcome(&chain, &out, k_max)
}

/// CODL⁻ for all `k` at once (LORE chain, no index).
#[allow(clippy::too_many_arguments)] // mirrors the paper's query signature plus shared state
pub fn codl_minus_multi_k<R: Rng>(
    g: &AttributedGraph,
    cfg: CodConfig,
    dendro: &Dendrogram,
    lca: &LcaIndex,
    q: NodeId,
    attr: AttrId,
    k_max: usize,
    rng: &mut R,
) -> MultiK {
    match select_recluster_community(g, dendro, lca, q, attr) {
        None => codu_multi_k(g, cfg, dendro, lca, q, k_max, rng),
        Some(choice) => {
            let members = dendro.members_sorted(choice.vertex);
            let (sub, sd) = local_recluster(g, &members, attr, cfg.beta, cfg.linkage);
            let slca = LcaIndex::new(&sd);
            let lower =
                SubgraphChain::new(&sub, &sd, &slca, q, true).expect("query node inside C_ell");
            let chain = ComposedChain::new(lower, dendro, lca, choice.vertex)
                .expect("lower chain includes C_ell");
            if chain.is_empty() {
                return MultiK {
                    per_k: vec![None; k_max],
                };
            }
            let out = compressed_cod(g.csr(), cfg.model, &chain, q, k_max, cfg.theta, rng)
                .expect("valid query");
            MultiK::from_outcome(&chain, &out, k_max)
        }
    }
}

/// CODL for all `k` at once: per-k index scan plus (at most) one
/// compressed fallback evaluation inside the reclustered `C_ℓ`.
#[allow(clippy::too_many_arguments)] // mirrors the paper's query signature plus shared state
pub fn codl_multi_k<R: Rng>(
    g: &AttributedGraph,
    cfg: CodConfig,
    dendro: &Dendrogram,
    lca: &LcaIndex,
    index: &HimorIndex,
    q: NodeId,
    attr: AttrId,
    k_max: usize,
    rng: &mut R,
) -> MultiK {
    let choice = select_recluster_community(g, dendro, lca, q, attr);
    let floor = choice.map(|c| c.vertex);
    // Build the fallback (reclustered) outcome lazily, only when some k
    // misses the index.
    let mut fallback: Option<(SubgraphOwned, CodOutcome)> = None;
    let mut per_k = Vec::with_capacity(k_max);
    for k in 1..=k_max {
        if let Some(c) = index.largest_top_k(dendro, q, floor, k) {
            per_k.push(Some(dendro.members_sorted(c)));
            continue;
        }
        let Some(choice) = choice else {
            per_k.push(None);
            continue;
        };
        if fallback.is_none() {
            let members = dendro.members_sorted(choice.vertex);
            let (sub, sd) = local_recluster(g, &members, attr, cfg.beta, cfg.linkage);
            let slca = LcaIndex::new(&sd);
            let out = {
                let chain = SubgraphChain::new(&sub, &sd, &slca, q, false)
                    .expect("query node inside C_ell");
                if chain.is_empty() {
                    CodOutcome {
                        best_level: None,
                        ranks: Vec::new(),
                        sigma_q: Vec::new(),
                        uncertain: Vec::new(),
                        theta: 0,
                        truncated: false,
                        cancelled: false,
                    }
                } else {
                    compressed_cod(g.csr(), cfg.model, &chain, q, k_max, cfg.theta, rng)
                        .expect("valid query")
                }
            };
            fallback = Some((SubgraphOwned { sub, sd, slca }, out));
        }
        let (owned, out) = fallback.as_ref().unwrap();
        let chain = SubgraphChain::new(&owned.sub, &owned.sd, &owned.slca, q, false)
            .expect("query node inside C_ell");
        let best = (0..chain.len()).rfind(|&h| out.ranks[h] <= k);
        per_k.push(best.map(|h| chain.members(h)));
    }
    MultiK { per_k }
}

/// Owned reclustering artifacts kept alive for repeated chain views.
struct SubgraphOwned {
    sub: cod_graph::subgraph::Subgraph,
    sd: Dendrogram,
    slca: LcaIndex,
}

/// A community-search baseline answer turned into per-k characteristic
/// communities: the community counts for `k` iff the query node's
/// estimated influence rank within it is `≤ k` (paper §V-A).
pub fn baseline_multi_k<R: Rng>(
    g: &AttributedGraph,
    cfg: CodConfig,
    community: Option<Vec<NodeId>>,
    q: NodeId,
    k_max: usize,
    rng: &mut R,
) -> MultiK {
    let mut per_k = vec![None; k_max];
    if let Some(members) = community {
        if !members.is_empty() {
            let est = InfluenceEstimate::on_community(
                g.csr(),
                cfg.model,
                &members,
                cfg.theta.max(1) * members.len(),
                rng,
            );
            let rank = est.rank(q, &members);
            for (i, slot) in per_k.iter_mut().enumerate() {
                if rank <= i + 1 {
                    *slot = Some(members.clone());
                }
            }
        }
    }
    MultiK { per_k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_core::recluster::build_hierarchy;

    #[test]
    fn per_k_answers_are_nested_in_size() {
        let data = cod_datasets::amazon_like_scaled(500, 5);
        let g = &data.graph;
        let cfg = CodConfig {
            theta: 40,
            ..CodConfig::default()
        };
        let dendro = build_hierarchy(g.csr(), cfg.linkage);
        let lca = LcaIndex::new(&dendro);
        let mut rng = SmallRng::seed_from_u64(6);
        let queries = cod_datasets::gen_queries(g, 6, &mut rng);
        for &(q, _) in &queries {
            let mk = codu_multi_k(g, cfg, &dendro, &lca, q, 5, &mut rng);
            assert_eq!(mk.per_k.len(), 5);
            let mut prev = 0usize;
            for m in mk.per_k.iter().flatten() {
                assert!(m.len() >= prev, "sizes weakly grow with k");
                prev = m.len();
                assert!(m.binary_search(&q).is_ok());
            }
        }
    }

    #[test]
    fn baseline_multi_k_thresholds_by_rank() {
        let data = cod_datasets::paper_example();
        let g = &data.graph;
        let cfg = CodConfig {
            theta: 400,
            ..CodConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(7);
        // Node 6 dominates {6,7,8,9} (it is their hub).
        let mk = baseline_multi_k(g, cfg, Some(vec![6, 7, 8, 9]), 6, 3, &mut rng);
        assert!(mk.per_k[0].is_some(), "hub is rank 1 in its star");
        // Node 9 is a leaf: not rank 1.
        let mk9 = baseline_multi_k(g, cfg, Some(vec![6, 7, 8, 9]), 9, 3, &mut rng);
        assert!(mk9.per_k[0].is_none());
        // And missing communities yield all-None.
        let none = baseline_multi_k(g, cfg, None, 0, 3, &mut rng);
        assert!(none.per_k.iter().all(Option::is_none));
    }
}
