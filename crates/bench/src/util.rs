//! Timing and formatting helpers for the experiment harness.

use std::time::{Duration, Instant};

/// Runs `f`, returning its result and wall-clock duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Seconds as a compact human string.
pub fn secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 0.001 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Prints a markdown-style table: a header row plus data rows.
pub fn print_table(header: &[String], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut width = vec![0usize; cols];
    for (i, h) in header.iter().enumerate() {
        width[i] = h.chars().count();
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            width[i] = width[i].max(cell.chars().count());
        }
    }
    let fmt_row = |cells: &[String]| {
        let body: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = width[i]))
            .collect();
        format!("| {} |", body.join(" | "))
    };
    println!("{}", fmt_row(header));
    let sep: Vec<String> = width.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", fmt_row(&sep));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Parses `--flag value` style options from `std::env::args`, with
/// defaults. Recognized: `--queries N`, `--seed N`, `--theta N`,
/// `--datasets a,b,c`, `--scale N`.
#[derive(Clone, Debug)]
pub struct CliOpts {
    /// Queries per dataset.
    pub queries: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// RR graphs per node.
    pub theta: usize,
    /// Dataset names (empty = experiment default).
    pub datasets: Vec<String>,
    /// Node-count override for scaled presets (0 = preset default).
    pub scale: usize,
}

impl CliOpts {
    /// Parses CLI arguments with the given defaults.
    pub fn parse(default_queries: usize) -> Self {
        let mut opts = Self {
            queries: default_queries,
            seed: 42,
            theta: 10,
            datasets: Vec::new(),
            scale: 0,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < args.len() {
            match args[i].as_str() {
                "--queries" => opts.queries = args[i + 1].parse().expect("--queries N"),
                "--seed" => opts.seed = args[i + 1].parse().expect("--seed N"),
                "--theta" => opts.theta = args[i + 1].parse().expect("--theta N"),
                "--scale" => opts.scale = args[i + 1].parse().expect("--scale N"),
                "--datasets" => opts.datasets = args[i + 1].split(',').map(str::to_owned).collect(),
                other => panic!("unknown option {other}"),
            }
            i += 2;
        }
        opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_formats_ranges() {
        assert!(secs(Duration::from_micros(50)).ends_with("µs"));
        assert!(secs(Duration::from_millis(5)).ends_with("ms"));
        assert!(secs(Duration::from_secs(2)).ends_with('s'));
    }

    #[test]
    fn timed_returns_result() {
        let (x, d) = timed(|| 21 * 2);
        assert_eq!(x, 42);
        assert!(d.as_nanos() > 0);
    }
}
