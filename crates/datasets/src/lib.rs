//! Dataset presets and query workloads for the COD experiment suite.
//!
//! The paper evaluates on six real networks plus LiveJournal (Table I).
//! Those datasets are not redistributable here, so each preset *simulates*
//! its counterpart with matched size, density, attribute count and — most
//! importantly — the structural property the paper exploits it for (see
//! `DESIGN.md` §5):
//!
//! | preset | emulates | generator |
//! |---|---|---|
//! | [`cora_like`] | Cora (2,485 / 5,069 / 7 attrs) | planted partition + noisy class labels |
//! | [`citeseer_like`] | CiteSeer (2,110 / 3,668 / 6) | planted partition + noisy class labels |
//! | [`pubmed_like`] | PubMed (19,717 / 44,327 / 3) | planted partition + noisy class labels |
//! | [`retweet_like`] | Retweet (18,470 / 48,053 / 2) | Barabási–Albert (hub-skewed) + 2 labels |
//! | [`amazon_like`] | Amazon (scaled) | power-law communities + per-community attribute |
//! | [`dblp_like`] | DBLP (scaled) | power-law communities + per-community attribute |
//! | [`livejournal_like`] | LiveJournal (scaled) | power-law communities + per-community attribute |
//!
//! The big three run at a reduced default scale so that the whole
//! experiment suite completes on one machine; pass an explicit `n` to
//! change it. All presets are deterministic given a seed, connected, and
//! have every node carrying at least one attribute.

use cod_graph::generators::{
    assign_class_labels, assign_community_attrs, barabasi_albert, blocks_from_sizes,
    make_connected, planted_partition, power_law_sizes,
};
use cod_graph::{AttrId, AttrInterner, AttrTable, AttributedGraph, GraphBuilder, NodeId};
use rand::prelude::*;

/// A generated dataset with its ground-truth communities (when the
/// generator plants them).
pub struct Dataset {
    /// Preset name (e.g. `"cora"`).
    pub name: String,
    /// The attributed graph.
    pub graph: AttributedGraph,
    /// Planted ground-truth communities (empty for BA-style presets).
    pub communities: Vec<Vec<NodeId>>,
}

impl Dataset {
    /// `(|V|, |E|, |A|)` as in Table I.
    pub fn stats(&self) -> (usize, usize, usize) {
        (
            self.graph.num_nodes(),
            self.graph.num_edges(),
            self.graph.num_attrs(),
        )
    }
}

/// Fraction of nodes that are *pendants*: degree-1 leaves attached
/// preferentially to high-degree core nodes. Real citation and co-purchase
/// graphs are full of such leaves; under average linkage they merge last
/// and produce the skewed hierarchies the paper's Fig. 4 exhibits.
const PENDANT_FRACTION: f64 = 0.25;

/// Attaches nodes `n_core..n_total` as pendants of `core`, preferentially
/// by degree, and returns the combined graph plus the attachment targets.
fn attach_pendants<R: Rng>(
    core: &cod_graph::Csr,
    n_total: usize,
    rng: &mut R,
) -> (cod_graph::Csr, Vec<NodeId>) {
    let n_core = core.num_nodes();
    // Degree-proportional urn over core endpoints.
    let mut urn: Vec<NodeId> = Vec::with_capacity(2 * core.num_edges());
    for (u, v) in core.edges() {
        urn.push(u);
        urn.push(v);
    }
    let mut b = GraphBuilder::with_capacity(n_total, core.num_edges() + (n_total - n_core));
    for (u, v) in core.edges() {
        b.add_edge(u, v);
    }
    let mut targets = Vec::with_capacity(n_total - n_core);
    for v in n_core..n_total {
        let t = if urn.is_empty() {
            0
        } else {
            urn[rng.random_range(0..urn.len())]
        };
        b.add_edge(v as NodeId, t);
        targets.push(t);
    }
    (b.build(), targets)
}

/// Builds a citation-like dataset: planted partition with noisy class
/// labels (one label per node from `num_classes`) plus a pendant fringe.
fn citation_like<R: Rng>(
    name: &str,
    n: usize,
    target_edges: usize,
    num_classes: usize,
    rng: &mut R,
) -> Dataset {
    let n_core = ((n as f64) * (1.0 - PENDANT_FRACTION)) as usize;
    let core_edges = target_edges.saturating_sub(n - n_core);
    let sizes = power_law_sizes(n_core, 8, (n_core / 12).max(30), 2.2, rng);
    let mut blocks = blocks_from_sizes(&sizes);
    // 80% of core edges intra-community, 20% background.
    let intra_pairs: f64 = sizes
        .iter()
        .map(|&s| s as f64 * (s as f64 - 1.0) / 2.0)
        .sum();
    let total_pairs = n_core as f64 * (n_core as f64 - 1.0) / 2.0;
    let p_in = (0.8 * core_edges as f64 / intra_pairs).min(1.0);
    let p_out = 0.2 * core_edges as f64 / total_pairs;
    let core = planted_partition(n_core, &blocks, p_in, p_out, rng);
    let (csr, targets) = attach_pendants(&core, n, rng);
    let csr = make_connected(&csr, rng);
    // A pendant joins the community of its attachment point.
    let block_of = block_index(&blocks, n_core);
    for (i, &t) in targets.iter().enumerate() {
        blocks[block_of[t as usize]].push((n_core + i) as NodeId);
    }
    let attrs = assign_class_labels(n, &blocks, num_classes, 0.1, rng);
    let mut interner = AttrInterner::new();
    for c in 0..num_classes {
        interner.intern(&format!("class_{c}"));
    }
    Dataset {
        name: name.to_owned(),
        graph: AttributedGraph::from_parts(csr, attrs, interner),
        communities: blocks,
    }
}

/// Maps each core node to the index of its block.
fn block_index(blocks: &[Vec<NodeId>], n_core: usize) -> Vec<usize> {
    let mut of = vec![0usize; n_core];
    for (i, b) in blocks.iter().enumerate() {
        for &v in b {
            of[v as usize] = i;
        }
    }
    of
}

/// Builds a ground-truth-community dataset following the paper's Amazon /
/// DBLP / LiveJournal augmentation: power-law community sizes and one
/// random attribute from a pool shared by every node of a community.
fn community_like<R: Rng>(
    name: &str,
    n: usize,
    target_edges: usize,
    num_attrs: usize,
    rng: &mut R,
) -> Dataset {
    let n_core = ((n as f64) * (1.0 - PENDANT_FRACTION)) as usize;
    let core_edges = target_edges.saturating_sub(n - n_core);
    let sizes = power_law_sizes(n_core, 6, 200, 2.5, rng);
    let mut blocks = blocks_from_sizes(&sizes);
    let intra_pairs: f64 = sizes
        .iter()
        .map(|&s| s as f64 * (s as f64 - 1.0) / 2.0)
        .sum();
    let total_pairs = n_core as f64 * (n_core as f64 - 1.0) / 2.0;
    let p_in = (0.85 * core_edges as f64 / intra_pairs).min(1.0);
    let p_out = 0.15 * core_edges as f64 / total_pairs;
    let core = planted_partition(n_core, &blocks, p_in, p_out, rng);
    let (csr, targets) = attach_pendants(&core, n, rng);
    let csr = make_connected(&csr, rng);
    let block_of = block_index(&blocks, n_core);
    for (i, &t) in targets.iter().enumerate() {
        blocks[block_of[t as usize]].push((n_core + i) as NodeId);
    }
    let attrs = assign_community_attrs(n, &blocks, num_attrs, rng);
    let mut interner = AttrInterner::new();
    for a in 0..num_attrs {
        interner.intern(&format!("attr_{a}"));
    }
    Dataset {
        name: name.to_owned(),
        graph: AttributedGraph::from_parts(csr, attrs, interner),
        communities: blocks,
    }
}

/// Cora-like: 2,485 nodes, ≈5,069 edges, 7 classes.
pub fn cora_like(seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    citation_like("cora", 2485, 5069, 7, &mut rng)
}

/// CiteSeer-like: 2,110 nodes, ≈3,668 edges, 6 classes.
pub fn citeseer_like(seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    citation_like("citeseer", 2110, 3668, 6, &mut rng)
}

/// PubMed-like: 19,717 nodes, ≈44,327 edges, 3 classes.
pub fn pubmed_like(seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    citation_like("pubmed", 19717, 44327, 3, &mut rng)
}

/// Retweet-like: 18,470 nodes, hub-skewed (Barabási–Albert), 2 labels.
///
/// The paper uses Retweet to exercise *skewed* hierarchies
/// (`|H̄_ℓ(q)| = 165.3`, Table I); preferential attachment reproduces that
/// skew under average-linkage clustering.
pub fn retweet_like(seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = 18_470;
    // A preferential-attachment core plus a large *viral* pendant fringe:
    // retweet graphs are dominated by a few hubs with thousands of one-off
    // retweeters, which is what produces the extreme hierarchy skew of
    // Table I (avg |H(q)| = 165.3). Pendants pick their hub by a Zipf law
    // over the degree ranking, concentrating them on the top hubs.
    let n_core = ((n as f64) * (1.0 - 2.0 * PENDANT_FRACTION)) as usize;
    let core = barabasi_albert(n_core, 4, &mut rng);
    let mut by_degree: Vec<NodeId> = (0..n_core as NodeId).collect();
    by_degree.sort_unstable_by_key(|&v| std::cmp::Reverse(core.degree(v)));
    let mut cum: Vec<f64> = Vec::with_capacity(n_core);
    let mut acc = 0.0;
    for rank in 0..n_core {
        acc += 1.0 / (rank + 1) as f64;
        cum.push(acc);
    }
    let mut b = GraphBuilder::with_capacity(n, core.num_edges() + (n - n_core));
    for (u, v) in core.edges() {
        b.add_edge(u, v);
    }
    for v in n_core..n {
        let x = rng.random::<f64>() * acc;
        let rank = cum.partition_point(|&c| c < x).min(n_core - 1);
        b.add_edge(v as NodeId, by_degree[rank]);
    }
    let csr = b.build();
    // Two labels, assortative: nodes copy the label of a random neighbor
    // with p = 0.7 (one sweep), else keep a random one — yielding mixed
    // but correlated labels like political retweet communities.
    let mut labels: Vec<AttrId> = (0..n).map(|_| rng.random_range(0..2) as AttrId).collect();
    for v in 0..n {
        if rng.random_bool(0.7) {
            let neigh = csr.neighbors(v as NodeId);
            if !neigh.is_empty() {
                let u = neigh[rng.random_range(0..neigh.len())];
                labels[v] = labels[u as usize];
            }
        }
    }
    let attrs = AttrTable::single_per_node(&labels);
    let mut interner = AttrInterner::new();
    interner.intern("left");
    interner.intern("right");
    Dataset {
        name: "retweet".to_owned(),
        graph: AttributedGraph::from_parts(csr, attrs, interner),
        communities: Vec::new(),
    }
}

/// Amazon-like at a given node count (paper: 334,863; default here 33,000
/// to keep the full suite laptop-scale). The attribute pool keeps the
/// paper's `|A| = 33`.
pub fn amazon_like_scaled(n: usize, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let edges = (n as f64 * (925_872.0 / 334_863.0)) as usize;
    community_like("amazon", n, edges, 33, &mut rng)
}

/// Amazon-like at the default reduced scale (33k nodes).
pub fn amazon_like(seed: u64) -> Dataset {
    amazon_like_scaled(33_000, seed)
}

/// DBLP-like at a given node count (paper: 317,080; default 32,000).
/// Keeps the paper's `|A| = 31`.
pub fn dblp_like_scaled(n: usize, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let edges = (n as f64 * (1_049_866.0 / 317_080.0)) as usize;
    community_like("dblp", n, edges, 31, &mut rng)
}

/// DBLP-like at the default reduced scale (32k nodes).
pub fn dblp_like(seed: u64) -> Dataset {
    dblp_like_scaled(32_000, seed)
}

/// LiveJournal-like at a given node count (paper: 3,997,962; default
/// 60,000 for the scalability test). `|A| = 400` as in Table I.
pub fn livejournal_like_scaled(n: usize, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let edges = (n as f64 * (34_681_189.0 / 3_997_962.0)) as usize;
    community_like("livejournal", n, edges, 400, &mut rng)
}

/// LiveJournal-like at the default reduced scale (60k nodes).
pub fn livejournal_like(seed: u64) -> Dataset {
    livejournal_like_scaled(60_000, seed)
}

/// The six evaluation datasets of §V-B at experiment scale.
pub fn standard_suite(seed: u64) -> Vec<Dataset> {
    vec![
        cora_like(seed),
        citeseer_like(seed + 1),
        pubmed_like(seed + 2),
        retweet_like(seed + 3),
        amazon_like(seed + 4),
        dblp_like(seed + 5),
    ]
}

/// Looks a preset up by name (accepts the Table I dataset names,
/// case-insensitive).
pub fn by_name(name: &str, seed: u64) -> Option<Dataset> {
    match name.to_ascii_lowercase().as_str() {
        "cora" => Some(cora_like(seed)),
        "citeseer" => Some(citeseer_like(seed)),
        "pubmed" => Some(pubmed_like(seed)),
        "retweet" => Some(retweet_like(seed)),
        "amazon" => Some(amazon_like(seed)),
        "dblp" => Some(dblp_like(seed)),
        "livejournal" => Some(livejournal_like(seed)),
        _ => None,
    }
}

/// The paper's running example: the Fig. 2 ten-node graph with the Fig. 5
/// DB/ML attributes. Used by the quickstart example and as a shared test
/// fixture.
///
/// ```
/// let data = cod_datasets::paper_example();
/// assert_eq!(data.graph.num_nodes(), 10);
/// assert_eq!(data.graph.num_edges(), 15);
/// let db = data.graph.interner().get("DB").unwrap();
/// assert!(data.graph.has_attr(0, db));
/// ```
pub fn paper_example() -> Dataset {
    let mut b = GraphBuilder::new(10);
    for (u, v) in [
        (0, 1),
        (0, 2),
        (0, 3),
        (1, 2),
        (2, 3),
        (2, 4),
        (3, 5),
        (4, 5),
        (3, 7),
        (3, 6),
        (6, 7),
        (5, 6),
        (6, 8),
        (8, 9),
        (6, 9),
    ] {
        b.add_edge(u, v);
    }
    let mut interner = AttrInterner::new();
    let db = interner.intern("DB");
    let ml = interner.intern("ML");
    let lists = (0..10)
        .map(|v| match v {
            0 | 2 | 3 | 4 | 5 | 7 => vec![db],
            _ => vec![ml],
        })
        .collect();
    Dataset {
        name: "paper-example".to_owned(),
        graph: AttributedGraph::from_parts(b.build(), AttrTable::from_lists(lists), interner),
        communities: vec![vec![0, 1, 2, 3], vec![4, 5], vec![6, 7], vec![8, 9]],
    }
}

/// Generates the paper's query workload (§V-A): `count` random query nodes,
/// each paired with one of its own attributes, drawn uniformly. Nodes
/// without attributes are skipped.
pub fn gen_queries<R: Rng>(
    g: &AttributedGraph,
    count: usize,
    rng: &mut R,
) -> Vec<(NodeId, AttrId)> {
    let n = g.num_nodes();
    let mut out = Vec::with_capacity(count);
    let mut guard = 0usize;
    while out.len() < count && guard < 100 * count + 1000 {
        guard += 1;
        let q = rng.random_range(0..n) as NodeId;
        let attrs = g.node_attrs(q);
        if attrs.is_empty() {
            continue;
        }
        let a = attrs[rng.random_range(0..attrs.len())];
        out.push((q, a));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::components::is_connected;

    #[test]
    fn cora_like_matches_table_1_shape() {
        let d = cora_like(1);
        let (n, m, a) = d.stats();
        assert_eq!(n, 2485);
        assert!(
            (m as f64 - 5069.0).abs() < 800.0,
            "edge count {m} too far from 5069"
        );
        assert_eq!(a, 7);
        assert!(is_connected(d.graph.csr()));
    }

    #[test]
    fn every_node_has_an_attribute() {
        for d in [cora_like(2), citeseer_like(2), retweet_like(2)] {
            for v in 0..d.graph.num_nodes() as NodeId {
                assert!(!d.graph.node_attrs(v).is_empty(), "{}: node {v}", d.name);
            }
        }
    }

    #[test]
    fn retweet_like_is_hub_skewed() {
        let d = retweet_like(3);
        let g = d.graph.csr();
        let max_deg = (0..g.num_nodes() as NodeId)
            .map(|v| g.degree(v))
            .max()
            .unwrap();
        assert!(max_deg > 100, "expected hubs, max degree {max_deg}");
        assert!(is_connected(g));
    }

    #[test]
    fn community_like_attributes_are_shared() {
        let d = amazon_like_scaled(2000, 4);
        // All members of each planted community share one attribute.
        for c in d.communities.iter().take(20) {
            let a = d.graph.node_attrs(c[0])[0];
            for &v in c {
                assert!(d.graph.has_attr(v, a));
            }
        }
    }

    #[test]
    fn presets_are_deterministic() {
        let a = cora_like(7);
        let b = cora_like(7);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn queries_use_own_attributes() {
        let d = cora_like(5);
        let mut rng = SmallRng::seed_from_u64(5);
        let qs = gen_queries(&d.graph, 50, &mut rng);
        assert_eq!(qs.len(), 50);
        for (q, a) in qs {
            assert!(d.graph.has_attr(q, a));
        }
    }

    #[test]
    fn by_name_round_trip() {
        assert!(by_name("Cora", 1).is_some());
        assert!(by_name("nope", 1).is_none());
    }

    #[test]
    fn paper_example_matches_fig_2() {
        let d = paper_example();
        assert_eq!(d.graph.num_nodes(), 10);
        assert_eq!(d.graph.num_edges(), 15);
        let db = d.graph.interner().get("DB").unwrap();
        assert!(d.graph.edge_is_attributed(2, 4, db));
        assert!(!d.graph.edge_is_attributed(0, 1, db));
    }
}
