//! A minimal, std-only HTTP/1.1 request parser and response writer.
//!
//! The build environment is offline, so the serving tier hand-rolls the
//! small subset of HTTP it needs instead of depending on hyper: one
//! request per connection (`Connection: close` on every response), header
//! parsing limited to what routing and body framing require
//! (`Content-Length`), and a hard cap on total request bytes so a hostile
//! or broken client cannot balloon memory. Timeouts come from the socket
//! itself (`set_read_timeout` / `set_write_timeout` on the stream); a
//! read that times out surfaces as [`ParseError::Timeout`].

use std::io::{Read, Write};
use std::net::TcpStream;

/// Longest request line + headers the parser accepts, independent of the
/// body cap (a request line alone should never need more).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed HTTP/1.1 request.
#[derive(Debug)]
pub struct Request {
    /// The request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// The path component of the request target, before any `?`.
    pub path: String,
    /// The raw query string after `?`, without the `?` (empty if none).
    pub query: String,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Iterates `key=value` pairs of the query string. No percent
    /// decoding: the serve API only uses unreserved characters.
    pub fn query_pairs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.query
            .split('&')
            .filter(|s| !s.is_empty())
            .filter_map(|kv| kv.split_once('='))
    }

    /// The first value of query parameter `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query_pairs().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Why a request could not be parsed; each maps to one HTTP status.
#[derive(Debug)]
pub enum ParseError {
    /// Structurally invalid request (→ 400).
    Malformed(String),
    /// Head or body exceeded the configured size cap (→ 413).
    TooLarge,
    /// The socket read timed out before a full request arrived (→ 408).
    Timeout,
    /// The peer closed the connection before sending a full request
    /// (no response possible — the connection is simply dropped).
    ConnectionClosed,
}

fn io_to_parse(e: std::io::Error) -> ParseError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ParseError::Timeout,
        std::io::ErrorKind::UnexpectedEof
        | std::io::ErrorKind::ConnectionReset
        | std::io::ErrorKind::ConnectionAborted => ParseError::ConnectionClosed,
        _ => ParseError::Malformed(format!("read failed: {e}")),
    }
}

/// Reads and parses one request from `stream`. `max_body_bytes` caps the
/// declared `Content-Length`; the head (request line + headers) is capped
/// at 16 KiB regardless.
pub fn read_request(stream: &mut TcpStream, max_body_bytes: usize) -> Result<Request, ParseError> {
    // Accumulate until the blank line ending the head. Reads are small
    // and bounded; the socket's read timeout bounds total wait.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ParseError::TooLarge);
        }
        let n = stream.read(&mut chunk).map_err(io_to_parse)?;
        if n == 0 {
            return if buf.is_empty() {
                Err(ParseError::ConnectionClosed)
            } else {
                Err(ParseError::Malformed("connection closed mid-head".into()))
            };
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ParseError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ParseError::Malformed("empty head".into()))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(ParseError::Malformed(format!(
                "bad request line: {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }

    let mut content_length: usize = 0;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Malformed(format!("bad header line: {line:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| ParseError::Malformed(format!("bad content-length: {value:?}")))?;
        }
    }
    if content_length > max_body_bytes {
        return Err(ParseError::TooLarge);
    }

    // Body: whatever arrived with the head, then read the remainder.
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(ParseError::Malformed(
            "body longer than content-length".into(),
        ));
    }
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(io_to_parse)?;
        if n == 0 {
            return Err(ParseError::Malformed("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
        if body.len() > content_length {
            return Err(ParseError::Malformed(
                "body longer than content-length".into(),
            ));
        }
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };
    Ok(Request {
        method: method.to_owned(),
        path,
        query,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One HTTP response, written with `Connection: close` framing.
#[derive(Debug)]
pub struct Response {
    /// The HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Optional `Retry-After` header value, in whole seconds.
    pub retry_after_secs: Option<u64>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            retry_after_secs: None,
            body: body.into().into_bytes(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            retry_after_secs: None,
            body: body.into_bytes(),
        }
    }

    /// Attaches a `Retry-After` header (rounded up to whole seconds,
    /// minimum 1 — the header has no sub-second resolution).
    pub fn with_retry_after(mut self, after: std::time::Duration) -> Self {
        self.retry_after_secs = Some(after.as_secs_f64().ceil().max(1.0) as u64);
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "",
        }
    }

    /// Serializes the response and writes it to `stream`.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        use std::fmt::Write as _;
        let mut head = String::with_capacity(160);
        let _ = write!(head, "HTTP/1.1 {} {}\r\n", self.status, self.reason());
        let _ = write!(head, "Content-Type: {}\r\n", self.content_type);
        let _ = write!(head, "Content-Length: {}\r\n", self.body.len());
        if let Some(secs) = self.retry_after_secs {
            let _ = write!(head, "Retry-After: {secs}\r\n");
        }
        head.push_str("Connection: close\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs the parser against raw bytes by pushing them through a real
    /// socket pair (the parser's input type is `TcpStream`).
    fn parse_bytes(bytes: &[u8], max_body: usize) -> Result<Request, ParseError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(bytes).unwrap();
        drop(client); // EOF after the payload
        let (mut server_side, _) = listener.accept().unwrap();
        read_request(&mut server_side, max_body)
    }

    #[test]
    fn parses_get_with_query_string() {
        let req = parse_bytes(
            b"GET /query?node=3&attr=ML&method=codl HTTP/1.1\r\nHost: x\r\n\r\n",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/query");
        assert_eq!(req.query_param("node"), Some("3"));
        assert_eq!(req.query_param("attr"), Some("ML"));
        assert_eq!(req.query_param("method"), Some("codl"));
        assert_eq!(req.query_param("missing"), None);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse_bytes(
            b"POST /query HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"node\": 0}",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"node\": 0}");
    }

    #[test]
    fn oversized_body_is_rejected() {
        let r = parse_bytes(b"POST /query HTTP/1.1\r\nContent-Length: 999\r\n\r\n", 100);
        assert!(matches!(r, Err(ParseError::TooLarge)), "{r:?}");
    }

    #[test]
    fn malformed_request_line_is_rejected() {
        let r = parse_bytes(b"NONSENSE\r\n\r\n", 100);
        assert!(matches!(r, Err(ParseError::Malformed(_))), "{r:?}");
    }

    #[test]
    fn immediate_close_is_connection_closed() {
        let r = parse_bytes(b"", 100);
        assert!(matches!(r, Err(ParseError::ConnectionClosed)), "{r:?}");
    }

    #[test]
    fn response_serializes_with_retry_after() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        Response::text(503, "overloaded\n")
            .with_retry_after(std::time::Duration::from_millis(25))
            .write_to(&mut server_side)
            .unwrap();
        drop(server_side);
        let mut out = String::new();
        let mut client = client;
        client.read_to_string(&mut out).unwrap();
        assert!(
            out.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{out}"
        );
        assert!(
            out.contains("Retry-After: 1\r\n"),
            "sub-second rounds up: {out}"
        );
        assert!(out.contains("Connection: close"), "{out}");
        assert!(out.ends_with("overloaded\n"), "{out}");
    }
}
