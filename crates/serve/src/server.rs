//! The serving loop: acceptor thread, bounded worker pool, request
//! routing, and the graceful-drain state machine.
//!
//! # Threading model
//!
//! One **acceptor** thread owns the (nonblocking) listener and the sending
//! half of a bounded `sync_channel` of accepted connections; `workers`
//! threads each loop `recv → handle one connection → close`. Overload
//! sheds at two rungs:
//!
//! 1. **socket**: when the accept queue is full, the acceptor itself
//!    writes a `503` (+ `Retry-After` from [`CodEngine::retry_after_hint`])
//!    and closes — the connection never occupies worker or queue memory;
//! 2. **engine**: a request that reaches evaluation can still shed with
//!    [`CodError::Overloaded`] when `max_inflight` is saturated, mapped to
//!    `503` + `Retry-After` from the error's own hint.
//!
//! # Drain state machine
//!
//! `Running → Draining → Stopped`, driven by [`ServerHandle::shutdown`]:
//! entering *Draining* flips `/readyz` to 503 and calls
//! [`CodEngine::begin_drain`] (new queries get kill-linked tokens); queued
//! and in-flight connections complete normally; fresh connections get an
//! inline `503` from the acceptor (health endpoints still answer). If the
//! drain deadline passes with work still in flight,
//! [`CodEngine::cancel_inflight`] fires the engine kill switch and the
//! remaining queries finish degraded (or `DeadlineExceeded`) within one
//! governance checkpoint. *Stopped* closes the listener and joins every
//! thread, so a clean exit leaks neither sockets nor threads.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cod_core::failpoint::{self, Site};
use cod_core::{
    CodAnswer, CodConfig, CodEngine, CodError, Method, MetricsSnapshot, Query, QueryLimits,
    ShardedEngine,
};
use cod_graph::{AttrId, AttributedGraph};
use rand::prelude::*;

use crate::http::{self, ParseError, Request, Response};
use crate::json::{self, Value};

/// The engine behind the server: a single [`CodEngine`], or a
/// [`ShardedEngine`] routing by connected component. Every endpoint goes
/// through this, so the HTTP surface is identical either way — sharded
/// serving only adds the `cod_shard_*` series to `/metrics`.
#[derive(Clone)]
pub enum EngineHandle {
    /// One engine serving the whole graph.
    Single(Arc<CodEngine>),
    /// A per-shard engine fleet over shared artifacts.
    Sharded(Arc<ShardedEngine>),
}

impl EngineHandle {
    /// The graph being served.
    pub fn graph(&self) -> &AttributedGraph {
        match self {
            EngineHandle::Single(e) => e.graph(),
            EngineHandle::Sharded(e) => e.graph(),
        }
    }

    /// The shared configuration.
    pub fn config(&self) -> &CodConfig {
        match self {
            EngineHandle::Single(e) => e.config(),
            EngineHandle::Sharded(e) => e.config(),
        }
    }

    /// Engine metrics (aggregated across shards when sharded).
    pub fn metrics(&self) -> MetricsSnapshot {
        match self {
            EngineHandle::Single(e) => e.metrics(),
            EngineHandle::Sharded(e) => e.metrics(),
        }
    }

    /// The Prometheus exposition (includes `cod_shard_*` when sharded).
    pub fn metrics_text(&self) -> String {
        match self {
            EngineHandle::Single(e) => e.metrics_text(),
            EngineHandle::Sharded(e) => e.metrics_text(),
        }
    }

    /// The advisory wait before retrying a shed request.
    pub fn retry_after_hint(&self) -> Duration {
        match self {
            EngineHandle::Single(e) => e.retry_after_hint(),
            EngineHandle::Sharded(e) => e.retry_after_hint(),
        }
    }

    /// Starts drain: every new query gets a kill-linked token.
    pub fn begin_drain(&self) {
        match self {
            EngineHandle::Single(e) => e.begin_drain(),
            EngineHandle::Sharded(e) => e.begin_drain(),
        }
    }

    /// Fires the kill switch under every in-flight query.
    pub fn cancel_inflight(&self) {
        match self {
            EngineHandle::Single(e) => e.cancel_inflight(),
            EngineHandle::Sharded(e) => e.cancel_inflight(),
        }
    }

    /// Batch evaluation under per-request limits.
    pub fn query_batch_with_limits<R: Rng>(
        &self,
        queries: &[Query],
        limits: &QueryLimits,
        rng: &mut R,
    ) -> Vec<cod_core::CodResult<Option<CodAnswer>>> {
        match self {
            EngineHandle::Single(e) => e.query_batch_with_limits(queries, limits, rng),
            EngineHandle::Sharded(e) => e.query_batch_with_limits(queries, limits, rng),
        }
    }
}

/// Tuning knobs for [`serve`]. `Default` suits tests and local use.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Accepted connections queued ahead of the workers; when full, new
    /// connections are shed at the socket with a 503.
    pub accept_queue: usize,
    /// Hard cap on a request body (413 beyond it).
    pub max_request_bytes: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Deadline applied to requests that do not carry `deadline_ms`
    /// themselves. `None` leaves such requests ungoverned.
    pub default_deadline: Option<Duration>,
    /// How long [`ServerHandle::shutdown`] waits for in-flight work
    /// before firing the engine kill switch.
    pub drain_deadline: Duration,
    /// Seed mixed into each request's RNG stream.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            accept_queue: 16,
            max_request_bytes: 1 << 20,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            default_deadline: Some(Duration::from_secs(10)),
            drain_deadline: Duration::from_secs(5),
            seed: 0xC0D,
        }
    }
}

/// Lifecycle states of the drain state machine.
const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

/// Serve-layer counters, exposed alongside the engine metrics on
/// `/metrics` (relaxed atomics, scrape-consistency like the engine's).
#[derive(Debug, Default)]
pub struct HttpMetrics {
    /// Requests fully parsed and routed.
    requests: AtomicU64,
    /// Connections shed at the socket by the acceptor (queue full).
    shed_socket: AtomicU64,
    /// Requests shed by engine admission control (`Overloaded`).
    shed_engine: AtomicU64,
    /// Query requests refused because the server was draining.
    draining_rejects: AtomicU64,
    /// Panics contained by a worker's `catch_unwind`.
    panics: AtomicU64,
}

/// A point-in-time copy of the serve-layer `HttpMetrics` counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HttpStats {
    pub requests: u64,
    pub shed_socket: u64,
    pub shed_engine: u64,
    pub draining_rejects: u64,
    pub panics: u64,
}

impl HttpMetrics {
    fn snapshot(&self) -> HttpStats {
        HttpStats {
            requests: self.requests.load(Ordering::Relaxed),
            shed_socket: self.shed_socket.load(Ordering::Relaxed),
            shed_engine: self.shed_engine.load(Ordering::Relaxed),
            draining_rejects: self.draining_rejects.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
        }
    }

    fn render(&self) -> String {
        let s = self.snapshot();
        let mut out = String::with_capacity(512);
        for (name, help, v) in [
            (
                "http_requests",
                "HTTP requests parsed and routed",
                s.requests,
            ),
            (
                "http_shed_socket",
                "connections shed at the socket (accept queue full)",
                s.shed_socket,
            ),
            (
                "http_shed_engine",
                "requests shed by engine admission control",
                s.shed_engine,
            ),
            (
                "http_draining_rejects",
                "query requests refused while draining",
                s.draining_rejects,
            ),
            (
                "http_worker_panics",
                "panics contained by worker catch_unwind",
                s.panics,
            ),
        ] {
            out.push_str(&format!(
                "# HELP cod_{name}_total {help}\n# TYPE cod_{name}_total counter\ncod_{name}_total {v}\n"
            ));
        }
        out
    }
}

/// State shared by the acceptor, the workers and the handle.
struct Shared {
    engine: EngineHandle,
    cfg: ServeConfig,
    state: AtomicU8,
    /// Connections accepted and not yet fully handled (queued + active).
    conn_inflight: AtomicUsize,
    http: HttpMetrics,
    /// Monotone request index, mixed into each request's RNG seed.
    req_counter: AtomicU64,
}

impl Shared {
    fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }
}

/// Handle to a running server. Dropping it without calling
/// [`ServerHandle::shutdown`] aborts ungracefully (threads are detached);
/// call `shutdown` for the drain protocol.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// What [`ServerHandle::shutdown`] observed, plus the final metrics flush.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Whether all in-flight work finished before the drain deadline
    /// (false means the engine kill switch was fired to force completion).
    pub drained_in_time: bool,
    /// Final engine metrics, snapshotted after the last worker exited.
    pub engine_metrics: MetricsSnapshot,
    /// Final serve-layer counters.
    pub http_stats: HttpStats,
}

/// Starts the server over a single engine; returns once the listener is
/// bound and the threads are running.
pub fn serve(engine: Arc<CodEngine>, cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    serve_handle(EngineHandle::Single(engine), cfg)
}

/// Starts the server over any [`EngineHandle`] — the sharded entry point.
pub fn serve_handle(engine: EngineHandle, cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    serve_handle_on(listener, engine, cfg)
}

/// Starts the server on an already-bound (nonblocking) listener — the
/// recovery front hands its listener over through here, so the port never
/// closes between "recovering" and "serving".
fn serve_handle_on(
    listener: TcpListener,
    engine: EngineHandle,
    cfg: ServeConfig,
) -> std::io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let workers = cfg.workers.max(1);
    let queue = cfg.accept_queue.max(1);
    let shared = Arc::new(Shared {
        engine,
        cfg,
        state: AtomicU8::new(RUNNING),
        conn_inflight: AtomicUsize::new(0),
        http: HttpMetrics::default(),
        req_counter: AtomicU64::new(0),
    });

    let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(queue);
    let rx = Arc::new(Mutex::new(rx));
    let worker_handles: Vec<_> = (0..workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("cod-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared, &rx))
                .expect("spawn worker")
        })
        .collect();
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("cod-serve-accept".into())
            .spawn(move || accept_loop(&shared, listener, tx))
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers: worker_handles,
    })
}

/// A server that is still replaying its WAL. The listener is already
/// bound and answering — `/healthz` with 200, `/readyz` with
/// `503 RECOVERING`, everything else with 503 — so orchestrators can
/// watch the pod come up without routing traffic to it. Once recovery
/// completes, the same listener is handed to the full serving loop and
/// [`RecoveringServer::wait_ready`] yields the [`ServerHandle`].
pub struct RecoveringServer {
    addr: SocketAddr,
    rx: Receiver<Result<ServerHandle, CodError>>,
}

impl RecoveringServer {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until recovery finishes and the full server is running (or
    /// recovery failed, in which case the error is returned and the
    /// listener is closed).
    pub fn wait_ready(self) -> Result<ServerHandle, CodError> {
        match self.rx.recv() {
            Ok(res) => res,
            Err(_) => Err(CodError::Internal(
                "recovery front thread exited without a result".into(),
            )),
        }
    }
}

/// Binds the listener immediately and runs `recover` on a background
/// thread while a minimal front loop answers health probes with
/// `503 RECOVERING`. When `recover` returns an engine, the listener is
/// handed to the normal serving loop ([`serve_handle`] semantics).
pub fn serve_recovering<F>(cfg: ServeConfig, recover: F) -> std::io::Result<RecoveringServer>
where
    F: FnOnce() -> Result<EngineHandle, CodError> + Send + 'static,
{
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let (engine_tx, engine_rx) = std::sync::mpsc::channel::<Result<EngineHandle, CodError>>();
    std::thread::Builder::new()
        .name("cod-serve-recover".into())
        .spawn(move || {
            let _ = engine_tx.send(recover());
        })?;
    let (handle_tx, handle_rx) = std::sync::mpsc::channel::<Result<ServerHandle, CodError>>();
    std::thread::Builder::new()
        .name("cod-serve-recovering-front".into())
        .spawn(move || recovering_front(listener, cfg, &engine_rx, &handle_tx))?;
    Ok(RecoveringServer {
        addr,
        rx: handle_rx,
    })
}

/// The accept loop of a recovering server: answer probes, watch for the
/// recovered engine, then promote the listener to the full server.
fn recovering_front(
    listener: TcpListener,
    cfg: ServeConfig,
    engine_rx: &Receiver<Result<EngineHandle, CodError>>,
    handle_tx: &std::sync::mpsc::Sender<Result<ServerHandle, CodError>>,
) {
    use std::sync::mpsc::TryRecvError;
    loop {
        match engine_rx.try_recv() {
            Ok(Ok(engine)) => {
                let res = serve_handle_on(listener, engine, cfg).map_err(CodError::from);
                let _ = handle_tx.send(res);
                return;
            }
            Ok(Err(e)) => {
                let _ = handle_tx.send(Err(e));
                return;
            }
            Err(TryRecvError::Disconnected) => {
                let _ = handle_tx.send(Err(CodError::Internal(
                    "recovery thread died before producing an engine".into(),
                )));
                return;
            }
            Err(TryRecvError::Empty) => {}
        }
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
                let _ = stream.set_write_timeout(Some(cfg.write_timeout));
                let resp = match http::read_request(&mut stream, cfg.max_request_bytes) {
                    Ok(req) if req.method == "GET" && req.path == "/healthz" => {
                        Response::text(200, "ok\n")
                    }
                    Ok(req) if req.method == "GET" && req.path == "/metrics" => Response {
                        status: 200,
                        content_type: "text/plain; version=0.0.4",
                        retry_after_secs: None,
                        body: b"# HELP cod_recovering whether WAL replay is in progress\n\
                               # TYPE cod_recovering gauge\ncod_recovering 1\n"
                            .to_vec(),
                    },
                    _ => Response::text(503, "RECOVERING\n"),
                };
                let _ = resp.write_to(&mut stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine being served.
    pub fn engine(&self) -> &EngineHandle {
        &self.shared.engine
    }

    /// Serve-layer counters so far.
    pub fn http_stats(&self) -> HttpStats {
        self.shared.http.snapshot()
    }

    /// Enters the *Draining* state without blocking: `/readyz` flips to
    /// 503, the engine starts minting kill-linked tokens, new query
    /// connections are refused. Called by [`ServerHandle::shutdown`];
    /// exposed separately so tests can observe the intermediate state.
    pub fn begin_drain(&self) {
        // Only forward: never demote Stopped back to Draining.
        let _ = self.shared.state.compare_exchange(
            RUNNING,
            DRAINING,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        self.shared.engine.begin_drain();
    }

    /// Graceful shutdown: drain in-flight work (forcing completion through
    /// the engine kill switch if the configured drain deadline passes),
    /// stop the listener, join every thread, and return the final metrics.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.begin_drain();
        let deadline = Instant::now() + self.shared.cfg.drain_deadline;
        let mut drained_in_time = true;
        while self.shared.conn_inflight.load(Ordering::Acquire) > 0 {
            if Instant::now() >= deadline {
                drained_in_time = false;
                // Fire the kill switch once: every in-flight query
                // degrades at its next checkpoint, workers finish writing
                // those degraded answers, and the drain converges.
                self.shared.engine.cancel_inflight();
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        self.shared.state.store(STOPPED, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // The acceptor dropped the sender on exit; workers drain the
        // queue and exit. (Post-kill, queries complete within one
        // checkpoint, so these joins terminate.)
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        ShutdownReport {
            drained_in_time,
            engine_metrics: self.shared.engine.metrics(),
            http_stats: self.shared.http.snapshot(),
        }
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener, tx: SyncSender<TcpStream>) {
    loop {
        match shared.state() {
            STOPPED => break,
            state => match listener.accept() {
                Ok((mut stream, _peer)) => {
                    // The Accept failpoint is the only panic-prone code on
                    // this thread; an acceptor that dies takes the whole
                    // server deaf, so isolate it like the worker sites and
                    // answer the connection with a best-effort 500.
                    if catch_unwind(|| failpoint::hit(Site::Accept, None)).is_err() {
                        shared.http.panics.fetch_add(1, Ordering::Relaxed);
                        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
                        let _ = http::read_request(&mut stream, shared.cfg.max_request_bytes);
                        let _ =
                            Response::text(500, "internal error (accept)\n").write_to(&mut stream);
                        continue;
                    }
                    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
                    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
                    if state == DRAINING {
                        drain_reply(shared, stream);
                        continue;
                    }
                    shared.conn_inflight.fetch_add(1, Ordering::AcqRel);
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(stream)) => {
                            shared.conn_inflight.fetch_sub(1, Ordering::AcqRel);
                            shed_at_socket(shared, stream);
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            shared.conn_inflight.fetch_sub(1, Ordering::AcqRel);
                            break;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(1)),
            },
        }
    }
    // Dropping `tx` here closes the queue; workers exit after draining it.
}

/// Queue-full shedding, on the acceptor thread. The request is consumed
/// before replying — closing a socket with unread bytes sends an RST that
/// can destroy the queued 503, and a shed must look like an orderly 503 to
/// the client, never a reset. Having parsed it anyway, health and metrics
/// requests are answered for real: liveness stays observable at any
/// overload level, which is exactly when an operator needs it. The tight
/// read timeout bounds how long a slow client can hold the acceptor.
fn shed_at_socket(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let resp = match http::read_request(&mut stream, shared.cfg.max_request_bytes) {
        Ok(req) if req.method == "GET" && req.path == "/healthz" => Response::text(200, "ok\n"),
        Ok(req) if req.method == "GET" && req.path == "/readyz" => Response::text(200, "ready\n"),
        Ok(req) if req.method == "GET" && req.path == "/metrics" => metrics_response(shared),
        _ => {
            shared.http.shed_socket.fetch_add(1, Ordering::Relaxed);
            Response::text(503, "overloaded: accept queue full\n")
                .with_retry_after(shared.engine.retry_after_hint())
        }
    };
    let _ = resp.write_to(&mut stream);
}

/// Connection handling while draining, on the acceptor thread: health
/// endpoints still answer (a draining pod must stay observable); query
/// endpoints are refused with 503 so load balancers move on quickly.
fn drain_reply(shared: &Shared, mut stream: TcpStream) {
    // Bound the head read tighter than the normal read timeout — a slow
    // client must not be able to stall the drain.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let resp = match http::read_request(&mut stream, shared.cfg.max_request_bytes) {
        Ok(req) => match req.path.as_str() {
            "/healthz" => Response::text(200, "ok\n"),
            "/metrics" => metrics_response(shared),
            "/readyz" => Response::text(503, "draining\n"),
            _ => {
                shared.http.draining_rejects.fetch_add(1, Ordering::Relaxed);
                Response::text(503, "draining\n").with_retry_after(shared.cfg.drain_deadline)
            }
        },
        Err(_) => Response::text(503, "draining\n"),
    };
    let _ = resp.write_to(&mut stream);
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        let stream = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv()
        };
        let Ok(stream) = stream else {
            break; // channel closed and drained: shutdown
        };
        // RAII: the connection counts as in-flight until this guard
        // drops, panic or not — the drain loop keys off it.
        struct ConnGuard<'a>(&'a AtomicUsize);
        impl Drop for ConnGuard<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::AcqRel);
            }
        }
        let _guard = ConnGuard(&shared.conn_inflight);
        handle_connection(shared, stream);
    }
}

/// Handles one connection: parse, route, evaluate, respond. Both the
/// parse and the route/eval stages run under `catch_unwind`, so a panic
/// (engine bug, armed failpoint) yields a 500 on this connection and
/// nothing else — the worker thread and its siblings keep serving.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let parsed = catch_unwind(AssertUnwindSafe(|| {
        failpoint::hit(Site::Parse, None);
        http::read_request(&mut stream, shared.cfg.max_request_bytes)
    }));
    let req = match parsed {
        Ok(Ok(req)) => req,
        Ok(Err(e)) => {
            let resp = match e {
                ParseError::ConnectionClosed => return, // nobody to answer
                ParseError::Timeout => Response::text(408, "request read timed out\n"),
                ParseError::TooLarge => Response::text(413, "request too large\n"),
                ParseError::Malformed(m) => Response::text(400, format!("bad request: {m}\n")),
            };
            let _ = resp.write_to(&mut stream);
            return;
        }
        Err(_panic) => {
            shared.http.panics.fetch_add(1, Ordering::Relaxed);
            // The panic fired before the request was consumed; drain it
            // (bounded by a tight timeout) so the close sends FIN, not an
            // RST that would destroy the 500 in the client's buffer.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
            let _ = http::read_request(&mut stream, shared.cfg.max_request_bytes);
            let _ = Response::text(500, "internal error while parsing\n").write_to(&mut stream);
            return;
        }
    };

    shared.http.requests.fetch_add(1, Ordering::Relaxed);
    let routed = catch_unwind(AssertUnwindSafe(|| route(shared, &req)));
    let resp = match routed {
        Ok(resp) => resp,
        Err(_panic) => {
            shared.http.panics.fetch_add(1, Ordering::Relaxed);
            Response::text(500, "internal error\n")
        }
    };
    // The response write gets its own unwind scope: a panic here (armed
    // RespWrite failpoint) must not kill the worker either, though the
    // client necessarily sees a dropped connection.
    let write = catch_unwind(AssertUnwindSafe(|| {
        failpoint::hit(Site::RespWrite, None);
        resp.write_to(&mut stream)
    }));
    match write {
        Ok(_io_result) => {}
        Err(_panic) => {
            shared.http.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
    // Give the peer a chance to read everything before the socket drops.
    let _ = stream.flush();
}

fn route(shared: &Shared, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/readyz") => {
            if shared.state() == RUNNING {
                Response::text(200, "ready\n")
            } else {
                Response::text(503, "draining\n")
            }
        }
        ("GET", "/metrics") => metrics_response(shared),
        ("GET" | "POST", "/query") => query_endpoint(shared, req, false),
        ("POST", "/query_batch") => query_endpoint(shared, req, true),
        // Known path, wrong verb → 405; unknown path → 404.
        (_, "/healthz" | "/readyz" | "/metrics" | "/query" | "/query_batch") => {
            Response::text(405, "method not allowed\n")
        }
        _ => Response::text(404, "not found\n"),
    }
}

fn metrics_response(shared: &Shared) -> Response {
    let mut body = shared.engine.metrics_text();
    body.push_str(&shared.http.render());
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4",
        retry_after_secs: None,
        body: body.into_bytes(),
    }
}

/// One parsed query request (before attr-name resolution).
struct QuerySpec {
    node: u64,
    attr: Option<String>,
    method: Method,
}

fn parse_method(name: &str) -> Result<Method, String> {
    match name {
        "codu" => Ok(Method::Codu),
        "codr" => Ok(Method::Codr),
        "codl_minus" | "codl-" => Ok(Method::CodlMinus),
        "codl" => Ok(Method::Codl),
        other => Err(format!(
            "unknown method {other:?} (expected codu|codr|codl_minus|codl)"
        )),
    }
}

fn spec_from_json(v: &Value) -> Result<QuerySpec, String> {
    let node = v
        .get("node")
        .and_then(Value::as_u64)
        .ok_or("missing or invalid \"node\"")?;
    let attr = match v.get("attr") {
        None | Some(Value::Null) => None,
        Some(a) => Some(a.as_str().ok_or("\"attr\" must be a string")?.to_owned()),
    };
    let method = match v.get("method") {
        None => Method::Codl,
        Some(m) => parse_method(m.as_str().ok_or("\"method\" must be a string")?)?,
    };
    Ok(QuerySpec { node, attr, method })
}

/// Builds the common error body: `{"error": ..., "kind": ...}` plus a
/// retry hint for overload.
fn error_json(e: &CodError) -> String {
    let kind = match e {
        CodError::InvalidQuery(_) => "invalid_query",
        CodError::GraphFormat(_) => "graph_format",
        CodError::IndexCorrupt(_) => "index_corrupt",
        CodError::Io(_) => "io",
        CodError::BudgetExhausted { .. } => "budget_exhausted",
        CodError::DeadlineExceeded => "deadline_exceeded",
        CodError::Overloaded { .. } => "overloaded",
        CodError::ReplayHalted { .. } => "replay_halted",
        CodError::Internal(_) => "internal",
    };
    let mut out = format!(
        "{{\"error\":\"{}\",\"kind\":\"{kind}\"",
        json::escape(&e.to_string())
    );
    if let CodError::Overloaded { retry_after, .. } = e {
        out.push_str(&format!(",\"retry_after_ms\":{}", retry_after.as_millis()));
    }
    out.push('}');
    out
}

/// HTTP status for an engine error (the failure-taxonomy table in
/// `DESIGN.md` §12 mirrors this mapping).
fn error_status(e: &CodError) -> u16 {
    match e {
        CodError::InvalidQuery(_) | CodError::GraphFormat(_) => 400,
        CodError::BudgetExhausted { .. } => 422,
        CodError::DeadlineExceeded => 504,
        CodError::Overloaded { .. } => 503,
        CodError::IndexCorrupt(_)
        | CodError::Io(_)
        | CodError::ReplayHalted { .. }
        | CodError::Internal(_) => 500,
    }
}

fn method_name(m: Method) -> &'static str {
    match m {
        Method::Codu => "codu",
        Method::Codr => "codr",
        Method::CodlMinus => "codl_minus",
        Method::Codl => "codl",
    }
}

fn answer_json(a: &Option<CodAnswer>) -> String {
    let Some(a) = a else {
        return "null".into();
    };
    let members: Vec<String> = a.members.iter().map(|m| m.to_string()).collect();
    let source = match a.source {
        cod_core::AnswerSource::Index => "index",
        cod_core::AnswerSource::Compressed => "compressed",
    };
    let degraded = match a.degraded {
        Some(rung) => format!("\"{}\"", method_name(rung)),
        None => "null".into(),
    };
    format!(
        "{{\"members\":[{}],\"rank\":{},\"source\":\"{source}\",\"uncertain\":{},\"degraded\":{degraded}}}",
        members.join(","),
        a.rank,
        a.uncertain,
    )
}

fn query_endpoint(shared: &Shared, req: &Request, batch: bool) -> Response {
    if shared.state() != RUNNING {
        shared.http.draining_rejects.fetch_add(1, Ordering::Relaxed);
        return Response::text(503, "draining\n").with_retry_after(shared.cfg.drain_deadline);
    }

    // Parse specs + optional deadline from the query string (single GET)
    // or the JSON body.
    let mut deadline_ms: Option<u64> = None;
    let specs: Result<Vec<QuerySpec>, String> = if req.method == "GET" && !batch {
        deadline_ms = req.query_param("deadline_ms").and_then(|v| v.parse().ok());
        (|| {
            let node = req
                .query_param("node")
                .ok_or("missing \"node\" query parameter")?
                .parse::<u64>()
                .map_err(|_| "\"node\" must be a non-negative integer".to_string())?;
            let attr = req.query_param("attr").map(str::to_owned);
            let method = match req.query_param("method") {
                None => Method::Codl,
                Some(m) => parse_method(m)?,
            };
            Ok(vec![QuerySpec { node, attr, method }])
        })()
    } else {
        (|| {
            let text =
                std::str::from_utf8(&req.body).map_err(|_| "body is not UTF-8".to_string())?;
            let v = json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
            deadline_ms = v.get("deadline_ms").and_then(Value::as_u64);
            if batch {
                let items = v
                    .get("queries")
                    .and_then(Value::as_arr)
                    .ok_or("missing \"queries\" array")?;
                if items.is_empty() {
                    return Err("\"queries\" must not be empty".into());
                }
                items.iter().map(spec_from_json).collect()
            } else {
                Ok(vec![spec_from_json(&v)?])
            }
        })()
    };
    let specs = match specs {
        Ok(s) => s,
        Err(msg) => {
            return Response::json(
                400,
                format!(
                    "{{\"error\":\"{}\",\"kind\":\"bad_request\"}}",
                    json::escape(&msg)
                ),
            )
        }
    };

    // Resolve attributes up front so a typo is a 400, not a full
    // evaluation ending in InvalidQuery. Same ladder as the CLI: interned
    // name, then numeric id; an absent attribute defaults to the node's
    // first one (CODU ignores attributes and keeps `None`).
    let graph = shared.engine.graph();
    let interner = graph.interner();
    let mut queries: Vec<Query> = Vec::with_capacity(specs.len());
    for spec in &specs {
        let node = spec.node as cod_graph::NodeId;
        if spec.node >= graph.num_nodes() as u64 {
            return Response::json(
                400,
                format!(
                    "{{\"error\":\"node {} out of range (graph has {} nodes)\",\"kind\":\"bad_request\"}}",
                    spec.node,
                    graph.num_nodes()
                ),
            );
        }
        let attr: Option<AttrId> = match &spec.attr {
            None if spec.method == Method::Codu => None,
            None => graph.node_attrs(node).first().copied(),
            Some(name) => match interner.get(name).or_else(|| name.parse().ok()) {
                Some(id) => Some(id),
                None => {
                    return Response::json(
                        400,
                        format!(
                            "{{\"error\":\"unknown attribute {}\",\"kind\":\"bad_request\"}}",
                            json::escape(&format!("{name:?}"))
                        ),
                    )
                }
            },
        };
        queries.push(Query {
            node,
            attr,
            method: spec.method,
        });
    }

    // The request deadline maps straight into QueryLimits: the engine's
    // cooperative cancellation bounds everything past this point.
    let mut limits: QueryLimits = shared.engine.config().limits;
    let deadline = deadline_ms
        .map(Duration::from_millis)
        .or(shared.cfg.default_deadline);
    if let Some(d) = deadline {
        limits.deadline = Some(match limits.deadline {
            Some(base) => base.min(d),
            None => d,
        });
    }

    failpoint::hit(Site::PreEval, None);
    let idx = shared.req_counter.fetch_add(1, Ordering::Relaxed);
    let mut rng = SmallRng::seed_from_u64(shared.cfg.seed ^ idx.wrapping_mul(0x9e3779b97f4a7c15));
    let results = shared
        .engine
        .query_batch_with_limits(&queries, &limits, &mut rng);

    // Shedding is all-or-nothing per batch: one Overloaded means the
    // whole call was shed, and the 503 carries the engine's retry hint.
    if let Some(Err(e)) = results
        .iter()
        .find(|r| matches!(r, Err(CodError::Overloaded { .. })))
    {
        shared.http.shed_engine.fetch_add(1, Ordering::Relaxed);
        let CodError::Overloaded { retry_after, .. } = e else {
            unreachable!("find matched Overloaded above")
        };
        return Response::json(503, error_json(e)).with_retry_after(*retry_after);
    }

    if batch {
        let items: Vec<String> = results
            .iter()
            .map(|r| match r {
                Ok(a) => format!("{{\"answer\":{}}}", answer_json(a)),
                Err(e) => error_json(e),
            })
            .collect();
        Response::json(200, format!("{{\"results\":[{}]}}", items.join(",")))
    } else {
        match &results[0] {
            Ok(a) => Response::json(200, format!("{{\"answer\":{}}}", answer_json(a))),
            Err(e) => Response::json(error_status(e), error_json(e)),
        }
    }
}
