//! SIGTERM/SIGINT → shutdown flag, without the `libc` crate.
//!
//! The workspace is std-only, so the handler is installed through a raw
//! FFI declaration of `signal(2)` (libc is already linked by std on every
//! supported platform). The handler body does the only async-signal-safe
//! thing possible: a relaxed store to a static flag, which the serving
//! loop polls.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Installs handlers for SIGTERM and SIGINT that set the flag read by
/// [`shutdown_requested`]. Idempotent; a no-op on non-Unix platforms.
pub fn install_shutdown_handler() {
    #[cfg(unix)]
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// Whether a shutdown signal has arrived since process start.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Sets the flag from code (tests, or an admin endpoint), as if a signal
/// had arrived.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_request_sets_the_flag() {
        // Process-global state: this is the only test that touches it,
        // so the flag is still clear when we arrive.
        install_shutdown_handler();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
    }
}
