//! A minimal JSON parser and string escaper for the serve API.
//!
//! The request/response bodies the serving tier exchanges are small and
//! flat, and the build is offline, so this hand-rolls the subset of JSON
//! the API needs: full parsing into a [`Value`] tree (objects, arrays,
//! strings with escapes, f64 numbers, booleans, null) plus an escaping
//! helper for response generation. Not a general-purpose implementation:
//! no streaming, no arbitrary-precision numbers, recursion depth capped.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses `text` as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        if self.depth >= MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => {
                self.depth += 1;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(b'[') => {
                self.depth += 1;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!(
                "unexpected byte {:?} at offset {}",
                b as char, self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {text:?} at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Surrogate pairs unsupported; BMP only.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Re-decode the multi-byte UTF-8 sequence.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = s.chars().next().ok_or("empty decode")?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_query_object() {
        let v = parse(r#"{"node": 3, "attr": "ML", "method": "codl", "deadline_ms": 50}"#).unwrap();
        assert_eq!(v.get("node").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("attr").and_then(Value::as_str), Some("ML"));
        assert_eq!(v.get("deadline_ms").and_then(Value::as_u64), Some(50));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_nested_batch() {
        let v = parse(r#"{"queries": [{"node": 0}, {"node": 1, "attr": "A"}]}"#).unwrap();
        let qs = v.get("queries").and_then(Value::as_arr).unwrap();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[1].get("attr").and_then(Value::as_str), Some("A"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse(r#"{"a": 1} trailing"#).is_err());
        assert!(parse("nul").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn rejects_runaway_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nwith \"quotes\" and \\slashes\\ and unicode é";
        let wire = format!("\"{}\"", escape(original));
        let v = parse(&wire).unwrap();
        assert_eq!(v.as_str(), Some(original));
    }

    #[test]
    fn numbers_parse_and_validate() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("1e2").unwrap().as_u64(), Some(100));
    }
}
