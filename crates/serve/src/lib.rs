//! `cod-serve`: a std-only HTTP/1.1 serving tier for the COD engine.
//!
//! The engine ([`cod_core::CodEngine`]) already carries every governance
//! primitive a long-lived service needs — per-query deadlines, admission
//! control with retriable shedding, a degradation ladder, panic isolation,
//! Prometheus metrics. This crate gives it a socket. The build environment
//! is offline, so there is no tokio or hyper: a [`std::net::TcpListener`]
//! acceptor feeds a bounded queue drained by a fixed worker pool, and the
//! HTTP parsing/writing is hand-rolled in [`http`] (one request per
//! connection, `Connection: close`).
//!
//! # Endpoints
//!
//! | endpoint | method | purpose |
//! |---|---|---|
//! | `/query` | GET/POST | one COD query (query-string or JSON body) |
//! | `/query_batch` | POST | a JSON batch, one result per query |
//! | `/metrics` | GET | engine + serve Prometheus exposition |
//! | `/healthz` | GET | liveness — 200 whenever the process can answer |
//! | `/readyz` | GET | readiness — 503 once draining begins |
//!
//! # Robustness contract
//!
//! * per-connection read/write timeouts and a request-size cap;
//! * request `deadline_ms` mapped into [`cod_core::QueryLimits`], so the
//!   engine's cooperative cancellation bounds every request;
//! * overload sheds at the socket (bounded accept queue → immediate 503 +
//!   `Retry-After`) and at the engine (`CodError::Overloaded` → 503 with
//!   the error's own hint);
//! * `catch_unwind` around parse, route/eval and response-write, so one
//!   poisoned request never kills a worker or the listener;
//! * graceful shutdown: stop admitting, flip `/readyz`, drain in-flight
//!   within [`ServeConfig::drain_deadline`], then force the stragglers
//!   through the engine kill switch and join every thread.
//!
//! See `DESIGN.md` §12 for the threading model and the drain state
//! machine, and `tests/serve.rs` for the chaos suite driving all of the
//! above under armed failpoints.

pub mod http;
pub mod json;
mod server;
pub mod signal;

pub use server::{
    serve, serve_handle, serve_recovering, EngineHandle, HttpStats, RecoveringServer, ServeConfig,
    ServerHandle, ShutdownReport,
};
