//! Divisive (top-down) hierarchical clustering by recursive bisection.
//!
//! The paper frames COD over *any* hierarchical graph clustering method
//! (§II-B lists divisive methods \[15, 43–45\] alongside the agglomerative
//! family it adopts). This module provides a divisive alternative for
//! ablations: recursive bisection with double-BFS seeding and a
//! Fiduccia–Mattheyses-style greedy refinement pass, producing the same
//! [`Dendrogram`] type as [`crate::nnchain`].
//!
//! Compared with NN-chain average linkage, recursive bisection yields much
//! more *balanced* hierarchies (depth `O(log n)` on well-behaved graphs) —
//! useful to quantify how hierarchy skew drives HIMOR construction cost
//! (paper Table II discussion).

use cod_graph::{Csr, NodeId};

use crate::dendrogram::Dendrogram;
use crate::nnchain::Merge;

/// Builds a dendrogram by recursive balanced bisection.
pub fn bisect(g: &Csr) -> Dendrogram {
    let n = g.num_nodes();
    assert!(n >= 1, "bisection needs at least one node");
    if n == 1 {
        return Dendrogram::singleton();
    }

    // Split tree: children are created after their parent, so iterating
    // part indices in reverse visits children first.
    enum Part {
        Leaf(NodeId),
        Internal(usize, usize),
    }
    let mut parts: Vec<Option<Part>> = vec![None];
    let mut stack: Vec<(Vec<NodeId>, usize)> = vec![((0..n as NodeId).collect(), 0)];
    let mut side = vec![0u8; n]; // scratch for partitioning
    while let Some((set, slot)) = stack.pop() {
        if set.len() == 1 {
            parts[slot] = Some(Part::Leaf(set[0]));
            continue;
        }
        let (a, b) = bipartition(g, &set, &mut side);
        let ia = parts.len();
        parts.push(None);
        let ib = parts.len();
        parts.push(None);
        parts[slot] = Some(Part::Internal(ia, ib));
        stack.push((a, ia));
        stack.push((b, ib));
    }

    // Emit merges children-first.
    let mut vertex_of = vec![0u32; parts.len()];
    let mut merges: Vec<Merge> = Vec::with_capacity(n - 1);
    for i in (0..parts.len()).rev() {
        let Some(part) = parts[i].as_ref() else {
            unreachable!("every slot is filled before the reverse walk");
        };
        match part {
            Part::Leaf(v) => vertex_of[i] = *v,
            Part::Internal(a, b) => {
                let m = Merge {
                    a: vertex_of[*a],
                    b: vertex_of[*b],
                };
                vertex_of[i] = (n + merges.len()) as u32;
                merges.push(m);
            }
        }
    }
    // Children always have larger part indices than their parent, so the
    // reverse walk above emitted every child merge before its parent and
    // all operand ids are valid.
    Dendrogram::from_merges(n, &merges)
}

/// Splits `set` into two non-empty halves: separated components if the
/// induced subgraph is disconnected, otherwise double-BFS seeded balanced
/// growth plus one greedy refinement pass. `side` is caller scratch of
/// size `|V|`.
fn bipartition(g: &Csr, set: &[NodeId], side: &mut [u8]) -> (Vec<NodeId>, Vec<NodeId>) {
    debug_assert!(set.len() >= 2);
    // side: 0 = not in set, 1 = side A, 2 = side B, 3 = in set, unassigned.
    for &v in set {
        side[v as usize] = 3;
    }

    // Component check via BFS from set[0].
    let mut comp = Vec::with_capacity(set.len());
    comp.push(set[0]);
    side[set[0] as usize] = 1;
    let mut head = 0;
    while head < comp.len() {
        let v = comp[head];
        head += 1;
        for &u in g.neighbors(v) {
            if side[u as usize] == 3 {
                side[u as usize] = 1;
                comp.push(u);
            }
        }
    }
    if comp.len() < set.len() {
        // Disconnected: first component vs the rest.
        let a = comp;
        let b: Vec<NodeId> = set
            .iter()
            .copied()
            .filter(|&v| side[v as usize] == 3)
            .collect();
        for &v in set {
            side[v as usize] = 0;
        }
        return (a, b);
    }

    // Double-BFS diameter endpoints as seeds.
    let Some(&s1) = comp.last() else {
        unreachable!("bipartition is only called on non-empty sets");
    };
    for &v in set {
        side[v as usize] = 3;
    }
    let s2 = bfs_farthest(g, s1, set, side);

    // Balanced growth: the smaller side claims one node per step from its
    // candidate frontier; a side whose frontier is exhausted *steals* an
    // arbitrary unassigned node, so the split stays near-balanced even on
    // stars and other frontier-starving topologies.
    for &v in set {
        side[v as usize] = 3;
    }
    side[s1 as usize] = 1;
    side[s2 as usize] = 2;
    let mut cand_a: Vec<NodeId> = g.neighbors(s1).to_vec();
    let mut cand_b: Vec<NodeId> = g.neighbors(s2).to_vec();
    let (mut ha, mut hb) = (0usize, 0usize);
    let (mut ca, mut cb) = (1usize, 1usize);
    let mut unassigned = set.len() - 2;
    let mut steal_cursor = 0usize;
    while unassigned > 0 {
        let grow_a = ca <= cb;
        let (cand, head, mark) = if grow_a {
            (&mut cand_a, &mut ha, 1u8)
        } else {
            (&mut cand_b, &mut hb, 2u8)
        };
        // Next unassigned candidate of this side, if any.
        let mut claimed = None;
        while *head < cand.len() {
            let v = cand[*head];
            *head += 1;
            if side[v as usize] == 3 {
                claimed = Some(v);
                break;
            }
        }
        let v = claimed.unwrap_or_else(|| {
            // Frontier exhausted: steal any unassigned node.
            loop {
                let v = set[steal_cursor];
                steal_cursor += 1;
                if side[v as usize] == 3 {
                    break v;
                }
            }
        });
        side[v as usize] = mark;
        if grow_a {
            ca += 1;
        } else {
            cb += 1;
        }
        unassigned -= 1;
        let cand = if grow_a { &mut cand_a } else { &mut cand_b };
        for &u in g.neighbors(v) {
            if side[u as usize] == 3 {
                cand.push(u);
            }
        }
    }

    // One FM-style refinement pass: move nodes with positive cut gain,
    // never shrinking a side below a quarter of the set.
    let min_side = (set.len() / 4).max(1);
    for &v in set {
        let mine = side[v as usize];
        let other = 3 - mine; // 1 <-> 2
        let (mut to_mine, mut to_other) = (0i64, 0i64);
        for &u in g.neighbors(v) {
            if side[u as usize] == mine {
                to_mine += 1;
            } else if side[u as usize] == other {
                to_other += 1;
            }
        }
        let (cur, oth) = if mine == 1 {
            (&mut ca, &mut cb)
        } else {
            (&mut cb, &mut ca)
        };
        if to_other > to_mine && *cur > min_side {
            side[v as usize] = other;
            *cur -= 1;
            *oth += 1;
        }
    }

    let mut a = Vec::with_capacity(ca);
    let mut b = Vec::with_capacity(cb);
    for &v in set {
        if side[v as usize] == 1 {
            a.push(v);
        } else {
            b.push(v);
        }
        side[v as usize] = 0;
    }
    debug_assert!(!a.is_empty() && !b.is_empty());
    (a, b)
}

/// The farthest node from `start` within `set` (BFS). `side` holds value 3
/// for set members on entry, and is restored to 3 before returning.
fn bfs_farthest(g: &Csr, start: NodeId, set: &[NodeId], side: &mut [u8]) -> NodeId {
    let mut queue = vec![start];
    side[start as usize] = 1;
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for &u in g.neighbors(v) {
            if side[u as usize] == 3 {
                side[u as usize] = 1;
                queue.push(u);
            }
        }
    }
    let Some(&far) = queue.last() else {
        unreachable!("BFS starts with the seed enqueued");
    };
    for &v in set {
        side[v as usize] = 3;
    }
    far
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::GraphBuilder;

    fn barbell() -> Csr {
        let mut b = GraphBuilder::new(8);
        for (u, v) in [
            (0, 1),
            (1, 2),
            (0, 2),
            (3, 4),
            (4, 5),
            (3, 5),
            (2, 3),
            (5, 6),
            (6, 7),
        ] {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn produces_full_dendrogram() {
        let g = barbell();
        let d = bisect(&g);
        assert_eq!(d.num_leaves(), 8);
        assert_eq!(d.num_vertices(), 15);
        assert_eq!(d.size(d.root()), 8);
    }

    #[test]
    fn root_split_is_roughly_balanced() {
        let g = barbell();
        let d = bisect(&g);
        let [a, b] = d.children(d.root());
        let small = d.size(a).min(d.size(b));
        assert!(small >= 2, "root split {}/{}", d.size(a), d.size(b));
    }

    #[test]
    fn handles_disconnected_graphs() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        b.add_edge(4, 5);
        let d = bisect(&b.build());
        assert_eq!(d.size(d.root()), 6);
        // Each pair must appear as a community somewhere.
        let has =
            |want: &[NodeId]| (0..d.num_vertices() as u32).any(|v| d.members_sorted(v) == want);
        assert!(has(&[0, 1]) && has(&[2, 3]) && has(&[4, 5]));
    }

    #[test]
    fn singleton_graph() {
        let d = bisect(&GraphBuilder::new(1).build());
        assert_eq!(d.num_leaves(), 1);
    }

    #[test]
    fn more_balanced_than_a_star_merge_chain() {
        // A star: agglomerative merging absorbs leaves one at a time
        // (depth O(n)); bisection splits it logarithmically.
        let mut b = GraphBuilder::new(64);
        for v in 1..64 {
            b.add_edge(0, v);
        }
        let g = b.build();
        let divisive = bisect(&g);
        let agglomerative = Dendrogram::from_merges(
            64,
            &crate::nnchain::cluster_unweighted(&g, crate::linkage::Linkage::Average),
        );
        assert!(
            divisive.avg_chain_len() < agglomerative.avg_chain_len() / 2.0,
            "divisive {:.1} vs agglomerative {:.1}",
            divisive.avg_chain_len(),
            agglomerative.avg_chain_len()
        );
    }

    #[test]
    fn works_on_random_graphs() {
        use rand::prelude::*;
        let mut rng = SmallRng::seed_from_u64(77);
        for n in [2usize, 3, 5, 17, 50] {
            let mut b = GraphBuilder::new(n);
            for v in 1..n as NodeId {
                b.add_edge(rng.random_range(0..v), v);
            }
            for _ in 0..n {
                let u = rng.random_range(0..n as NodeId);
                let v = rng.random_range(0..n as NodeId);
                b.add_edge(u, v);
            }
            let d = bisect(&b.build());
            assert_eq!(d.num_leaves(), n);
            assert_eq!(d.size(d.root()), n);
        }
    }
}
