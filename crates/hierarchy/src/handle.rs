//! Cheap `Arc`-shareable hierarchy handles.
//!
//! A prepared hierarchy is always the *pair* of a [`Dendrogram`] and its
//! [`LcaIndex`] — every COD algorithm that walks `H(q)` also asks `lca`
//! queries against the same tree. [`Hierarchy`] bundles the two so a serving
//! layer can hold one `Arc<Hierarchy>` per prepared artifact and hand clones
//! of the pointer to concurrent queries without re-deriving the LCA sparse
//! table each time.

use std::sync::Arc;

use crate::dendrogram::Dendrogram;
use crate::lca::LcaIndex;

/// An immutable dendrogram plus its LCA index, built once and shared.
///
/// The `LcaIndex` is derived from the dendrogram at construction, so the two
/// can never drift apart. Fields are public for read access; the struct has
/// no mutating methods.
pub struct Hierarchy {
    /// The community tree `T` (or a reclustered `T_ℓ`).
    pub dendro: Dendrogram,
    /// Constant-time LCA over `dendro`.
    pub lca: LcaIndex,
}

impl Hierarchy {
    /// Wraps a dendrogram, building its LCA index (`O(V log V)`).
    pub fn new(dendro: Dendrogram) -> Self {
        let lca = LcaIndex::new(&dendro);
        Self { dendro, lca }
    }

    /// Convenience: `Arc::new(Hierarchy::new(dendro))`.
    pub fn shared(dendro: Dendrogram) -> SharedHierarchy {
        Arc::new(Self::new(dendro))
    }
}

impl std::fmt::Debug for Hierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hierarchy")
            .field("num_vertices", &self.dendro.num_vertices())
            .finish_non_exhaustive()
    }
}

/// A reference-counted handle to a prepared [`Hierarchy`].
///
/// Cloning is a pointer bump; the underlying dendrogram and LCA tables are
/// never copied.
pub type SharedHierarchy = Arc<Hierarchy>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_clones_share_storage() {
        let (d, _) = crate::dendrogram::tests::fig2();
        let h = Hierarchy::shared(d.clone());
        let h2 = Arc::clone(&h);
        assert_eq!(h.dendro.num_vertices(), d.num_vertices());
        assert_eq!(
            h2.lca.lca(0, 6),
            LcaIndex::new(&d).lca(0, 6),
            "shared handle answers the same LCA queries"
        );
        assert_eq!(Arc::strong_count(&h), 2);
    }
}
