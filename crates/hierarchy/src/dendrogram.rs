//! The community hierarchy `T` as a rooted binary dendrogram.

use cod_graph::NodeId;

use crate::nnchain::Merge;

/// Identifier of a dendrogram vertex. Leaves are `0..num_leaves` (equal to
/// the graph's [`NodeId`]s); internal vertices follow in merge order.
pub type VertexId = u32;

/// Sentinel for "no vertex" (the root's parent).
pub const NO_VERTEX: VertexId = u32::MAX;

/// Why a merge sequence does not describe a valid dendrogram.
///
/// Returned by [`Dendrogram::try_from_merges`]; the panicking
/// [`Dendrogram::from_merges`] reports the same conditions via its panic
/// message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DendrogramError {
    /// `num_leaves == 0`.
    NoLeaves,
    /// The merge count is not `num_leaves - 1`.
    WrongMergeCount { num_leaves: usize, merges: usize },
    /// Merge `index` references a vertex that does not exist yet.
    FutureVertex { index: usize, vertex: VertexId },
    /// A vertex appears as a merge operand twice.
    VertexReused { vertex: VertexId },
    /// The merges leave more than one tree component.
    Disconnected,
}

impl std::fmt::Display for DendrogramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DendrogramError::NoLeaves => write!(f, "dendrogram needs at least one leaf"),
            DendrogramError::WrongMergeCount { num_leaves, merges } => write!(
                f,
                "a full hierarchy over {num_leaves} leaves needs {} merges, got {merges}",
                num_leaves.saturating_sub(1)
            ),
            DendrogramError::FutureVertex { index, vertex } => {
                write!(f, "merge {index} uses future vertex {vertex}")
            }
            DendrogramError::VertexReused { vertex } => write!(f, "vertex {vertex} merged twice"),
            DendrogramError::Disconnected => write!(f, "merges do not form one tree"),
        }
    }
}

impl std::error::Error for DendrogramError {}

/// A rooted binary community hierarchy over the nodes of a graph.
///
/// Every vertex corresponds to a community: a leaf holds a single graph
/// node, the root holds all nodes (paper §II-A). Depth follows the paper's
/// convention: `dep(root) = 1`, increasing toward the leaves, so along the
/// root path of a node the communities `C_0(q), C_1(q), ...` (deepest first)
/// have depths `|H(q)|, |H(q)|-1, ..., 1`.
///
/// Internally each vertex stores the half-open interval of positions its
/// leaves occupy in a DFS leaf ordering, giving O(1) membership tests and
/// O(|C|) member enumeration.
#[derive(Clone, Debug)]
pub struct Dendrogram {
    num_leaves: usize,
    parent: Vec<VertexId>,
    children: Vec<[VertexId; 2]>,
    size: Vec<u32>,
    depth: Vec<u32>,
    root: VertexId,
    /// Leaves (graph nodes) in DFS order.
    leaf_order: Vec<NodeId>,
    /// Position of each leaf in `leaf_order`.
    leaf_pos: Vec<u32>,
    /// Leaf interval `[start, end)` of each vertex in `leaf_order`.
    range: Vec<(u32, u32)>,
}

impl Dendrogram {
    /// Builds a dendrogram over `num_leaves` graph nodes from a merge
    /// sequence (as produced by [`crate::nnchain::cluster`]).
    ///
    /// The merges must form a single tree: exactly `num_leaves - 1` merges,
    /// each operand being either a leaf (`< num_leaves`) or the result of an
    /// earlier merge (`num_leaves + i` for merge `i`), and each used at most
    /// once. Panics otherwise — callers handling untrusted merge data (e.g.
    /// a persisted index) should use [`Dendrogram::try_from_merges`].
    pub fn from_merges(num_leaves: usize, merges: &[Merge]) -> Self {
        match Self::try_from_merges(num_leaves, merges) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Dendrogram::from_merges`]: validates the merge
    /// sequence and returns a [`DendrogramError`] instead of panicking, so
    /// untrusted inputs (persisted indices, user-supplied hierarchies) can
    /// never abort the process.
    pub fn try_from_merges(num_leaves: usize, merges: &[Merge]) -> Result<Self, DendrogramError> {
        if num_leaves == 0 {
            return Err(DendrogramError::NoLeaves);
        }
        if merges.len() != num_leaves - 1 {
            return Err(DendrogramError::WrongMergeCount {
                num_leaves,
                merges: merges.len(),
            });
        }
        let num_vertices = num_leaves + merges.len();
        let mut parent = vec![NO_VERTEX; num_vertices];
        let mut children = vec![[NO_VERTEX; 2]; num_vertices];
        let mut size = vec![1u32; num_vertices];
        for (i, m) in merges.iter().enumerate() {
            let v = (num_leaves + i) as VertexId;
            for &c in &[m.a, m.b] {
                if (c as usize) >= num_leaves + i {
                    return Err(DendrogramError::FutureVertex {
                        index: i,
                        vertex: c,
                    });
                }
                if parent[c as usize] != NO_VERTEX {
                    return Err(DendrogramError::VertexReused { vertex: c });
                }
                parent[c as usize] = v;
            }
            children[v as usize] = [m.a, m.b];
            size[v as usize] = size[m.a as usize] + size[m.b as usize];
        }
        let root = (num_vertices - 1) as VertexId;
        if parent[root as usize] != NO_VERTEX || size[root as usize] as usize != num_leaves {
            return Err(DendrogramError::Disconnected);
        }

        // Iterative DFS: depths (root = 1) and leaf intervals.
        let mut depth = vec![0u32; num_vertices];
        let mut range = vec![(0u32, 0u32); num_vertices];
        let mut leaf_order = Vec::with_capacity(num_leaves);
        let mut leaf_pos = vec![0u32; num_leaves];
        depth[root as usize] = 1;
        // Stack entries: (vertex, entered). On exit we know the interval end.
        let mut stack = vec![(root, false)];
        while let Some((v, entered)) = stack.pop() {
            if entered {
                range[v as usize].1 = leaf_order.len() as u32;
                continue;
            }
            range[v as usize].0 = leaf_order.len() as u32;
            if (v as usize) < num_leaves {
                leaf_pos[v as usize] = leaf_order.len() as u32;
                leaf_order.push(v as NodeId);
                range[v as usize].1 = leaf_order.len() as u32;
                continue;
            }
            stack.push((v, true));
            let [a, b] = children[v as usize];
            depth[a as usize] = depth[v as usize] + 1;
            depth[b as usize] = depth[v as usize] + 1;
            stack.push((b, false));
            stack.push((a, false));
        }

        Ok(Self {
            num_leaves,
            parent,
            children,
            size,
            depth,
            root,
            leaf_order,
            leaf_pos,
            range,
        })
    }

    /// A trivial hierarchy over one node (its leaf is the root).
    pub fn singleton() -> Self {
        Self::from_merges(1, &[])
    }

    /// Number of graph nodes (= leaves).
    #[inline]
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Total number of vertices (leaves + internal communities).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.parent.len()
    }

    /// The root vertex (the community holding all nodes).
    #[inline]
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// Parent of `v`, or [`NO_VERTEX`] for the root.
    #[inline]
    pub fn parent(&self, v: VertexId) -> VertexId {
        self.parent[v as usize]
    }

    /// Children of an internal vertex (`[NO_VERTEX; 2]` for leaves).
    #[inline]
    pub fn children(&self, v: VertexId) -> [VertexId; 2] {
        self.children[v as usize]
    }

    /// Whether `v` is a leaf.
    #[inline]
    pub fn is_leaf(&self, v: VertexId) -> bool {
        (v as usize) < self.num_leaves
    }

    /// Community size `|C|` (number of leaves under `v`).
    #[inline]
    pub fn size(&self, v: VertexId) -> usize {
        self.size[v as usize] as usize
    }

    /// Depth of `v`: `dep(root) = 1`, increasing toward leaves (paper §II-A
    /// convention, cf. Examples 2 and 5).
    #[inline]
    pub fn depth(&self, v: VertexId) -> u32 {
        self.depth[v as usize]
    }

    /// The leaf vertex of graph node `u` (identical id).
    #[inline]
    pub fn leaf(&self, u: NodeId) -> VertexId {
        debug_assert!((u as usize) < self.num_leaves);
        u as VertexId
    }

    /// Whether community `v` contains graph node `u` (O(1) interval test).
    #[inline]
    pub fn contains(&self, v: VertexId, u: NodeId) -> bool {
        let p = self.leaf_pos[u as usize];
        let (s, e) = self.range[v as usize];
        s <= p && p < e
    }

    /// Whether `a`'s community is a subset of (or equal to) `b`'s.
    #[inline]
    pub fn is_descendant(&self, a: VertexId, b: VertexId) -> bool {
        let (sa, ea) = self.range[a as usize];
        let (sb, eb) = self.range[b as usize];
        sb <= sa && ea <= eb
    }

    /// The half-open interval of positions community `v`'s leaves occupy in
    /// the DFS leaf order (the span backing [`Dendrogram::members`]).
    #[inline]
    pub fn leaf_span(&self, v: VertexId) -> (u32, u32) {
        self.range[v as usize]
    }

    /// The DFS leaf order backing the membership intervals.
    #[inline]
    pub fn leaf_order(&self) -> &[NodeId] {
        &self.leaf_order
    }

    /// The graph nodes of community `v`, in DFS order (not sorted by id).
    #[inline]
    pub fn members(&self, v: VertexId) -> &[NodeId] {
        let (s, e) = self.range[v as usize];
        &self.leaf_order[s as usize..e as usize]
    }

    /// The graph nodes of community `v`, sorted ascending by node id.
    pub fn members_sorted(&self, v: VertexId) -> Vec<NodeId> {
        let mut m = self.members(v).to_vec();
        m.sort_unstable();
        m
    }

    /// The hierarchical communities `H(u)` of node `u`: all ancestors of its
    /// leaf, from the deepest (`C_0(u)`, the leaf's parent) to the root
    /// (paper §II-A). Empty when the leaf is itself the root (1-node graph).
    pub fn root_path(&self, u: NodeId) -> Vec<VertexId> {
        let mut path = Vec::with_capacity(self.depth[u as usize] as usize);
        let mut v = self.parent[u as usize];
        while v != NO_VERTEX {
            path.push(v);
            v = self.parent[v as usize];
        }
        path
    }

    /// Cuts the hierarchy into (at most) `k` clusters by repeatedly
    /// splitting the shallowest current cluster root, and returns the
    /// per-node cluster labels in `0..returned_k`.
    ///
    /// This is the standard dendrogram flat-cut used to compare a
    /// hierarchy against ground-truth communities (NMI/ARI validation of
    /// the dataset presets). `k` is clamped to `[1, num_leaves]`.
    pub fn cut(&self, k: usize) -> Vec<u32> {
        let k = k.clamp(1, self.num_leaves);
        // Max-heap by (shallowest depth first, then largest size) so the
        // splits peel the top of the tree.
        use std::cmp::Reverse;
        let mut heap: std::collections::BinaryHeap<(Reverse<u32>, u32, VertexId)> =
            std::collections::BinaryHeap::new();
        heap.push((
            Reverse(self.depth(self.root)),
            self.size[self.root as usize],
            self.root,
        ));
        let mut roots = Vec::with_capacity(k);
        while roots.len() + heap.len() < k {
            let Some((_, _, v)) = heap.pop() else { break };
            if self.is_leaf(v) {
                roots.push(v);
                continue;
            }
            for c in self.children(v) {
                heap.push((Reverse(self.depth(c)), self.size[c as usize], c));
            }
        }
        roots.extend(heap.into_iter().map(|(_, _, v)| v));
        let mut labels = vec![0u32; self.num_leaves];
        for (i, &r) in roots.iter().enumerate() {
            for &leaf in self.members(r) {
                labels[leaf as usize] = i as u32;
            }
        }
        labels
    }

    /// The merge sequence that reconstructs this dendrogram via
    /// [`Dendrogram::from_merges`] (used by on-disk persistence).
    pub fn merges(&self) -> Vec<Merge> {
        (self.num_leaves..self.num_vertices())
            .map(|v| {
                let [a, b] = self.children[v];
                Merge { a, b }
            })
            .collect()
    }

    /// Sum of leaf depths `Σ_v dep(v)` — the balancedness term in the
    /// HIMOR construction cost (paper Theorem 6, Table II discussion).
    pub fn total_leaf_depth(&self) -> u64 {
        (0..self.num_leaves).map(|v| u64::from(self.depth[v])).sum()
    }

    /// Average number of hierarchical communities per node,
    /// `|H̄(q)| = avg_u |H(u)|` (paper Table I reports this).
    pub fn avg_chain_len(&self) -> f64 {
        if self.num_leaves == 0 {
            return 0.0;
        }
        let total: u64 = (0..self.num_leaves)
            .map(|v| u64::from(self.depth[v]) - 1)
            .sum();
        total as f64 / self.num_leaves as f64
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// The paper's Fig. 2 hierarchy (10 nodes):
    /// `C_0 = {0,1,2,3}`, `C_1 = {4,5}`, `C_2 = {6,7}`, `C_3 = C_0 ∪ C_2`,
    /// `C_4 = C_3 ∪ C_1`, `C_5 = {8,9}`, `C_6 = C_4 ∪ C_5` (root).
    ///
    /// Binary refinement: `C_0` is built from three binary merges; the
    /// communities named in the paper appear as explicit vertices.
    pub(crate) fn fig2() -> (Dendrogram, Fig2Vertices) {
        let merges = vec![
            Merge { a: 0, b: 1 },   // 10 = {0,1}
            Merge { a: 10, b: 2 },  // 11 = {0,1,2}
            Merge { a: 11, b: 3 },  // 12 = C_0 = {0,1,2,3}
            Merge { a: 4, b: 5 },   // 13 = C_1 = {4,5}
            Merge { a: 6, b: 7 },   // 14 = C_2 = {6,7}
            Merge { a: 12, b: 14 }, // 15 = C_3 = {0,1,2,3,6,7}
            Merge { a: 15, b: 13 }, // 16 = C_4 = {0..7}
            Merge { a: 8, b: 9 },   // 17 = C_5 = {8,9}
            Merge { a: 16, b: 17 }, // 18 = C_6 = all
        ];
        let d = Dendrogram::from_merges(10, &merges);
        let v = Fig2Vertices {
            c0: 12,
            c1: 13,
            c2: 14,
            c3: 15,
            c4: 16,
            c5: 17,
            c6: 18,
        };
        (d, v)
    }

    #[allow(dead_code)] // fixture mirrors all named communities of Fig. 2
    pub(crate) struct Fig2Vertices {
        pub c0: VertexId,
        pub c1: VertexId,
        pub c2: VertexId,
        pub c3: VertexId,
        pub c4: VertexId,
        pub c5: VertexId,
        pub c6: VertexId,
    }

    #[test]
    fn fig2_sizes_and_depths() {
        let (d, v) = fig2();
        assert_eq!(d.size(v.c0), 4);
        assert_eq!(d.size(v.c3), 6);
        assert_eq!(d.size(v.c4), 8);
        assert_eq!(d.size(v.c6), 10);
        // Paper convention: dep(C_6)=1, dep(C_4)=2, dep(C_3)=3 (Example 2).
        assert_eq!(d.depth(v.c6), 1);
        assert_eq!(d.depth(v.c4), 2);
        assert_eq!(d.depth(v.c3), 3);
        assert_eq!(d.depth(v.c0), 4);
    }

    #[test]
    fn fig2_membership() {
        let (d, v) = fig2();
        for u in 0..4 {
            assert!(d.contains(v.c0, u));
        }
        assert!(!d.contains(v.c0, 4));
        assert!(d.contains(v.c3, 6));
        assert!(!d.contains(v.c3, 5));
        assert!(d.contains(v.c6, 9));
    }

    #[test]
    fn fig2_root_path_matches_example_2() {
        let (d, v) = fig2();
        // H(v_0) = {C_0, C_3, C_4, C_6} (plus binary refinement vertices).
        let path = d.root_path(0);
        let named: Vec<_> = path
            .iter()
            .copied()
            .filter(|&x| [v.c0, v.c3, v.c4, v.c6].contains(&x))
            .collect();
        assert_eq!(named, vec![v.c0, v.c3, v.c4, v.c6]);
        assert_eq!(*path.last().unwrap(), d.root());
    }

    #[test]
    fn members_sorted() {
        let (d, v) = fig2();
        assert_eq!(d.members_sorted(v.c3), vec![0, 1, 2, 3, 6, 7]);
        assert_eq!(d.members_sorted(v.c1), vec![4, 5]);
    }

    #[test]
    fn descendant_relation() {
        let (d, v) = fig2();
        assert!(d.is_descendant(v.c0, v.c3));
        assert!(d.is_descendant(v.c3, v.c3));
        assert!(!d.is_descendant(v.c3, v.c0));
        assert!(!d.is_descendant(v.c1, v.c3));
        assert!(d.is_descendant(v.c1, v.c4));
    }

    #[test]
    fn singleton_dendrogram() {
        let d = Dendrogram::singleton();
        assert_eq!(d.num_leaves(), 1);
        assert_eq!(d.root(), 0);
        assert!(d.root_path(0).is_empty());
        assert_eq!(d.members(0), &[0]);
    }

    #[test]
    fn avg_chain_len_on_fig2() {
        let (d, _) = fig2();
        // Each leaf's chain is its depth - 1.
        let manual: f64 = (0..10).map(|u| d.root_path(u).len() as f64).sum::<f64>() / 10.0;
        assert!((d.avg_chain_len() - manual).abs() < 1e-12);
    }

    #[test]
    fn cut_peels_the_top_of_the_tree() {
        let (d, v) = fig2();
        // k = 2: the root's children C_4 and C_5.
        let l2 = d.cut(2);
        for u in 0..8u32 {
            assert_eq!(l2[u as usize], l2[0], "C_4 side");
        }
        assert_eq!(l2[8], l2[9]);
        assert_ne!(l2[0], l2[8]);
        // k = 3: C_3, C_1, C_5.
        let l3 = d.cut(3);
        let groups: std::collections::BTreeSet<u32> = l3.iter().copied().collect();
        assert_eq!(groups.len(), 3);
        assert_eq!(l3[4], l3[5]); // C_1
        assert_eq!(l3[0], l3[6]); // C_3 contains 0..3 and 6,7
        let _ = v;
    }

    #[test]
    fn cut_extremes() {
        let (d, _) = fig2();
        assert!(d.cut(1).iter().all(|&l| l == 0));
        let full = d.cut(10);
        let distinct: std::collections::BTreeSet<u32> = full.iter().copied().collect();
        assert_eq!(distinct.len(), 10);
        // Oversized k clamps.
        assert_eq!(d.cut(99), full);
    }

    #[test]
    #[should_panic(expected = "merged twice")]
    fn rejects_reused_vertex() {
        let merges = vec![Merge { a: 0, b: 1 }, Merge { a: 0, b: 2 }];
        let _ = Dendrogram::from_merges(3, &merges);
    }

    #[test]
    #[should_panic(expected = "needs 2 merges")]
    fn rejects_wrong_merge_count() {
        let _ = Dendrogram::from_merges(3, &[Merge { a: 0, b: 1 }]);
    }

    #[test]
    fn try_from_merges_reports_each_defect() {
        assert_eq!(
            Dendrogram::try_from_merges(0, &[]).unwrap_err(),
            DendrogramError::NoLeaves
        );
        assert_eq!(
            Dendrogram::try_from_merges(3, &[Merge { a: 0, b: 1 }]).unwrap_err(),
            DendrogramError::WrongMergeCount {
                num_leaves: 3,
                merges: 1
            }
        );
        assert_eq!(
            Dendrogram::try_from_merges(2, &[Merge { a: 0, b: 9 }]).unwrap_err(),
            DendrogramError::FutureVertex {
                index: 0,
                vertex: 9
            }
        );
        assert_eq!(
            Dendrogram::try_from_merges(3, &[Merge { a: 0, b: 1 }, Merge { a: 0, b: 2 }])
                .unwrap_err(),
            DendrogramError::VertexReused { vertex: 0 }
        );
    }

    #[test]
    fn try_from_merges_accepts_valid_input() {
        let merges = vec![Merge { a: 0, b: 1 }, Merge { a: 3, b: 2 }];
        let d = Dendrogram::try_from_merges(3, &merges).unwrap();
        assert_eq!(d.num_leaves(), 3);
        assert_eq!(d.size(d.root()), 3);
    }
}
