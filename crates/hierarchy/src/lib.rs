//! Hierarchical agglomerative graph clustering and dendrogram utilities.
//!
//! The COD problem (paper §II) is defined over a *community hierarchy* `T`
//! produced by any hierarchical graph clustering method; following the
//! paper's §V-A we implement the **nearest-neighbour chain** algorithm
//! ([`nnchain`]) with the **unweighted-average linkage** function (plus
//! single and complete linkage for ablations, [`linkage`]).
//!
//! The resulting [`Dendrogram`] offers exactly the operations the COD
//! algorithms need:
//!
//! * `H(q)` extraction — [`Dendrogram::root_path`] lists the ancestor
//!   communities of a node from deepest to the root;
//! * constant-time membership tests via DFS leaf intervals
//!   ([`Dendrogram::contains`]);
//! * constant-time lowest common ancestors via an Euler tour + sparse-table
//!   RMQ ([`lca::LcaIndex`], Bender et al. \[48\]);
//! * community sizes and depths with the paper's convention `dep(root) = 1`.

pub mod bisect;
pub mod dendrogram;
pub mod handle;
pub mod lca;
pub mod linkage;
pub mod nnchain;
pub mod repair;

pub use bisect::bisect;
pub use dendrogram::{Dendrogram, DendrogramError, VertexId, NO_VERTEX};
pub use handle::{Hierarchy, SharedHierarchy};
pub use lca::LcaIndex;
pub use linkage::Linkage;
pub use nnchain::{
    cluster, cluster_governed, cluster_unweighted, cluster_unweighted_governed, Merge,
};
pub use repair::{match_vertices, repair_merges, RepairOutcome, RepairResult, TreeDiff};
