//! Constant-time lowest common ancestors on a [`Dendrogram`].
//!
//! Euler tour + sparse-table range-minimum queries, following Bender et al.
//! (paper reference \[48\]): `O(V log V)` preprocessing, `O(1)` per query.

use crate::dendrogram::{Dendrogram, VertexId, NO_VERTEX};

/// An LCA index over a dendrogram.
///
/// The paper uses `lca` pervasively: `dep(u, v) = dep(lca(u, v))` drives the
/// reclustering score (Definition 4) and HFS community tagging (§III-A,
/// §IV-B).
pub struct LcaIndex {
    /// Euler tour of vertex ids (length `2V - 1`).
    tour: Vec<VertexId>,
    /// Depth of each tour entry.
    tour_depth: Vec<u32>,
    /// First occurrence of each vertex in the tour.
    first: Vec<u32>,
    /// `sparse[k][i]` = index (into `tour`) of the min-depth entry in
    /// `tour[i .. i + 2^k]`.
    sparse: Vec<Vec<u32>>,
}

impl LcaIndex {
    /// Builds the index in `O(V log V)`.
    pub fn new(d: &Dendrogram) -> Self {
        let nv = d.num_vertices();
        let mut tour = Vec::with_capacity(2 * nv);
        let mut tour_depth = Vec::with_capacity(2 * nv);
        let mut first = vec![u32::MAX; nv];

        // Iterative Euler tour: visit vertex, recurse into child, revisit.
        // Stack entries: (vertex, next child index 0|1|2).
        let mut stack: Vec<(VertexId, u8)> = vec![(d.root(), 0)];
        while let Some((v, ci)) = stack.pop() {
            if ci == 0 || !d.is_leaf(v) {
                if first[v as usize] == u32::MAX {
                    first[v as usize] = tour.len() as u32;
                }
                tour.push(v);
                tour_depth.push(d.depth(v));
            }
            if d.is_leaf(v) {
                continue;
            }
            if ci < 2 {
                stack.push((v, ci + 1));
                let child = d.children(v)[ci as usize];
                debug_assert_ne!(child, NO_VERTEX);
                stack.push((child, 0));
            }
        }

        let m = tour.len();
        let levels = (usize::BITS - m.leading_zeros()) as usize;
        let mut sparse: Vec<Vec<u32>> = Vec::with_capacity(levels);
        sparse.push((0..m as u32).collect());
        let mut k = 1usize;
        while (1 << k) <= m {
            let half = 1usize << (k - 1);
            let prev = &sparse[k - 1];
            let mut row = Vec::with_capacity(m - (1 << k) + 1);
            for i in 0..=m - (1 << k) {
                let a = prev[i];
                let b = prev[i + half];
                row.push(if tour_depth[a as usize] <= tour_depth[b as usize] {
                    a
                } else {
                    b
                });
            }
            sparse.push(row);
            k += 1;
        }

        Self {
            tour,
            tour_depth,
            first,
            sparse,
        }
    }

    /// The lowest common ancestor of vertices `a` and `b` in `O(1)`.
    #[inline]
    pub fn lca(&self, a: VertexId, b: VertexId) -> VertexId {
        let (mut i, mut j) = (self.first[a as usize], self.first[b as usize]);
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }
        let len = (j - i + 1) as usize;
        let k = (usize::BITS - 1 - len.leading_zeros()) as usize;
        let x = self.sparse[k][i as usize];
        let y = self.sparse[k][j as usize + 1 - (1 << k)];
        let best = if self.tour_depth[x as usize] <= self.tour_depth[y as usize] {
            x
        } else {
            y
        };
        self.tour[best as usize]
    }

    /// `dep(lca(a, b))` — the paper's `dep(u, v)` shorthand.
    #[inline]
    pub fn lca_depth(&self, d: &Dendrogram, a: VertexId, b: VertexId) -> u32 {
        d.depth(self.lca(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_lca(d: &Dendrogram, a: VertexId, b: VertexId) -> VertexId {
        let mut anc_a = vec![a];
        let mut v = a;
        while d.parent(v) != NO_VERTEX {
            v = d.parent(v);
            anc_a.push(v);
        }
        let mut v = b;
        loop {
            if anc_a.contains(&v) {
                return v;
            }
            v = d.parent(v);
        }
    }

    #[test]
    fn fig2_lca_matches_example_2() {
        let (d, v) = crate::dendrogram::tests::fig2();
        let idx = LcaIndex::new(&d);
        // lca(v_0, v_6) = C_3 with dep 3 (paper Example 2).
        assert_eq!(idx.lca(0, 6), v.c3);
        assert_eq!(d.depth(idx.lca(0, 6)), 3);
        // lca of nodes in different halves is the root.
        assert_eq!(idx.lca(0, 8), v.c6);
        // lca with itself is the leaf.
        assert_eq!(idx.lca(5, 5), 5);
    }

    #[test]
    fn lca_of_vertex_and_descendant_leaf() {
        let (d, v) = crate::dendrogram::tests::fig2();
        let idx = LcaIndex::new(&d);
        assert_eq!(idx.lca(v.c3, 6), v.c3);
        assert_eq!(idx.lca(v.c3, 4), v.c4);
    }

    #[test]
    fn matches_naive_on_all_pairs() {
        let (d, _) = crate::dendrogram::tests::fig2();
        let idx = LcaIndex::new(&d);
        let nv = d.num_vertices() as VertexId;
        for a in 0..nv {
            for b in 0..nv {
                assert_eq!(idx.lca(a, b), naive_lca(&d, a, b), "lca({a},{b})");
            }
        }
    }

    #[test]
    fn works_on_singleton() {
        let d = Dendrogram::singleton();
        let idx = LcaIndex::new(&d);
        assert_eq!(idx.lca(0, 0), 0);
    }
}
