//! Localized dendrogram repair for streaming graphs.
//!
//! A full NN-chain reclustering costs `O(|E| · α)` per mutation epoch no
//! matter how few nodes changed. This module repairs an existing hierarchy
//! around an edge event instead: the internal vertices on the leaf-to-root
//! paths of the touched nodes are *cut* (their merges are stale — a changed
//! adjacency can reorder any merge along those paths), every other merge is
//! kept frozen, and the freed subtrees are re-merged by the same NN-chain
//! loop the full clustering uses, running on the quotient graph whose
//! super-nodes are the freed subtree roots.
//!
//! The splice is a heuristic: it constrains the new hierarchy to keep the
//! frozen subtrees intact, which a from-scratch clustering is not bound by.
//! [`repair_merges`] therefore supports a *verification* mode that runs the
//! full clustering as well and keeps the splice only when both describe the
//! same community families (member sets); otherwise the recomputed merges
//! win. Downstream consumers (HIMOR, the query chains) depend only on the
//! families and per-node rank positions, never on internal vertex numbering,
//! so a verified repair answers every query bit-identically to a rebuild
//! from scratch.
//!
//! [`match_vertices`] computes the structural diff between the old and the
//! repaired hierarchy — which old communities survive (and as which new
//! vertex), and which leaves sit under a changed community. The HIMOR patch
//! uses it to re-key unaffected bucket contributions and to bound the set of
//! RR samples that must be redrawn.

use cod_graph::{Csr, FxHashMap, NodeId};

use crate::dendrogram::{Dendrogram, VertexId, NO_VERTEX};
use crate::linkage::{CrossStats, Linkage};
use crate::nnchain::{chain_prepared_governed, cluster_unweighted, Merge};

/// How [`repair_merges`] arrived at its merge sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairOutcome {
    /// The localized splice was used (and, if verification ran, it produced
    /// the same community families as a full reclustering).
    Spliced,
    /// Verification found the splice diverging from a full reclustering; the
    /// recomputed merges were returned instead.
    Recomputed,
}

/// Result of [`repair_merges`]: a full merge sequence for the mutated graph
/// plus how it was obtained.
#[derive(Clone, Debug)]
pub struct RepairResult {
    /// `g.num_nodes() - 1` merges, valid for [`Dendrogram::from_merges`].
    pub merges: Vec<Merge>,
    /// Whether the splice survived (or verification was off).
    pub outcome: RepairOutcome,
    /// Internal vertices cut from the old hierarchy (the stale region).
    pub vertices_cut: usize,
}

/// Repairs `old` (a hierarchy of the pre-mutation graph) into a merge
/// sequence for `g` (the post-mutation topology). `touched` lists the nodes
/// whose adjacency changed; `g` must have the same node count as `old` has
/// leaves (node growth requires a rebuild, not a repair).
///
/// With `verify` set, a full reclustering of `g` runs alongside the splice
/// and the splice is kept only if both yield identical community families —
/// the mode `DynamicCod` uses so repaired instances stay bit-identical to
/// rebuilt ones. Without it the splice is trusted as-is (cheaper, but the
/// hierarchy may legitimately differ from a from-scratch clustering).
pub fn repair_merges(
    old: &Dendrogram,
    g: &Csr,
    touched: &[NodeId],
    linkage: Linkage,
    verify: bool,
) -> RepairResult {
    debug_assert_eq!(old.num_leaves(), g.num_nodes(), "repair cannot grow nodes");
    let (spliced, vertices_cut) = splice(old, g, touched, linkage);
    if !verify {
        return RepairResult {
            merges: spliced,
            outcome: RepairOutcome::Spliced,
            vertices_cut,
        };
    }
    let full = cluster_unweighted(g, linkage);
    if family_multiset(old.num_leaves(), &spliced) == family_multiset(old.num_leaves(), &full) {
        RepairResult {
            merges: spliced,
            outcome: RepairOutcome::Spliced,
            vertices_cut,
        }
    } else {
        RepairResult {
            merges: full,
            outcome: RepairOutcome::Recomputed,
            vertices_cut,
        }
    }
}

/// Cuts the stale internal vertices and re-merges the freed subtrees on the
/// quotient graph. Returns the merge sequence and the cut count.
fn splice(old: &Dendrogram, g: &Csr, touched: &[NodeId], linkage: Linkage) -> (Vec<Merge>, usize) {
    let n = old.num_leaves();
    let nv = old.num_vertices();
    // Mark the internal ancestors of every touched leaf. The marked set is
    // upward-closed, i.e. a connected subtree containing the root.
    let mut cut = vec![false; nv];
    let mut any = false;
    for &t in touched {
        debug_assert!((t as usize) < n);
        any = true;
        let mut v = old.parent(old.leaf(t));
        while v != NO_VERTEX && !cut[v as usize] {
            cut[v as usize] = true;
            v = old.parent(v);
        }
    }
    if !any || n <= 1 {
        return (old.merges(), 0);
    }

    // Frozen merges: uncut internal vertices keep their old relative order.
    // The uncut set is downward-closed, so every operand is a leaf or an
    // earlier frozen merge, and old-id order maps monotonically to new ids.
    let mut new_id = vec![NO_VERTEX; nv];
    for (l, slot) in new_id.iter_mut().enumerate().take(n) {
        *slot = l as VertexId;
    }
    let mut merges = Vec::with_capacity(n - 1);
    for v in n..nv {
        if cut[v] {
            continue;
        }
        let [a, b] = old.children(v as VertexId);
        new_id[v] = (n + merges.len()) as VertexId;
        merges.push(Merge {
            a: new_id[a as usize],
            b: new_id[b as usize],
        });
    }
    let frozen = merges.len();
    let cut_count = (nv - n) - frozen;

    // Freed subtree roots: uncut vertices whose parent was cut. A connected
    // cut subtree of `c` vertices in a binary tree frees exactly `c + 1`.
    let freed: Vec<VertexId> = (0..nv as VertexId)
        .filter(|&v| {
            let p = old.parent(v);
            !cut[v as usize] && p != NO_VERTEX && cut[p as usize]
        })
        .collect();
    debug_assert_eq!(freed.len(), cut_count + 1);

    // Quotient graph: super-node i = freed[i]; cross stats from the *new*
    // topology (unit weights, matching `cluster_unweighted`).
    let k = freed.len();
    let mut label = vec![u32::MAX; n];
    for (i, &r) in freed.iter().enumerate() {
        for &leaf in old.members(r) {
            label[leaf as usize] = i as u32;
        }
    }
    debug_assert!(label.iter().all(|&l| l != u32::MAX));
    let mut adj: Vec<FxHashMap<VertexId, CrossStats>> = vec![FxHashMap::default(); k];
    for u in 0..n as NodeId {
        let cu = label[u as usize];
        for &v in g.neighbors(u) {
            if v <= u {
                continue;
            }
            let cv = label[v as usize];
            if cu == cv {
                continue;
            }
            for (x, y) in [(cu, cv), (cv, cu)] {
                adj[x as usize]
                    .entry(y)
                    .and_modify(|s| s.add_edge(1.0))
                    .or_insert_with(|| CrossStats::edge(1.0));
            }
        }
    }
    let sizes: Vec<u32> = freed.iter().map(|&r| old.size(r) as u32).collect();
    let quotient = match chain_prepared_governed(adj, sizes, linkage, |_| true) {
        Some(q) => q,
        None => unreachable!("an always-true callback never aborts"),
    };
    debug_assert_eq!(quotient.len(), cut_count);

    // Translate quotient ids into the spliced merge sequence's id space.
    let translate = |q: VertexId| -> VertexId {
        if (q as usize) < k {
            new_id[freed[q as usize] as usize]
        } else {
            (n + frozen + (q as usize - k)) as VertexId
        }
    };
    for m in &quotient {
        merges.push(Merge {
            a: translate(m.a),
            b: translate(m.b),
        });
    }
    debug_assert_eq!(merges.len(), n - 1);
    (merges, cut_count)
}

/// 128-bit order-independent content hash of a leaf set, plus its size.
/// Distinct vertices of one tree always have distinct leaf sets, so within
/// a tree these keys are unique up to (negligible) hash collisions.
type FamilyKey = (u64, u64, u32);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[inline]
fn leaf_key(u: NodeId) -> FamilyKey {
    let h1 = splitmix64(u64::from(u).wrapping_add(1));
    let h2 = splitmix64(h1 ^ 0xA5A5_A5A5_5A5A_5A5A);
    (h1, h2, 1)
}

#[inline]
fn combine(a: FamilyKey, b: FamilyKey) -> FamilyKey {
    (a.0.wrapping_add(b.0), a.1.wrapping_add(b.1), a.2 + b.2)
}

/// Per-vertex family keys for a merge sequence over `n` leaves.
fn family_keys(n: usize, merges: &[Merge]) -> Vec<FamilyKey> {
    let mut keys = Vec::with_capacity(n + merges.len());
    for u in 0..n as NodeId {
        keys.push(leaf_key(u));
    }
    for m in merges {
        keys.push(combine(keys[m.a as usize], keys[m.b as usize]));
    }
    keys
}

/// The sorted multiset of internal-vertex family keys — two merge sequences
/// describe the same community families iff these are equal.
fn family_multiset(n: usize, merges: &[Merge]) -> Vec<FamilyKey> {
    let mut keys = family_keys(n, merges).split_off(n);
    keys.sort_unstable();
    keys
}

/// The structural diff between two hierarchies over the same leaves.
#[derive(Clone, Debug)]
pub struct TreeDiff {
    /// For each old vertex, the new vertex holding exactly the same leaf set
    /// (`None` if the community disappeared). Leaves always match.
    pub old_to_new: Vec<Option<VertexId>>,
    /// Per graph node: whether any ancestor community of its leaf — in
    /// either tree — is unmatched. RR samples avoiding every disturbed node
    /// contribute to both hierarchies' buckets under the matching.
    pub disturbed: Vec<bool>,
    /// Whether every internal vertex of both trees matched (the trees
    /// describe identical families).
    pub fully_matched: bool,
}

/// Matches communities of `old` against `new` by leaf-set content and marks
/// the leaves whose ancestor chain changed. `O(n)` with hash-map lookups.
pub fn match_vertices(old: &Dendrogram, new: &Dendrogram) -> TreeDiff {
    debug_assert_eq!(old.num_leaves(), new.num_leaves());
    let n = old.num_leaves();
    let old_keys = family_keys(n, &old.merges());
    let new_keys = family_keys(n, &new.merges());
    let mut by_key: FxHashMap<FamilyKey, VertexId> = FxHashMap::default();
    by_key.reserve(new.num_vertices() - n);
    for (v, &key) in new_keys.iter().enumerate().skip(n) {
        by_key.insert(key, v as VertexId);
    }
    let mut old_to_new: Vec<Option<VertexId>> = Vec::with_capacity(old.num_vertices());
    for (v, key) in old_keys.iter().enumerate() {
        if v < n {
            old_to_new.push(Some(v as VertexId));
        } else {
            let m = by_key.get(key).copied();
            debug_assert!(
                m.is_none_or(|w| old.members_sorted(v as VertexId) == new.members_sorted(w)),
                "family-key collision"
            );
            old_to_new.push(m);
        }
    }
    let matched_old = old_to_new[n..].iter().filter(|m| m.is_some()).count();
    let fully_matched =
        matched_old == old.num_vertices() - n && matched_old == new.num_vertices() - n;

    let mut disturbed = vec![false; n];
    mark_unmatched_spans(old, |v| old_to_new[v as usize].is_none(), &mut disturbed);
    let mut new_matched = vec![false; new.num_vertices()];
    for m in old_to_new.iter().flatten() {
        new_matched[*m as usize] = true;
    }
    mark_unmatched_spans(new, |v| !new_matched[v as usize], &mut disturbed);

    TreeDiff {
        old_to_new,
        disturbed,
        fully_matched,
    }
}

/// Marks (by node id) every leaf under an internal vertex selected by
/// `unmatched`, via a difference array over the DFS leaf order.
fn mark_unmatched_spans(
    d: &Dendrogram,
    unmatched: impl Fn(VertexId) -> bool,
    disturbed: &mut [bool],
) {
    let n = d.num_leaves();
    let mut diff = vec![0i32; n + 1];
    for v in n..d.num_vertices() {
        if unmatched(v as VertexId) {
            let (s, e) = d.leaf_span(v as VertexId);
            diff[s as usize] += 1;
            diff[e as usize] -= 1;
        }
    }
    let mut depth = 0i32;
    for (pos, &leaf) in d.leaf_order().iter().enumerate() {
        depth += diff[pos];
        if depth > 0 {
            disturbed[leaf as usize] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::GraphBuilder;
    use rand::prelude::*;

    fn build(n: usize, edges: &[(NodeId, NodeId)]) -> Csr {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    fn dendro(g: &Csr) -> Dendrogram {
        Dendrogram::from_merges(g.num_nodes(), &cluster_unweighted(g, Linkage::Average))
    }

    #[test]
    fn no_touched_nodes_is_identity() {
        let g = build(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let d = dendro(&g);
        let r = repair_merges(&d, &g, &[], Linkage::Average, true);
        assert_eq!(r.outcome, RepairOutcome::Spliced);
        assert_eq!(r.vertices_cut, 0);
        assert_eq!(r.merges, d.merges());
    }

    #[test]
    fn splice_preserves_frozen_families_and_is_valid() {
        // Two triangles bridged at 2-3; flip an edge inside one triangle.
        let g0 = build(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let d0 = dendro(&g0);
        let g1 = build(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (2, 3)]);
        let r = repair_merges(&d0, &g1, &[3, 5], Linkage::Average, false);
        assert_eq!(r.outcome, RepairOutcome::Spliced);
        assert!(r.vertices_cut >= 1);
        let d1 = Dendrogram::from_merges(6, &r.merges);
        assert_eq!(d1.size(d1.root()), 6);
        // Every internal community of d0 off the touched root paths is
        // frozen and must survive verbatim in the spliced hierarchy.
        let cut: std::collections::HashSet<VertexId> =
            [3u32, 5].iter().flat_map(|&t| d0.root_path(t)).collect();
        let new_families: std::collections::HashSet<Vec<NodeId>> = (6..d1.num_vertices()
            as VertexId)
            .map(|v| d1.members_sorted(v))
            .collect();
        let mut frozen = 0;
        for v in 6..d0.num_vertices() as VertexId {
            if !cut.contains(&v) {
                frozen += 1;
                assert!(
                    new_families.contains(&d0.members_sorted(v)),
                    "frozen community {:?} lost",
                    d0.members_sorted(v)
                );
            }
        }
        assert!(frozen >= 1, "fixture should freeze something");
    }

    #[test]
    fn verified_repair_always_matches_full_reclustering() {
        let mut rng = SmallRng::seed_from_u64(11);
        for trial in 0..40 {
            let n = 6 + (trial % 7);
            let mut edges = Vec::new();
            for u in 0..n as NodeId {
                for v in u + 1..n as NodeId {
                    if rng.random_bool(0.35) {
                        edges.push((u, v));
                    }
                }
            }
            if edges.is_empty() {
                edges.push((0, 1));
            }
            let g0 = build(n, &edges);
            let d0 = dendro(&g0);
            // Flip one random pair.
            let u = rng.random_range(0..n as NodeId);
            let mut v = rng.random_range(0..n as NodeId);
            if v == u {
                v = (v + 1) % n as NodeId;
            }
            let (u, v) = (u.min(v), u.max(v));
            let mut e1: Vec<_> = edges.iter().copied().filter(|&e| e != (u, v)).collect();
            if e1.len() == edges.len() {
                e1.push((u, v));
            }
            if e1.is_empty() {
                continue;
            }
            let g1 = build(n, &e1);
            let r = repair_merges(&d0, &g1, &[u, v], Linkage::Average, true);
            let full = cluster_unweighted(&g1, Linkage::Average);
            assert_eq!(
                family_multiset(n, &r.merges),
                family_multiset(n, &full),
                "trial {trial}: verified repair must agree with reclustering"
            );
            // And the result is a valid dendrogram either way.
            let _ = Dendrogram::from_merges(n, &r.merges);
        }
    }

    #[test]
    fn match_vertices_on_identical_trees_is_total() {
        let g = build(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]);
        let d = dendro(&g);
        let diff = match_vertices(&d, &d);
        assert!(diff.fully_matched);
        assert!(diff.disturbed.iter().all(|&x| !x));
        for (v, m) in diff.old_to_new.iter().enumerate() {
            assert_eq!(*m, Some(v as VertexId));
        }
    }

    #[test]
    fn match_vertices_flags_changed_regions_only() {
        // Path 0-1-2-3-4-5: hierarchy pairs neighbors. Rewire the 4-5 end.
        let g0 = build(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let d0 = dendro(&g0);
        let g1 = build(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (3, 5)]);
        let d1 = dendro(&g1);
        let diff = match_vertices(&d0, &d1);
        // {0,1} merges identically in both clusterings, so leaves 0 and 1
        // must sit under fully matched ancestors... unless the top of the
        // tree changed, which disturbs everything. At minimum, matched
        // communities map to equal member sets (checked by debug_assert in
        // match_vertices) and some vertex is unmatched.
        assert!(!diff.fully_matched);
        assert!(diff.disturbed.iter().any(|&x| x));
        for (v, m) in diff.old_to_new.iter().enumerate().skip(6) {
            if let Some(w) = m {
                assert_eq!(d0.members_sorted(v as VertexId), d1.members_sorted(*w));
            }
        }
    }

    #[test]
    fn disturbed_covers_every_leaf_under_an_unmatched_vertex() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            let n = 8;
            let mut edges = Vec::new();
            for u in 0..n as NodeId {
                for v in u + 1..n as NodeId {
                    if rng.random_bool(0.4) {
                        edges.push((u, v));
                    }
                }
            }
            edges.push((0, 7));
            let g0 = build(n, &edges);
            let d0 = dendro(&g0);
            let mut e1 = edges.clone();
            e1.retain(|&e| e != (0, 7));
            e1.push((1, 6));
            e1.sort_unstable();
            e1.dedup();
            let g1 = build(n, &e1);
            let d1 = dendro(&g1);
            let diff = match_vertices(&d0, &d1);
            // Reference: recompute disturbed by walking root paths.
            for leaf in 0..n as NodeId {
                let old_dist = d0
                    .root_path(leaf)
                    .iter()
                    .any(|&v| diff.old_to_new[v as usize].is_none());
                let matched: std::collections::HashSet<VertexId> =
                    diff.old_to_new.iter().flatten().copied().collect();
                let new_dist = d1.root_path(leaf).iter().any(|&v| !matched.contains(&v));
                assert_eq!(
                    diff.disturbed[leaf as usize],
                    old_dist || new_dist,
                    "leaf {leaf}"
                );
            }
        }
    }
}
