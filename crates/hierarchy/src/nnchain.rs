//! Nearest-neighbour-chain agglomerative clustering on graphs.
//!
//! The paper (§V-A) builds its community hierarchies with "the nearest
//! neighbor chain algorithm \[54, 55\] and the unweighted-average linkage
//! function \[45\]". This module implements exactly that: clusters start as
//! singletons; the NN-chain walks to a pair of *mutual* nearest neighbours
//! (by linkage similarity) and merges them; reducibility of the linkage
//! guarantees the produced merge order is identical to naive greedy
//! agglomeration.
//!
//! Only *adjacent* clusters (connected by at least one edge) are candidates
//! for merging. If the graph is disconnected, each component is clustered
//! into its own subtree and the component roots are finally chained together
//! with zero-similarity merges so the result is always one dendrogram.

use cod_graph::{Csr, FxHashMap, NodeId};

use crate::dendrogram::VertexId;
use crate::linkage::{CrossStats, Linkage};

/// One agglomerative merge: clusters `a` and `b` become vertex
/// `num_leaves + index`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Merge {
    /// First merged cluster (a leaf or an earlier merge result).
    pub a: VertexId,
    /// Second merged cluster.
    pub b: VertexId,
}

struct ChainState {
    /// Per-cluster adjacency: neighbor cluster -> cross stats.
    adj: Vec<FxHashMap<VertexId, CrossStats>>,
    size: Vec<u32>,
    alive: Vec<bool>,
    linkage: Linkage,
}

impl ChainState {
    /// Deterministic nearest neighbor of `x`: maximum similarity, ties
    /// prefer `prev` (the cluster below `x` on the chain, to make mutual-NN
    /// detection sound under ties), then the smallest id.
    fn nearest(&self, x: VertexId, prev: Option<VertexId>) -> Option<VertexId> {
        let mut best: Option<(f64, VertexId)> = None;
        for (&y, stats) in &self.adj[x as usize] {
            debug_assert!(self.alive[y as usize]);
            let sim = self.linkage.similarity(
                stats,
                self.size[x as usize] as usize,
                self.size[y as usize] as usize,
            );
            let better = match best {
                None => true,
                Some((bs, by)) => {
                    sim > bs || (sim == bs && (Some(y) == prev || (Some(by) != prev && y < by)))
                }
            };
            if better {
                best = Some((sim, y));
            }
        }
        best.map(|(_, y)| y)
    }

    /// Merges clusters `a` and `b` into a fresh cluster, returning its id.
    fn merge(&mut self, a: VertexId, b: VertexId) -> VertexId {
        let c = self.size.len() as VertexId;
        let mut map_a = std::mem::take(&mut self.adj[a as usize]);
        let map_b = std::mem::take(&mut self.adj[b as usize]);
        map_a.remove(&b);
        // Fold b's adjacency into a's (small map copied into large one would
        // be ideal; stats merging forces a full pass over b anyway).
        for (y, st) in map_b {
            if y == a {
                continue;
            }
            map_a
                .entry(y)
                .and_modify(|acc| *acc = acc.merge(&st))
                .or_insert(st);
        }
        for (&y, st) in &map_a {
            let ym = &mut self.adj[y as usize];
            ym.remove(&a);
            ym.remove(&b);
            ym.insert(c, *st);
        }
        self.alive[a as usize] = false;
        self.alive[b as usize] = false;
        self.alive.push(true);
        self.size
            .push(self.size[a as usize] + self.size[b as usize]);
        self.adj.push(map_a);
        c
    }
}

/// Clusters `g` with per-half-edge weights, producing the merge sequence of
/// a full dendrogram (`g.num_nodes() - 1` merges).
///
/// `weights[i]` is the weight of the half-edge at index `i` of the CSR
/// neighbor array (see [`Csr::neighbor_range`]); weights must be symmetric
/// across the two orientations of each edge. Pass [`cluster_unweighted`] for
/// unit weights.
pub fn cluster(g: &Csr, weights: &[f64], linkage: Linkage) -> Vec<Merge> {
    match cluster_governed(g, weights, linkage, |_| true) {
        Some(m) => m,
        None => unreachable!("an always-true callback never aborts"),
    }
}

/// [`cluster`] with a cooperative-cancellation hook: `keep_going` is called
/// after every merge with the number of merges made so far; returning
/// `false` abandons the clustering and yields `None`. Serving layers use it
/// to poll a deadline token every few hundred merges — the callback cannot
/// perturb the merge order, only cut it short.
pub fn cluster_governed(
    g: &Csr,
    weights: &[f64],
    linkage: Linkage,
    keep_going: impl FnMut(usize) -> bool,
) -> Option<Vec<Merge>> {
    assert_eq!(
        weights.len(),
        g.num_half_edges(),
        "one weight per half-edge"
    );
    cluster_impl(g, |idx, _u, _v| weights[idx], linkage, keep_going)
}

/// Clusters `g` with unit edge weights (the non-attributed hierarchy `T`).
///
/// ```
/// use cod_graph::GraphBuilder;
/// use cod_hierarchy::{cluster_unweighted, Dendrogram, Linkage};
///
/// let mut b = GraphBuilder::new(4);
/// for (u, v) in [(0, 1), (1, 2), (2, 3)] {
///     b.add_edge(u, v);
/// }
/// let g = b.build();
/// let merges = cluster_unweighted(&g, Linkage::Average);
/// let dendro = Dendrogram::from_merges(4, &merges);
/// assert_eq!(dendro.size(dendro.root()), 4);
/// // H(q): the communities containing node 0, deepest first.
/// let chain = dendro.root_path(0);
/// assert_eq!(*chain.last().unwrap(), dendro.root());
/// ```
pub fn cluster_unweighted(g: &Csr, linkage: Linkage) -> Vec<Merge> {
    match cluster_unweighted_governed(g, linkage, |_| true) {
        Some(m) => m,
        None => unreachable!("an always-true callback never aborts"),
    }
}

/// [`cluster_unweighted`] with the [`cluster_governed`] cancellation hook.
pub fn cluster_unweighted_governed(
    g: &Csr,
    linkage: Linkage,
    keep_going: impl FnMut(usize) -> bool,
) -> Option<Vec<Merge>> {
    cluster_impl(g, |_idx, _u, _v| 1.0, linkage, keep_going)
}

fn cluster_impl<F>(
    g: &Csr,
    weight: F,
    linkage: Linkage,
    keep_going: impl FnMut(usize) -> bool,
) -> Option<Vec<Merge>>
where
    F: Fn(usize, NodeId, NodeId) -> f64,
{
    let n = g.num_nodes();
    if n == 0 {
        return Some(Vec::new());
    }
    let mut adj: Vec<FxHashMap<VertexId, CrossStats>> = Vec::with_capacity(2 * n);
    for u in 0..n as NodeId {
        let mut m = FxHashMap::default();
        m.reserve(g.degree(u));
        let range = g.neighbor_range(u);
        for (idx, &v) in range.clone().zip(g.neighbors(u)) {
            let w = weight(idx, u, v);
            debug_assert!(w >= 0.0, "edge weights must be non-negative");
            m.insert(v as VertexId, CrossStats::edge(w));
        }
        adj.push(m);
    }
    chain_prepared_governed(adj, vec![1; n], linkage, keep_going)
}

/// Runs the NN-chain loop over a pre-built cluster graph: `adj[i]` holds the
/// cross stats toward each adjacent cluster, `size[i]` the cluster's leaf
/// count. Fresh clusters get ids continuing at `adj.len()`. This is the same
/// loop [`cluster`] runs after building singleton clusters; the dendrogram
/// repair path feeds it the freed subtrees of a spliced hierarchy so the
/// quotient re-merge is governed by exactly the linkage semantics (tie-breaks
/// included) of a full clustering.
pub(crate) fn chain_prepared_governed(
    adj: Vec<FxHashMap<VertexId, CrossStats>>,
    size: Vec<u32>,
    linkage: Linkage,
    mut keep_going: impl FnMut(usize) -> bool,
) -> Option<Vec<Merge>> {
    let n = adj.len();
    debug_assert_eq!(size.len(), n);
    if n == 0 {
        return Some(Vec::new());
    }
    let mut state = ChainState {
        adj,
        size,
        alive: vec![true; n],
        linkage,
    };

    let mut merges: Vec<Merge> = Vec::with_capacity(n - 1);
    let mut roots: Vec<VertexId> = Vec::new(); // component roots, set aside
    let mut chain: Vec<VertexId> = Vec::new();
    let mut cursor: usize = 0; // scan position for fresh chain starts

    loop {
        if chain.is_empty() {
            // Find the next alive cluster to start a chain from.
            let mut start = None;
            while cursor < state.alive.len() {
                if state.alive[cursor] {
                    if state.adj[cursor].is_empty() {
                        // Component fully agglomerated: set its root aside.
                        state.alive[cursor] = false;
                        roots.push(cursor as VertexId);
                    } else {
                        start = Some(cursor as VertexId);
                        break;
                    }
                }
                cursor += 1;
            }
            match start {
                Some(s) => chain.push(s),
                None => break,
            }
        }
        let Some(&top) = chain.last() else {
            unreachable!("chain refilled above or the loop broke");
        };
        if state.adj[top as usize].is_empty() {
            // Isolated root reached mid-chain.
            chain.pop();
            state.alive[top as usize] = false;
            roots.push(top);
            continue;
        }
        let prev = if chain.len() >= 2 {
            Some(chain[chain.len() - 2])
        } else {
            None
        };
        let Some(next) = state.nearest(top, prev) else {
            unreachable!("non-empty adjacency checked above");
        };
        if prev == Some(next) {
            chain.pop();
            chain.pop();
            let c = state.merge(top, next);
            merges.push(Merge { a: next, b: top });
            debug_assert_eq!(c as usize, n + merges.len() - 1);
            if !keep_going(merges.len()) {
                return None;
            }
        } else {
            chain.push(next);
        }
    }

    // Chain component roots together (zero-similarity merges) so the result
    // is a single tree even on disconnected graphs.
    roots.sort_unstable();
    let mut acc = roots[0];
    for &r in &roots[1..] {
        let c = state.merge(acc, r);
        merges.push(Merge { a: acc, b: r });
        acc = c;
        if !keep_going(merges.len()) {
            return None;
        }
    }
    debug_assert_eq!(merges.len(), n - 1);
    Some(merges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dendrogram::Dendrogram;
    use cod_graph::GraphBuilder;

    fn barbell() -> Csr {
        // Dense triangles {0,1,2} and {3,4,5} joined by a weak bridge.
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Per-half-edge weights from a closure on the (unordered) edge.
    fn edge_weights(g: &Csr, f: impl Fn(NodeId, NodeId) -> f64) -> Vec<f64> {
        let mut w = vec![0.0; g.num_half_edges()];
        for u in 0..g.num_nodes() as NodeId {
            for (idx, &v) in g.neighbor_range(u).zip(g.neighbors(u)) {
                w[idx] = f(u.min(v), u.max(v));
            }
        }
        w
    }

    #[test]
    fn produces_full_hierarchy() {
        let g = barbell();
        let merges = cluster_unweighted(&g, Linkage::Average);
        let d = Dendrogram::from_merges(6, &merges);
        assert_eq!(d.size(d.root()), 6);
    }

    #[test]
    fn triangles_merge_before_bridge() {
        let g = barbell();
        // Weak bridge: with distinct weights the greedy order is forced and
        // the two children of the root must be exactly the two triangles.
        let w = edge_weights(&g, |u, v| if (u, v) == (2, 3) { 0.25 } else { 1.0 });
        let merges = cluster(&g, &w, Linkage::Average);
        let d = Dendrogram::from_merges(6, &merges);
        let [a, b] = d.children(d.root());
        let mut sides = [d.members_sorted(a), d.members_sorted(b)];
        sides.sort();
        assert_eq!(sides[0], vec![0, 1, 2]);
        assert_eq!(sides[1], vec![3, 4, 5]);
    }

    #[test]
    fn weights_steer_merges() {
        // Path 0-1-2; edge 1-2 heavier, so {1,2} merges first.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        let mut w = vec![0.0; g.num_half_edges()];
        for u in 0..3u32 {
            for (idx, &v) in g.neighbor_range(u).zip(g.neighbors(u)) {
                w[idx] = if (u, v) == (1, 2) || (u, v) == (2, 1) {
                    5.0
                } else {
                    1.0
                };
            }
        }
        let merges = cluster(&g, &w, Linkage::Average);
        assert_eq!(merges[0], Merge { a: 1, b: 2 });
    }

    #[test]
    fn disconnected_components_are_chained() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        // node 4 isolated
        let g = b.build();
        let merges = cluster_unweighted(&g, Linkage::Average);
        let d = Dendrogram::from_merges(5, &merges);
        assert_eq!(d.size(d.root()), 5);
        // {0,1} and {2,3} each appear as a community.
        let has = |want: &[NodeId]| {
            (0..d.num_vertices() as VertexId).any(|v| d.members_sorted(v) == want)
        };
        assert!(has(&[0, 1]));
        assert!(has(&[2, 3]));
    }

    #[test]
    fn single_node_graph() {
        let g = GraphBuilder::new(1).build();
        let merges = cluster_unweighted(&g, Linkage::Average);
        assert!(merges.is_empty());
    }

    #[test]
    fn governed_abort_stops_at_the_requested_merge() {
        let g = barbell();
        let mut calls = Vec::new();
        let out = cluster_unweighted_governed(&g, Linkage::Average, |done| {
            calls.push(done);
            done < 3
        });
        assert!(out.is_none(), "callback returning false must abort");
        assert_eq!(calls, vec![1, 2, 3], "one call per merge, in order");
        // An always-true callback reproduces the ungoverned merge sequence.
        let governed = cluster_unweighted_governed(&g, Linkage::Average, |_| true).unwrap();
        assert_eq!(governed, cluster_unweighted(&g, Linkage::Average));
    }

    #[test]
    fn matches_naive_greedy_on_small_graphs() {
        // Naive greedy agglomeration: repeatedly merge the globally most
        // similar adjacent pair. For a reducible linkage and tie-free
        // similarities, NN-chain must produce the same set of clusters.
        // Random distinct edge weights make ties measure-zero.
        use rand::prelude::*;
        let mut rng = SmallRng::seed_from_u64(3);
        for trial in 0..20 {
            let n = 8 + (trial % 5);
            let mut b = GraphBuilder::new(n);
            for u in 0..n as NodeId {
                for v in u + 1..n as NodeId {
                    if rng.random_bool(0.4) {
                        b.add_edge(u, v);
                    }
                }
            }
            let g = b.build();
            let mut wmap = std::collections::BTreeMap::new();
            for (u, v) in g.edges() {
                wmap.insert((u, v), 0.5 + rng.random::<f64>());
            }
            let w = edge_weights(&g, |u, v| wmap[&(u, v)]);
            let merges = cluster(&g, &w, Linkage::Average);
            let d = Dendrogram::from_merges(n, &merges);
            let naive = naive_greedy(&g, &wmap);
            // Compare the sets of communities (both should contain the same
            // non-singleton clusters for a reducible linkage).
            let mut got: Vec<Vec<NodeId>> = (n as VertexId..d.num_vertices() as VertexId)
                .map(|v| d.members_sorted(v))
                .collect();
            got.sort();
            let mut want = naive;
            want.sort();
            assert_eq!(got, want, "trial {trial}");
        }
    }

    /// Reference implementation: O(n^3) greedy average-linkage
    /// agglomeration. Returns the member sets of all internal vertices.
    fn naive_greedy(
        g: &Csr,
        wmap: &std::collections::BTreeMap<(NodeId, NodeId), f64>,
    ) -> Vec<Vec<NodeId>> {
        let n = g.num_nodes();
        let mut clusters: Vec<Option<Vec<NodeId>>> =
            (0..n as NodeId).map(|v| Some(vec![v])).collect();
        let cross = |a: &[NodeId], b: &[NodeId]| -> f64 {
            let mut w = 0.0;
            for &u in a {
                for &v in b {
                    if let Some(x) = wmap.get(&(u.min(v), u.max(v))) {
                        w += x;
                    }
                }
            }
            w / (a.len() as f64 * b.len() as f64)
        };
        let mut out = Vec::new();
        loop {
            let ids: Vec<usize> = clusters
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.as_ref().map(|_| i))
                .collect();
            if ids.len() <= 1 {
                break;
            }
            let mut best: Option<(f64, usize, usize)> = None;
            for (xi, &i) in ids.iter().enumerate() {
                for &j in &ids[xi + 1..] {
                    let w = cross(clusters[i].as_ref().unwrap(), clusters[j].as_ref().unwrap());
                    if w > 0.0 && best.is_none_or(|(bw, _, _)| w > bw) {
                        best = Some((w, i, j));
                    }
                }
            }
            let (i, j) = match best {
                Some((_, i, j)) => (i, j),
                None => {
                    // Disconnected remainder: chain roots in id order.
                    (ids[0], ids[1])
                }
            };
            let mut merged = clusters[i].take().unwrap();
            merged.extend(clusters[j].take().unwrap());
            merged.sort_unstable();
            out.push(merged.clone());
            clusters.push(Some(merged));
        }
        out
    }
}
