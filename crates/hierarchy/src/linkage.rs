//! Linkage functions for agglomerative graph clustering.
//!
//! Clusters of a graph are scored by similarity (higher = merge earlier).
//! For two clusters `A`, `B` with total cross-edge weight `W(A, B)`:
//!
//! * **unweighted average** (UPGMA, the paper's §V-A choice, after \[45\]):
//!   `sim = W(A, B) / (|A| · |B|)`;
//! * **single**: `sim = max` cross-edge weight;
//! * **complete**: `sim = min` cross-edge weight over adjacent pairs
//!   (non-adjacent pairs are never merged before connectivity forces it).
//!
//! All three are *reducible* in the similarity sense
//! (`sim(A ∪ B, C) ≤ max(sim(A, C), sim(B, C))`), which the
//! nearest-neighbour chain algorithm requires for exactness.

/// Linkage function selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Linkage {
    /// Unweighted-average linkage (UPGMA on graphs) — the paper's default.
    #[default]
    Average,
    /// Single linkage (maximum cross-edge weight).
    Single,
    /// Complete linkage (minimum cross-edge weight).
    Complete,
}

/// Cross-cluster edge statistics maintained by the clustering algorithm.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CrossStats {
    /// Sum of cross-edge weights `W(A, B)`.
    pub total: f64,
    /// Maximum cross-edge weight.
    pub max: f64,
    /// Minimum cross-edge weight.
    pub min: f64,
}

impl CrossStats {
    /// Stats of a single edge of weight `w`.
    #[inline]
    pub fn edge(w: f64) -> Self {
        Self {
            total: w,
            max: w,
            min: w,
        }
    }

    /// Accumulates another parallel edge between the same cluster pair.
    #[inline]
    pub fn add_edge(&mut self, w: f64) {
        self.total += w;
        self.max = self.max.max(w);
        self.min = self.min.min(w);
    }

    /// Combines the stats of `(A, C)` and `(B, C)` into `(A ∪ B, C)`.
    #[inline]
    pub fn merge(&self, other: &CrossStats) -> CrossStats {
        CrossStats {
            total: self.total + other.total,
            max: self.max.max(other.max),
            min: self.min.min(other.min),
        }
    }
}

impl Linkage {
    /// Similarity of two adjacent clusters of the given sizes.
    #[inline]
    pub fn similarity(self, stats: &CrossStats, size_a: usize, size_b: usize) -> f64 {
        match self {
            Linkage::Average => stats.total / (size_a as f64 * size_b as f64),
            Linkage::Single => stats.max,
            Linkage::Complete => stats.min,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_normalizes_by_size_product() {
        let s = CrossStats::edge(3.0);
        assert!((Linkage::Average.similarity(&s, 2, 3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_and_complete_track_extremes() {
        let mut s = CrossStats::edge(1.0);
        s.add_edge(4.0);
        s.add_edge(2.0);
        assert_eq!(Linkage::Single.similarity(&s, 1, 1), 4.0);
        assert_eq!(Linkage::Complete.similarity(&s, 1, 1), 1.0);
        assert_eq!(s.total, 7.0);
    }

    #[test]
    fn merge_combines() {
        let a = CrossStats::edge(1.0);
        let b = CrossStats::edge(5.0);
        let m = a.merge(&b);
        assert_eq!(m.total, 6.0);
        assert_eq!(m.max, 5.0);
        assert_eq!(m.min, 1.0);
    }

    #[test]
    fn average_linkage_is_reducible() {
        // sim(A∪B, C) <= max(sim(A,C), sim(B,C)) — mediant inequality.
        let ac = CrossStats::edge(3.0);
        let bc = CrossStats::edge(1.0);
        let (sa, sb, sc) = (2usize, 5usize, 3usize);
        let merged = ac.merge(&bc);
        let lhs = Linkage::Average.similarity(&merged, sa + sb, sc);
        let rhs = Linkage::Average
            .similarity(&ac, sa, sc)
            .max(Linkage::Average.similarity(&bc, sb, sc));
        assert!(lhs <= rhs + 1e-12);
    }
}
