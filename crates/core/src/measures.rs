//! Answer-quality measures for the experiment suite (§V-A, §V-C).

use cod_graph::{measures as gm, AttrId, AttributedGraph, NodeId};
use cod_influence::{InfluenceEstimate, Model};
use rand::prelude::*;

use crate::pipeline::CodAnswer;

/// The three per-answer quality measures of §V-A, plus the answer size.
/// Missing answers score 0 on every measure (§V-A: "in case a community
/// search method does not return a characteristic community ... we assign
/// 0 to each measure").
#[derive(Clone, Copy, Debug, Default)]
pub struct AnswerQuality {
    /// `|C*|`.
    pub size: f64,
    /// Topology density `ρ(C*)`.
    pub topology_density: f64,
    /// Attribute density `φ(C*)`.
    pub attribute_density: f64,
}

/// Scores one (possibly missing) answer.
pub fn answer_quality(
    g: &AttributedGraph,
    attr: AttrId,
    answer: Option<&CodAnswer>,
) -> AnswerQuality {
    match answer {
        None => AnswerQuality::default(),
        Some(a) => AnswerQuality {
            size: a.members.len() as f64,
            topology_density: gm::topology_density(g.csr(), &a.members),
            attribute_density: gm::attribute_density(g, &a.members, attr),
        },
    }
}

/// Averages qualities over a query workload (missing answers count as 0).
pub fn average_quality(qualities: &[AnswerQuality]) -> AnswerQuality {
    if qualities.is_empty() {
        return AnswerQuality::default();
    }
    let n = qualities.len() as f64;
    AnswerQuality {
        size: qualities.iter().map(|q| q.size).sum::<f64>() / n,
        topology_density: qualities.iter().map(|q| q.topology_density).sum::<f64>() / n,
        attribute_density: qualities.iter().map(|q| q.attribute_density).sum::<f64>() / n,
    }
}

/// Ground-truth check for the paper's *top-k precision* (§V-C): whether `q`
/// really is top-k influential in `members`, judged by a high-θ RR
/// estimate (the paper samples 1000 RR sets per community node).
pub fn is_truly_top_k<R: Rng>(
    g: &AttributedGraph,
    model: Model,
    members: &[NodeId],
    q: NodeId,
    k: usize,
    theta_per_node: usize,
    rng: &mut R,
) -> bool {
    if members.is_empty() {
        return false;
    }
    let est = InfluenceEstimate::on_community(
        g.csr(),
        model,
        members,
        theta_per_node * members.len(),
        rng,
    );
    est.is_top_k(q, members, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::AnswerSource;
    use cod_graph::{AttrInterner, AttrTable, GraphBuilder};

    fn tri() -> AttributedGraph {
        let mut b = GraphBuilder::new(4);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3)] {
            b.add_edge(u, v);
        }
        let attrs = AttrTable::from_lists(vec![vec![0], vec![0], vec![], vec![]]);
        AttributedGraph::from_parts(b.build(), attrs, AttrInterner::new())
    }

    fn ans(members: Vec<NodeId>) -> CodAnswer {
        CodAnswer {
            members,
            rank: 1,
            source: AnswerSource::Compressed,
            uncertain: false,
            cache: None,
            degraded: None,
            trace: None,
        }
    }

    #[test]
    fn missing_answer_scores_zero() {
        let g = tri();
        let q = answer_quality(&g, 0, None);
        assert_eq!(q.size, 0.0);
        assert_eq!(q.topology_density, 0.0);
        assert_eq!(q.attribute_density, 0.0);
    }

    #[test]
    fn quality_of_triangle() {
        let g = tri();
        let a = ans(vec![0, 1, 2]);
        let q = answer_quality(&g, 0, Some(&a));
        assert_eq!(q.size, 3.0);
        assert!((q.topology_density - 1.0).abs() < 1e-12);
        assert!((q.attribute_density - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn averaging_includes_misses() {
        let g = tri();
        let qs = vec![
            answer_quality(&g, 0, Some(&ans(vec![0, 1, 2]))),
            answer_quality(&g, 0, None),
        ];
        let avg = average_quality(&qs);
        assert_eq!(avg.size, 1.5);
    }

    #[test]
    fn true_top_k_check_on_star() {
        let mut b = GraphBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v);
        }
        let g = AttributedGraph::unattributed(b.build());
        let members: Vec<NodeId> = (0..5).collect();
        let mut rng = SmallRng::seed_from_u64(41);
        assert!(is_truly_top_k(
            &g,
            Model::WeightedCascade,
            &members,
            0,
            1,
            200,
            &mut rng
        ));
        assert!(!is_truly_top_k(
            &g,
            Model::WeightedCascade,
            &members,
            3,
            1,
            200,
            &mut rng
        ));
    }
}
