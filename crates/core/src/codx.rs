//! CODX **version 3**: the out-of-core artifact format.
//!
//! v2 (see [`crate::persist`]) stores only the hierarchy and the HIMOR
//! rank rows, framed for eager parsing — every load copies and re-encodes.
//! v3 makes the *whole* prepared-artifact set disk-native so a process can
//! `mmap` the file and serve queries from zero-copy slices:
//!
//! * the graph itself (CSR offsets/targets, attribute tables, interned
//!   attribute names) rides along, so `--mmap` serving needs no separate
//!   graph source;
//! * every array section is aligned to an **8-byte boundary** from the
//!   start of the file (the mmap base is page-aligned, so file alignment
//!   is pointer alignment) and stored in the exact in-memory layout of the
//!   [`Segment`]-backed structs — `u64` offset arrays, `u32` id arrays;
//! * a **section directory** up front (id, CRC32, offset, length per
//!   entry) lets a reader locate sections without scanning, and lets the
//!   CRC of each section be verified **lazily on first access** instead of
//!   in one eager whole-file pass at open;
//! * the same total-length footer as v2 backstops directory corruption.
//!
//! ```text
//! 0:   magic "CODX" | version u32 = 3
//! 8:   num_sections u64
//! 16:  directory: (id u32, crc32 u32, offset u64, len u64) × num_sections
//! ...  sections, each starting 8-aligned, zero-padded between
//! end: total_len u64
//! ```
//!
//! [`MappedArtifacts`] is the read handle. It parses only the header and
//! directory at open; `graph()` / `hierarchy()` / `himor()` materialize
//! their structs on first call (CRC-verifying exactly the sections they
//! touch) and cache the `Arc` for every later call. Structures whose
//! storage is a flat array ([`Csr`], [`AttrTable`],
//! [`crate::himor::RankTable`]) get zero-copy [`Segment`] views; small
//! derived structures (the interner, the dendrogram and its LCA table)
//! are decoded eagerly — they are `O(|A| + n)` against the `O(n + E +
//! Σdep)` arrays that dominate the file.
//!
//! The same handle works without `mmap`: [`MappedArtifacts::open_eager`]
//! reads the file into RAM and serves views into the owned buffer, which
//! is also the v3 fallback path behind [`crate::persist::load_index`].

use std::path::Path;
use std::sync::{Arc, OnceLock};

use cod_graph::bytes::Pod;
use cod_graph::{AttrInterner, AttrTable, AttributedGraph, Bytes, Csr, NodeId, Segment};
use cod_hierarchy::{Dendrogram, Hierarchy, Merge};

use crate::error::{CodError, CodResult};
use crate::failpoint::{self, Site};
use crate::himor::{HimorIndex, RankTable};
use crate::persist::{crc32, write_atomically};

/// The format version this module writes.
pub const CODX_V3: u32 = 3;

const MAGIC: &[u8; 4] = b"CODX";
const DIR_ENTRY_BYTES: usize = 24;

/// Section identifiers. Readers locate sections by id, so the on-disk
/// order is free to change; writers emit them in this order.
mod section {
    pub const META: u32 = 1;
    pub const CSR_OFFSETS: u32 = 2;
    pub const CSR_TARGETS: u32 = 3;
    pub const ATTR_OFFSETS: u32 = 4;
    pub const ATTR_VALUES: u32 = 5;
    pub const ATTR_NAMES: u32 = 6;
    pub const DENDRO_MERGES: u32 = 7;
    pub const HIMOR_OFFSETS: u32 = 8;
    pub const HIMOR_RANKS: u32 = 9;
}

/// META payload: little-endian u64 fields, in order.
const META_FIELDS: usize = 2; // num_nodes, theta

fn corrupt(msg: impl Into<String>) -> CodError {
    CodError::IndexCorrupt(msg.into())
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn push_u64s(out: &mut Vec<u8>, it: impl Iterator<Item = u64>) {
    for x in it {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn push_u32s(out: &mut Vec<u8>, it: impl Iterator<Item = u32>) {
    for x in it {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Serializes the full artifact set into a complete CODX v3 byte image.
pub fn serialize_artifacts(
    g: &AttributedGraph,
    dendro: &Dendrogram,
    index: &HimorIndex,
) -> CodResult<Vec<u8>> {
    let n = g.num_nodes();
    if dendro.num_leaves() != n || index.num_nodes() != n {
        return Err(CodError::GraphFormat(format!(
            "artifact mismatch: graph has {n} nodes, hierarchy {} leaves, index {}",
            dendro.num_leaves(),
            index.num_nodes()
        )));
    }

    let mut meta = Vec::with_capacity(8 * META_FIELDS);
    push_u64s(&mut meta, [n as u64, index.theta() as u64].into_iter());

    let mut csr_offsets = Vec::with_capacity(8 * (n + 1));
    push_u64s(
        &mut csr_offsets,
        g.csr().raw_offsets().iter().map(|&o| o as u64),
    );
    let mut csr_targets = Vec::with_capacity(4 * g.csr().raw_neighbors().len());
    push_u32s(&mut csr_targets, g.csr().raw_neighbors().iter().copied());

    let mut attr_offsets = Vec::with_capacity(8 * (n + 1));
    push_u64s(
        &mut attr_offsets,
        g.attrs().raw_offsets().iter().map(|&o| o as u64),
    );
    let mut attr_values = Vec::with_capacity(4 * g.attrs().raw_values().len());
    push_u32s(&mut attr_values, g.attrs().raw_values().iter().copied());

    let mut attr_names = Vec::new();
    let interner = g.interner();
    push_u64s(&mut attr_names, [interner.len() as u64].into_iter());
    for id in 0..interner.len() as u32 {
        let name = interner.name(id).unwrap_or("");
        push_u32s(&mut attr_names, [name.len() as u32].into_iter());
        attr_names.extend_from_slice(name.as_bytes());
    }

    let merges = dendro.merges();
    let mut dendro_merges = Vec::with_capacity(8 * merges.len());
    for m in &merges {
        push_u32s(&mut dendro_merges, [m.a, m.b].into_iter());
    }

    let ranks = index.rank_table();
    let mut himor_offsets = Vec::with_capacity(8 * (n + 1));
    push_u64s(
        &mut himor_offsets,
        ranks.raw_offsets().iter().map(|&o| o as u64),
    );
    let mut himor_ranks = Vec::with_capacity(4 * ranks.raw_values().len());
    push_u32s(&mut himor_ranks, ranks.raw_values().iter().copied());

    let sections: [(u32, &[u8]); 9] = [
        (section::META, &meta),
        (section::CSR_OFFSETS, &csr_offsets),
        (section::CSR_TARGETS, &csr_targets),
        (section::ATTR_OFFSETS, &attr_offsets),
        (section::ATTR_VALUES, &attr_values),
        (section::ATTR_NAMES, &attr_names),
        (section::DENDRO_MERGES, &dendro_merges),
        (section::HIMOR_OFFSETS, &himor_offsets),
        (section::HIMOR_RANKS, &himor_ranks),
    ];

    // Lay out: header, directory, then 8-aligned sections.
    let dir_end = 16 + DIR_ENTRY_BYTES * sections.len();
    let mut offset = dir_end; // dir_end is already a multiple of 8
    let mut placed = Vec::with_capacity(sections.len());
    for (id, payload) in &sections {
        offset = (offset + 7) & !7;
        placed.push((*id, offset, payload.len(), crc32(payload)));
        offset += payload.len();
    }
    let footer_at = (offset + 7) & !7;
    let total = footer_at + 8;

    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&CODX_V3.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u64).to_le_bytes());
    for (id, off, len, crc) in &placed {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&crc.to_le_bytes());
        out.extend_from_slice(&(*off as u64).to_le_bytes());
        out.extend_from_slice(&(*len as u64).to_le_bytes());
    }
    for ((_, payload), (_, off, _, _)) in sections.iter().zip(&placed) {
        out.resize(*off, 0); // zero padding up to the aligned start
        out.extend_from_slice(payload);
    }
    out.resize(footer_at, 0);
    out.extend_from_slice(&(total as u64).to_le_bytes());
    debug_assert_eq!(out.len(), total);
    Ok(out)
}

/// Writes the full artifact set to `path` atomically (temp sibling +
/// fsync + rename, like [`crate::persist::save_index`]).
pub fn save_artifacts(
    path: &Path,
    g: &AttributedGraph,
    dendro: &Dendrogram,
    index: &HimorIndex,
) -> CodResult<()> {
    let bytes = serialize_artifacts(g, dendro, index)?;
    write_atomically(path, &bytes)
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct Entry {
    id: u32,
    crc: u32,
    off: usize,
    len: usize,
}

/// Lazily-initialized artifact slot. `CodError` is not `Clone`, so load
/// failures are cached as messages and re-wrapped per access.
type Slot<T> = OnceLock<Result<Arc<T>, String>>;

fn slot_get<T>(slot: &Slot<T>, build: impl FnOnce() -> CodResult<T>) -> CodResult<Arc<T>> {
    let cached = slot.get_or_init(|| build().map(Arc::new).map_err(|e| e.to_string()));
    match cached {
        Ok(v) => Ok(Arc::clone(v)),
        Err(msg) => Err(corrupt(msg.clone())),
    }
}

/// A read handle over a CODX v3 artifact file.
///
/// Opening parses only the header and section directory. Each artifact
/// accessor materializes its struct on first call — verifying the CRC of
/// exactly the sections it reads (the [`Site::MmapSection`] failpoint
/// fires per section verification) — and caches the `Arc` thereafter.
/// Array-backed structures hold zero-copy [`Segment`] views into the
/// mapping, so the handle (and all engines built over it) must stay alive
/// while they are in use; the `Arc`s enforce that.
pub struct MappedArtifacts {
    bytes: Arc<Bytes>,
    entries: Vec<Entry>,
    verified: Vec<OnceLock<Result<(), String>>>,
    num_nodes: usize,
    theta: usize,
    graph: Slot<AttributedGraph>,
    hierarchy: Slot<Hierarchy>,
    himor: Slot<HimorIndex>,
}

impl std::fmt::Debug for MappedArtifacts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedArtifacts")
            .field("file_bytes", &self.bytes.len())
            .field("mapped", &self.bytes.is_mapped())
            .field("num_nodes", &self.num_nodes)
            .field("sections", &self.entries.len())
            .finish()
    }
}

impl MappedArtifacts {
    /// Memory-maps `path` (true zero-copy on unix; elsewhere the file is
    /// read into RAM with identical semantics).
    pub fn open(path: &Path) -> CodResult<Self> {
        Self::from_bytes(Bytes::map_file(path)?)
    }

    /// Reads `path` eagerly into RAM — the no-`mmap` fallback. Artifact
    /// structs still use zero-copy views, but into the owned buffer.
    pub fn open_eager(path: &Path) -> CodResult<Self> {
        Self::from_bytes(Bytes::from_vec(std::fs::read(path)?))
    }

    /// Parses an in-memory v3 image (fault-injection tests and the
    /// [`crate::persist::load_index`] v3 fallback).
    pub fn from_vec(bytes: Vec<u8>) -> CodResult<Self> {
        Self::from_bytes(Bytes::from_vec(bytes))
    }

    fn from_bytes(bytes: Bytes) -> CodResult<Self> {
        let bytes = Arc::new(bytes);
        let file_len = bytes.len();
        if file_len < 16 + 8 {
            return Err(corrupt("file too short for a CODX v3 header"));
        }
        if &bytes[0..4] != MAGIC {
            return Err(corrupt("bad magic; not a COD index file"));
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != CODX_V3 {
            return Err(corrupt(format!(
                "version {version} is not CODX v3; use persist::load_index"
            )));
        }
        // Footer before anything else, as in v2: it catches truncation and
        // length-field corruption in one comparison.
        let mut tail = [0u8; 8];
        tail.copy_from_slice(&bytes[file_len - 8..]);
        let total = u64::from_le_bytes(tail);
        if total != file_len as u64 {
            return Err(corrupt(format!(
                "total-length footer says {total} bytes but the file has {file_len}"
            )));
        }

        let mut head = [0u8; 8];
        head.copy_from_slice(&bytes[8..16]);
        let num_sections = u64::from_le_bytes(head);
        let max_sections = (file_len - 24) / DIR_ENTRY_BYTES;
        if num_sections as usize > max_sections {
            return Err(corrupt(format!(
                "directory declares {num_sections} sections but at most {max_sections} fit"
            )));
        }
        let num_sections = num_sections as usize;
        let dir_end = 16 + DIR_ENTRY_BYTES * num_sections;

        let mut entries = Vec::with_capacity(num_sections);
        for i in 0..num_sections {
            let at = 16 + DIR_ENTRY_BYTES * i;
            let e = &bytes[at..at + DIR_ENTRY_BYTES];
            let id = u32::from_le_bytes([e[0], e[1], e[2], e[3]]);
            let crc = u32::from_le_bytes([e[4], e[5], e[6], e[7]]);
            let off = u64::from_le_bytes([e[8], e[9], e[10], e[11], e[12], e[13], e[14], e[15]]);
            let len = u64::from_le_bytes([e[16], e[17], e[18], e[19], e[20], e[21], e[22], e[23]]);
            let (off, len) = (off as usize, len as usize);
            if off % 8 != 0 {
                return Err(corrupt(format!("section {id} offset {off} not 8-aligned")));
            }
            let end = off.checked_add(len).ok_or_else(|| {
                corrupt(format!("section {id} length overflows the address space"))
            })?;
            if off < dir_end || end > file_len - 8 {
                return Err(corrupt(format!(
                    "section {id} [{off}, {end}) escapes the file body"
                )));
            }
            if entries.iter().any(|p: &Entry| p.id == id) {
                return Err(corrupt(format!("duplicate section id {id}")));
            }
            entries.push(Entry { id, crc, off, len });
        }

        let verified = (0..entries.len()).map(|_| OnceLock::new()).collect();
        let mut arts = Self {
            bytes,
            entries,
            verified,
            num_nodes: 0,
            theta: 0,
            graph: OnceLock::new(),
            hierarchy: OnceLock::new(),
            himor: OnceLock::new(),
        };

        // META is tiny and everything cross-checks against it: verify now.
        let (num_nodes, theta) = {
            let meta = arts.section(section::META)?;
            if meta.len() != 8 * META_FIELDS {
                return Err(corrupt(format!(
                    "META section is {} bytes (expected {})",
                    meta.len(),
                    8 * META_FIELDS
                )));
            }
            let mut field = [0u8; 8];
            field.copy_from_slice(&meta[0..8]);
            let num_nodes = u64::from_le_bytes(field) as usize;
            field.copy_from_slice(&meta[8..16]);
            (num_nodes, u64::from_le_bytes(field) as usize)
        };
        arts.num_nodes = num_nodes;
        arts.theta = theta;
        if arts.num_nodes == 0 {
            return Err(corrupt("empty graph"));
        }
        if arts.num_nodes > NodeId::MAX as usize {
            return Err(corrupt(format!("{} nodes overflow NodeId", arts.num_nodes)));
        }
        Ok(arts)
    }

    /// Whether the backing buffer is a true memory mapping.
    pub fn is_mapped(&self) -> bool {
        self.bytes.is_mapped()
    }

    /// Total artifact file size in bytes.
    pub fn file_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Number of nodes the artifacts cover (from META).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// `Θ` the HIMOR index was built with (from META).
    pub fn theta(&self) -> usize {
        self.theta
    }

    /// The payload of section `id`, CRC-verified on first access (the
    /// verification result is cached — later accesses are free).
    fn section(&self, id: u32) -> CodResult<&[u8]> {
        let (i, e) = self
            .entries
            .iter()
            .enumerate()
            .find(|(_, e)| e.id == id)
            .ok_or_else(|| corrupt(format!("missing section {id}")))?;
        let checked = self.verified[i].get_or_init(|| {
            failpoint::hit(Site::MmapSection, None);
            let actual = crc32(&self.bytes[e.off..e.off + e.len]);
            if actual == e.crc {
                Ok(())
            } else {
                Err(format!(
                    "section {id} checksum mismatch (stored {:#010x}, computed {actual:#010x})",
                    e.crc
                ))
            }
        });
        match checked {
            Ok(()) => Ok(&self.bytes[e.off..e.off + e.len]),
            Err(msg) => Err(corrupt(msg.clone())),
        }
    }

    /// A zero-copy `Segment<T>` over section `id`, falling back to an
    /// owned copy when the platform cannot reinterpret the bytes (base
    /// misalignment of an owned buffer, big-endian targets, 32-bit
    /// `usize`).
    fn typed_section<T: Pod + FromLeBytes>(&self, id: u32) -> CodResult<Segment<T>> {
        let payload = self.section(id)?;
        let elem = std::mem::size_of::<T>();
        if payload.len() % elem != 0 {
            return Err(corrupt(format!(
                "section {id} length {} is not a multiple of {elem}",
                payload.len()
            )));
        }
        let len = payload.len() / elem;
        #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
        {
            let e = self
                .entries
                .iter()
                .find(|e| e.id == id)
                .unwrap_or_else(|| unreachable!("section() found the entry"));
            if let Ok(seg) = Segment::view(Arc::clone(&self.bytes), e.off, len) {
                return Ok(seg);
            }
            // Owned buffer whose base happens to be misaligned: fall
            // through to the copy path below.
        }
        let mut v = Vec::with_capacity(len);
        for chunk in payload.chunks_exact(elem) {
            v.push(T::from_le_bytes(chunk));
        }
        Ok(v.into())
    }

    /// The attributed graph, materialized (and its sections verified) on
    /// first call.
    pub fn graph(&self) -> CodResult<Arc<AttributedGraph>> {
        slot_get(&self.graph, || self.build_graph())
    }

    fn build_graph(&self) -> CodResult<AttributedGraph> {
        let n = self.num_nodes;
        let offsets: Segment<usize> = self.typed_section(section::CSR_OFFSETS)?;
        let targets: Segment<NodeId> = self.typed_section(section::CSR_TARGETS)?;
        validate_offsets("CSR", &offsets, n, targets.len())?;
        if let Some(&bad) = targets.iter().find(|&&t| t as usize >= n) {
            return Err(corrupt(format!("CSR target {bad} out of range (n = {n})")));
        }
        let csr = Csr::from_segments(offsets, targets);

        let offsets: Segment<usize> = self.typed_section(section::ATTR_OFFSETS)?;
        let values: Segment<u32> = self.typed_section(section::ATTR_VALUES)?;
        validate_offsets("attribute", &offsets, n, values.len())?;
        let attrs = AttrTable::from_segments(offsets, values);

        let names = self.section(section::ATTR_NAMES)?;
        let mut interner = AttrInterner::new();
        let mut pos = 8usize;
        if names.len() < 8 {
            return Err(corrupt("attribute-name section too short for its count"));
        }
        let mut head = [0u8; 8];
        head.copy_from_slice(&names[0..8]);
        let count = u64::from_le_bytes(head);
        for i in 0..count {
            if pos + 4 > names.len() {
                return Err(corrupt(format!("attribute name {i} truncated")));
            }
            let len =
                u32::from_le_bytes([names[pos], names[pos + 1], names[pos + 2], names[pos + 3]])
                    as usize;
            pos += 4;
            if pos + len > names.len() {
                return Err(corrupt(format!("attribute name {i} truncated")));
            }
            let name = std::str::from_utf8(&names[pos..pos + len])
                .map_err(|_| corrupt(format!("attribute name {i} is not UTF-8")))?;
            interner.intern(name);
            pos += len;
        }
        if pos != names.len() {
            return Err(corrupt("trailing bytes after the attribute names"));
        }
        Ok(AttributedGraph::from_parts(csr, attrs, interner))
    }

    /// The base hierarchy `T` plus its LCA index, decoded on first call.
    pub fn hierarchy(&self) -> CodResult<Arc<Hierarchy>> {
        slot_get(&self.hierarchy, || {
            let n = self.num_nodes;
            let payload = self.section(section::DENDRO_MERGES)?;
            if payload.len() != 8 * (n - 1) {
                return Err(corrupt(format!(
                    "merge section is {} bytes but {n} leaves need {}",
                    payload.len(),
                    8 * (n - 1)
                )));
            }
            let mut merges = Vec::with_capacity(n - 1);
            for (i, pair) in payload.chunks_exact(8).enumerate() {
                let a = u32::from_le_bytes([pair[0], pair[1], pair[2], pair[3]]);
                let b = u32::from_le_bytes([pair[4], pair[5], pair[6], pair[7]]);
                let limit = (n + i) as u32;
                if a >= limit || b >= limit {
                    return Err(corrupt(format!("merge {i} references future vertex")));
                }
                merges.push(Merge { a, b });
            }
            let dendro = Dendrogram::try_from_merges(n, &merges)
                .map_err(|e| corrupt(format!("invalid hierarchy: {e}")))?;
            Ok(Hierarchy::new(dendro))
        })
    }

    /// The HIMOR index over zero-copy rank tables, materialized on first
    /// call. Row lengths are validated against the hierarchy's root
    /// paths, so this loads (and caches) the hierarchy too.
    pub fn himor(&self) -> CodResult<Arc<HimorIndex>> {
        slot_get(&self.himor, || {
            let n = self.num_nodes;
            let hier = self.hierarchy()?;
            let offsets: Segment<usize> = self.typed_section(section::HIMOR_OFFSETS)?;
            let values: Segment<u32> = self.typed_section(section::HIMOR_RANKS)?;
            validate_offsets("HIMOR", &offsets, n, values.len())?;
            for v in 0..n {
                let stored = offsets[v + 1] - offsets[v];
                let expected = hier.dendro.root_path(v as NodeId).len();
                if stored != expected {
                    return Err(corrupt(format!(
                        "node {v}: {stored} ranks stored but the path has {expected} communities"
                    )));
                }
            }
            Ok(HimorIndex::from_table(
                RankTable::from_segments(offsets, values),
                self.theta,
            ))
        })
    }
}

/// Shared offset-array validation: length `n + 1`, starts at 0, ends at
/// the value count, non-decreasing.
fn validate_offsets(what: &str, offsets: &[usize], n: usize, values: usize) -> CodResult<()> {
    if offsets.len() != n + 1 {
        return Err(corrupt(format!(
            "{what} offsets have {} entries (expected {})",
            offsets.len(),
            n + 1
        )));
    }
    if offsets[0] != 0 || offsets[n] != values {
        return Err(corrupt(format!(
            "{what} offsets span [{}, {}] but the value section has {values} entries",
            offsets[0], offsets[n]
        )));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(corrupt(format!("{what} offsets decrease")));
    }
    Ok(())
}

/// Little-endian decoding for the owned-copy fallback of
/// [`MappedArtifacts::typed_section`].
trait FromLeBytes: Sized {
    fn from_le_bytes(chunk: &[u8]) -> Self;
}

impl FromLeBytes for u32 {
    fn from_le_bytes(chunk: &[u8]) -> Self {
        u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]])
    }
}

impl FromLeBytes for usize {
    fn from_le_bytes(chunk: &[u8]) -> Self {
        u64::from_le_bytes([
            chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
        ]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recluster::build_hierarchy;
    use cod_graph::GraphBuilder;
    use cod_hierarchy::{LcaIndex, Linkage};
    use cod_influence::Model;
    use rand::prelude::*;

    fn setup() -> (AttributedGraph, Dendrogram, HimorIndex) {
        let mut b = GraphBuilder::new(10);
        for v in 1..6u32 {
            b.add_edge(0, v);
        }
        for v in 7..10u32 {
            b.add_edge(6, v);
        }
        b.add_edge(5, 6);
        let csr = b.build();
        let mut interner = AttrInterner::new();
        let db = interner.intern("DB");
        let ml = interner.intern("ML");
        let labels: Vec<u32> = (0..10).map(|v| if v < 6 { db } else { ml }).collect();
        let attrs = AttrTable::single_per_node(&labels);
        let g = AttributedGraph::from_parts(csr, attrs, interner);
        let dendro = build_hierarchy(g.csr(), Linkage::Average);
        let lca = LcaIndex::new(&dendro);
        let mut rng = SmallRng::seed_from_u64(50);
        let index = HimorIndex::build(g.csr(), Model::WeightedCascade, &dendro, &lca, 5, &mut rng);
        (g, dendro, index)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (g, dendro, index) = setup();
        let bytes = serialize_artifacts(&g, &dendro, &index).unwrap();
        let arts = MappedArtifacts::from_vec(bytes).unwrap();
        let g2 = arts.graph().unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        for v in 0..10u32 {
            assert_eq!(g2.neighbors(v), g.neighbors(v));
            assert_eq!(g2.node_attrs(v), g.node_attrs(v));
        }
        assert_eq!(g2.interner().name(0), Some("DB"));
        assert_eq!(g2.interner().get("ML"), Some(1));
        let h2 = arts.hierarchy().unwrap();
        let i2 = arts.himor().unwrap();
        assert_eq!(i2.theta(), index.theta());
        for v in 0..10u32 {
            assert_eq!(h2.dendro.root_path(v), dendro.root_path(v));
            assert_eq!(i2.ranks_of(v), index.ranks_of(v));
        }
    }

    #[test]
    fn sections_are_aligned() {
        let (g, dendro, index) = setup();
        let bytes = serialize_artifacts(&g, &dendro, &index).unwrap();
        let num = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        assert_eq!(num, 9);
        for i in 0..num {
            let at = 16 + DIR_ENTRY_BYTES * i;
            let off = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap()) as usize;
            assert_eq!(off % 8, 0, "section {i} misaligned");
        }
    }

    #[test]
    fn corrupt_section_detected_on_access() {
        let (g, dendro, index) = setup();
        let mut bytes = serialize_artifacts(&g, &dendro, &index).unwrap();
        // Find the HIMOR ranks section and flip a payload bit.
        let num = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let mut target = None;
        for i in 0..num {
            let at = 16 + DIR_ENTRY_BYTES * i;
            let id = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            if id == section::HIMOR_RANKS {
                let off = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap()) as usize;
                target = Some(off);
            }
        }
        bytes[target.unwrap()] ^= 0x01;
        let arts = MappedArtifacts::from_vec(bytes).unwrap();
        // Untouched sections still verify...
        assert!(arts.graph().is_ok());
        assert!(arts.hierarchy().is_ok());
        // ...the corrupted one fails on first access, and stays failed.
        for _ in 0..2 {
            match arts.himor() {
                Err(CodError::IndexCorrupt(m)) => assert!(m.contains("checksum"), "{m}"),
                other => panic!("expected IndexCorrupt, got {:?}", other.map(|_| ())),
            }
        }
    }

    #[test]
    fn truncation_is_rejected_at_open() {
        let (g, dendro, index) = setup();
        let bytes = serialize_artifacts(&g, &dendro, &index).unwrap();
        for keep in [bytes.len() / 2, 10, 40, bytes.len() - 1] {
            match MappedArtifacts::from_vec(bytes[..keep].to_vec()) {
                Err(CodError::IndexCorrupt(_)) => {}
                other => panic!("truncation to {keep} must fail, got {other:?}"),
            }
        }
    }

    #[test]
    fn mapped_open_serves_zero_copy_views() {
        let (g, dendro, index) = setup();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cod_codx_test_{}.codx", std::process::id()));
        save_artifacts(&path, &g, &dendro, &index).unwrap();
        let arts = MappedArtifacts::open(&path).unwrap();
        assert_eq!(arts.is_mapped(), cfg!(unix));
        let g2 = arts.graph().unwrap();
        for v in 0..10u32 {
            assert_eq!(g2.neighbors(v), g.neighbors(v));
        }
        let i2 = arts.himor().unwrap();
        for v in 0..10u32 {
            assert_eq!(i2.ranks_of(v), index.ranks_of(v));
        }
        drop(arts);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_files_are_not_v3() {
        let (_, dendro, index) = setup();
        let v2 = crate::persist::serialize_index(&dendro, &index).unwrap();
        match MappedArtifacts::from_vec(v2) {
            Err(CodError::IndexCorrupt(m)) => assert!(m.contains("version"), "{m}"),
            other => panic!("expected IndexCorrupt, got {:?}", other.map(|_| ())),
        }
    }
}
