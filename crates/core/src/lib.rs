//! Characteristic community discovery (COD) — the paper's core algorithms.
//!
//! Given an attributed graph `g`, a query node `q`, a query attribute `ℓ_q`
//! and a rank threshold `k`, COD finds the *largest* community of a
//! hierarchy in which `q` is top-`k` influential (Definition 1). This crate
//! implements:
//!
//! * [`chain`] — the hierarchical-community chain `H(q)` abstraction that
//!   evaluation runs over (a dendrogram root path, a reclustered-subgraph
//!   path, or the LORE composition of both);
//! * [`compressed`] — **Algorithm 1**: compressed COD evaluation with shared
//!   sample generation, hierarchical-first search and incremental top-k
//!   evaluation (§III);
//! * [`independent`] — the naïve per-community baseline (§V-C's
//!   `Independent`);
//! * [`lore`] — **Algorithm 2**: the LORE reclustering score and community
//!   selection (§IV-A);
//! * [`recluster`] — attribute-aware edge weighting and global/local
//!   re-clustering (the `g_ℓ` transform, §IV);
//! * [`himor`] — the **HIMOR index**: compressed construction over the tree
//!   of buckets and **Algorithm 3** query processing (§IV-B);
//! * [`engine`] — the **CodEngine** serving layer: prepared artifacts
//!   behind `Arc`, a bounded recluster cache, reusable query workspaces
//!   and a batch API, fronting all four method variants;
//! * [`pool`] — the cross-query shared RR-pool cache: key-derived
//!   deterministic sampling, incremental top-ups, epoch invalidation and
//!   LRU byte-budget eviction, plus the confidence-bound adaptive
//!   evaluation built on it;
//! * [`pipeline`] — the method facades evaluated in §V: `CODU`, `CODR`,
//!   `CODL⁻` and `CODL` (thin wrappers over the engine);
//! * [`measures`] — answer-quality measures (size, `ρ`, `φ`, top-k
//!   precision) shared by the experiment harness.

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod cache;
pub mod chain;
pub mod codx;
pub mod compressed;
pub mod dynamic;
pub mod engine;
pub mod error;
pub mod failpoint;
pub mod himor;
pub mod independent;
pub mod lore;
pub mod measures;
pub mod mutation;
pub mod persist;
pub mod pipeline;
pub mod pool;
pub mod recluster;
pub mod recovery;
pub mod scratch;
pub mod shard;
pub mod telemetry;
pub mod wal;

pub use cache::{CacheStats, ReclusterCache};
pub use chain::{Chain, ComposedChain, DendroChain, SubgraphChain};
pub use codx::{save_artifacts, serialize_artifacts, MappedArtifacts, CODX_V3};
pub use compressed::{
    compressed_cod, compressed_cod_adaptive, compressed_cod_adaptive_pooled,
    compressed_cod_adaptive_seeded, compressed_cod_governed, compressed_cod_pooled,
    compressed_cod_seeded, compressed_cod_with, influence_half_width, resolve_theta_pooled,
    AdaptiveReport, CodOutcome,
};
pub use dynamic::{DynamicCod, FlushOutcome, MutationFlushReport};
pub use engine::{CodEngine, Method, Query};
pub use error::{CodError, CodResult};
pub use himor::{BuildStats, HimorIndex, HimorPatchState, PatchStats};
pub use lore::{select_recluster_community, ReclusterChoice};
pub use mutation::{Footprint, Mutation, MutationKind, MutationLog};
pub use pipeline::{
    AnswerSource, CacheOutcome, CodAnswer, CodConfig, Codl, CodlMinus, Codr, Codu, QueryLimits,
};
pub use pool::{
    GrowthStats, PoolCache, PoolCacheStats, PoolLookup, PoolView, RrPoolEntry,
    DEFAULT_POOL_BUDGET_BYTES,
};
pub use recovery::{DurabilityConfig, DurableCod, Manifest, RecoveryReport, MANIFEST_NAME};
pub use scratch::QueryScratch;
pub use shard::ShardedEngine;
pub use telemetry::{
    Counter, CounterSnapshot, MetricsRegistry, MetricsSnapshot, Phase, PhaseNanos, QueryOutcome,
    QueryTrace, TraceSink, COUNTERS, PHASES,
};
pub use wal::{AppendReceipt, FsyncPolicy, TornTail, WalWriter};
