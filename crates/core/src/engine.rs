//! The `CodEngine` serving layer: one entry point for all four COD method
//! variants, with shared prepared artifacts, a recluster cache, reusable
//! query workspaces and a batch API.
//!
//! The legacy facades ([`crate::pipeline`]) are one-shot: every query
//! re-derives reclustered hierarchies and re-allocates sampler scratch. The
//! engine owns the immutable prepared artifacts — the graph, the
//! non-attributed hierarchy `T` (+ LCA), the HIMOR index — behind `Arc`,
//! and layers three kinds of reuse on top:
//!
//! 1. an **artifact cache** ([`ReclusterCache`]) keyed by `(attr, β,
//!    linkage)` for CODR's global `T_ℓ` and LORE's local `C_ℓ` hierarchies;
//! 2. **per-query workspaces** ([`QueryScratch`]) pooled and recycled so RR
//!    sampler stamps, HFS queues and top-k buffers are reused across
//!    queries;
//! 3. a **batch API** ([`CodEngine::query_batch`]) that plans queries
//!    sequentially (preserving the caller-RNG draw order), groups pending
//!    evaluations by `(method, attr)` and fans the groups out under the
//!    configured [`Parallelism`] policy.
//!
//! # Determinism contract
//!
//! Engine answers are bit-identical to the legacy facade answers, single or
//! batched, cold or warm cache, for every thread count — provided the
//! config uses a seeded (non-[`Parallelism::Serial`]) policy. The plan pass
//! replicates the facades' RNG discipline exactly: per query, in query
//! order, exactly one `u64` master seed is drawn *iff* that query reaches
//! compressed evaluation (index hits, empty chains and validation errors
//! draw nothing), and the first CODL query triggers the one-time HIMOR
//! build, consuming what [`crate::pipeline::Codl::new`] would. Each pending
//! evaluation is then a pure function of its master seed (PR 2's
//! [`SeedSequence`] contract), so the fan-out order cannot matter. Under
//! [`Parallelism::Serial`] the batch degrades to sequential evaluation that
//! streams the caller RNG — byte-compatible with a hand-written facade
//! loop, at the cost of no cross-query parallelism.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use cod_graph::{AttrId, AttributedGraph, NodeId};
use cod_hierarchy::{Hierarchy, VertexId};
use cod_influence::{par_ranges, CancelToken, Parallelism, SeedPolicy, SeedSequence};
use rand::prelude::*;

use crate::cache::{LocalRecluster, ReclusterCache};
use crate::chain::{Chain, ComposedChain, DendroChain, SubgraphChain};
use crate::compressed::{compressed_cod_governed, compressed_cod_pooled, CodOutcome};
use crate::error::{CodError, CodResult};
use crate::failpoint;
use crate::himor::HimorIndex;
use crate::lore::select_recluster_community;
use crate::pipeline::{
    validate_query, AnswerSource, CacheOutcome, CodAnswer, CodConfig, QueryLimits,
};
use crate::pool::{PoolCache, PoolCacheStats};
use crate::recluster::{build_hierarchy, global_recluster_governed, local_recluster_governed};
use crate::scratch::QueryScratch;
use crate::telemetry::{
    Counter, MetricsRegistry, MetricsSnapshot, Phase, QueryOutcome, QueryTrace, TraceSink,
};
use std::time::{Duration, Instant};

/// Which COD variant answers a query (paper §V naming).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Non-attributed hierarchy `T` + compressed evaluation. Ignores the
    /// query attribute.
    Codu,
    /// Global reclustering of `g_ℓ` + compressed evaluation.
    Codr,
    /// LORE local reclustering + compressed evaluation over the composed
    /// chain (no index).
    CodlMinus,
    /// LORE + the HIMOR index (Algorithm 3).
    Codl,
}

impl Method {
    fn needs_attr(self) -> bool {
        !matches!(self, Method::Codu)
    }
}

/// One COD query: a node, an optional attribute and the method variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Query {
    /// The query node `q`.
    pub node: NodeId,
    /// The query attribute `ℓ_q`. Required by every method except
    /// [`Method::Codu`], which ignores it.
    pub attr: Option<AttrId>,
    /// The method variant.
    pub method: Method,
}

impl Query {
    /// A CODU query (attribute-free).
    pub fn codu(node: NodeId) -> Self {
        Query {
            node,
            attr: None,
            method: Method::Codu,
        }
    }

    /// A query for `(node, attr)` under `method`.
    pub fn new(node: NodeId, attr: AttrId, method: Method) -> Self {
        Query {
            node,
            attr: Some(attr),
            method,
        }
    }
}

/// Artifacts a pending evaluation borrows its chain from. Chains hold
/// references, so the plan stores the owning `Arc`s and the chain is
/// rebuilt (cheaply, and deterministically) at evaluation time.
enum EvalArtifacts {
    /// `DendroChain` over a whole-graph hierarchy (`T` for CODU/CODL⁻
    /// without a LORE choice, `T_ℓ` for CODR).
    Whole(Arc<Hierarchy>),
    /// CODL⁻: subgraph chain inside `C_ℓ` (root included) composed with
    /// the ancestors of `C_ℓ` in `T`.
    ComposedLocal {
        base: Arc<Hierarchy>,
        local: Arc<LocalRecluster>,
        c_ell: VertexId,
    },
    /// CODL index miss: subgraph chain inside `C_ℓ`, root excluded
    /// (Algorithm 3 already ruled it out via the index).
    SubLocal { local: Arc<LocalRecluster> },
}

/// A chain borrowing from [`EvalArtifacts`] — the one shape compressed
/// evaluation sees.
enum AnyChain<'a> {
    Dendro(DendroChain<'a>),
    Sub(SubgraphChain<'a>),
    Composed(ComposedChain<'a>),
}

impl Chain for AnyChain<'_> {
    fn len(&self) -> usize {
        match self {
            AnyChain::Dendro(c) => c.len(),
            AnyChain::Sub(c) => c.len(),
            AnyChain::Composed(c) => c.len(),
        }
    }

    fn size(&self, h: usize) -> usize {
        match self {
            AnyChain::Dendro(c) => c.size(h),
            AnyChain::Sub(c) => c.size(h),
            AnyChain::Composed(c) => c.size(h),
        }
    }

    fn level_of(&self, u: NodeId) -> Option<usize> {
        match self {
            AnyChain::Dendro(c) => c.level_of(u),
            AnyChain::Sub(c) => c.level_of(u),
            AnyChain::Composed(c) => c.level_of(u),
        }
    }

    fn members(&self, h: usize) -> Vec<NodeId> {
        match self {
            AnyChain::Dendro(c) => c.members(h),
            AnyChain::Sub(c) => c.members(h),
            AnyChain::Composed(c) => c.members(h),
        }
    }

    fn universe(&self) -> Vec<NodeId> {
        match self {
            AnyChain::Dendro(c) => c.universe(),
            AnyChain::Sub(c) => c.universe(),
            AnyChain::Composed(c) => c.universe(),
        }
    }

    fn label(&self, h: usize) -> String {
        match self {
            AnyChain::Dendro(c) => c.label(h),
            AnyChain::Sub(c) => c.label(h),
            AnyChain::Composed(c) => c.label(h),
        }
    }
}

fn build_chain<'a>(artifacts: &'a EvalArtifacts, q: NodeId) -> CodResult<AnyChain<'a>> {
    match artifacts {
        EvalArtifacts::Whole(h) => Ok(AnyChain::Dendro(DendroChain::new(&h.dendro, &h.lca, q)?)),
        EvalArtifacts::ComposedLocal { base, local, c_ell } => {
            let lower =
                SubgraphChain::new(&local.sub, &local.hier.dendro, &local.hier.lca, q, true)?;
            Ok(AnyChain::Composed(ComposedChain::new(
                lower,
                &base.dendro,
                &base.lca,
                *c_ell,
            )?))
        }
        EvalArtifacts::SubLocal { local } => Ok(AnyChain::Sub(SubgraphChain::new(
            &local.sub,
            &local.hier.dendro,
            &local.hier.lca,
            q,
            false,
        )?)),
    }
}

/// The outcome of the planning pass for one query.
enum Plan {
    /// Settled without compressed evaluation: validation error, empty
    /// chain, HIMOR index hit — or, under the serial policy, already
    /// evaluated in plan order on the caller's RNG stream.
    Done(CodResult<Option<CodAnswer>>),
    /// Needs compressed evaluation with the pre-drawn master seed.
    Pending {
        q: NodeId,
        /// The resolved query attribute (`None` for CODU) — half of the
        /// shared RR-pool key when [`CodConfig::pool`] is on.
        attr: Option<AttrId>,
        seed: u64,
        artifacts: EvalArtifacts,
        cache: Option<CacheOutcome>,
        /// The requested method — names the rung an answer degrades from.
        method: Method,
        /// The query's governance token (`None` when the config is
        /// unlimited). Minted at plan time, so the deadline clock covers
        /// planning, artifact builds and evaluation together.
        token: Option<CancelToken>,
        /// Set when planning already degraded the artifacts (an
        /// interrupted recluster or index build): the rung that will
        /// actually serve the answer.
        degraded: Option<Method>,
    },
}

/// How many recycled [`QueryScratch`] workspaces the pool retains.
const SCRATCH_POOL_CAP: usize = 64;

/// Sampling budget of the last degradation-ladder rung: when a cancelled
/// evaluation produced no verdict, the engine retries on the base
/// hierarchy with this many RR draws and no token — cheap and bounded by
/// construction, enough for a coarse best-effort verdict.
const FALLBACK_BUDGET: usize = 256;

/// Default [`ReclusterCache`] capacity.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Base retry-after hint handed out with the first shed of a streak; each
/// consecutive shed doubles it (capped at `BASE << RETRY_AFTER_MAX_SHIFT`,
/// 1.6 s), and a successful admission resets the streak. The hint thereby
/// tracks how persistently the in-flight cap has been saturated — a cheap
/// stand-in for queue depth the engine doesn't otherwise keep.
const RETRY_AFTER_BASE_MS: u64 = 25;
const RETRY_AFTER_MAX_SHIFT: u32 = 6;

/// The shared query-serving engine fronting all four COD variants.
///
/// Construction is cheap: the base hierarchy `T` and the HIMOR index are
/// built lazily on first need (the index build consumes the RNG of the
/// query that triggers it, mirroring [`crate::pipeline::Codl::new`]).
/// `&CodEngine` is `Sync`; queries can be served from multiple threads.
pub struct CodEngine {
    g: Arc<AttributedGraph>,
    cfg: CodConfig,
    base: OnceLock<Arc<Hierarchy>>,
    index: OnceLock<Arc<HimorIndex>>,
    cache: ReclusterCache,
    /// Cross-query shared RR-pool cache, consulted only when
    /// [`CodConfig::pool`] is on (it stays empty otherwise).
    pool: PoolCache,
    scratch: Mutex<Vec<QueryScratch>>,
    metrics: MetricsRegistry,
    /// Concurrent [`CodEngine::query_batch`] calls currently admitted
    /// (only maintained when [`CodConfig::max_inflight`] is set).
    inflight: AtomicUsize,
    /// Consecutive sheds since the last successful admission — the input
    /// to the [`CodError::Overloaded`] retry-after hint.
    shed_streak: AtomicU32,
    /// Engine-wide kill switch: the parent of every per-query token. A
    /// server initiating drain fires it once and every in-flight query
    /// observes it at its next governance checkpoint.
    kill: CancelToken,
    /// Set by [`CodEngine::begin_drain`]. While draining, even unlimited
    /// queries get a (bare) token so the kill switch can reach them.
    draining: AtomicBool,
}

/// RAII in-flight slot: releases the admission counter when the batch
/// call ends — normally or by unwind.
struct InflightPermit<'a>(&'a AtomicUsize);

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

impl CodEngine {
    /// An engine over `g` with the default cache capacity.
    pub fn new(g: AttributedGraph, cfg: CodConfig) -> Self {
        Self::with_cache_capacity(Arc::new(g), cfg, DEFAULT_CACHE_CAPACITY)
    }

    /// An engine over an already-shared graph.
    pub fn from_shared(g: Arc<AttributedGraph>, cfg: CodConfig) -> Self {
        Self::with_cache_capacity(g, cfg, DEFAULT_CACHE_CAPACITY)
    }

    /// An engine with an explicit recluster-cache capacity (0 disables
    /// artifact caching; answers are unaffected either way).
    pub fn with_cache_capacity(
        g: Arc<AttributedGraph>,
        cfg: CodConfig,
        cache_capacity: usize,
    ) -> Self {
        Self {
            g,
            cfg,
            base: OnceLock::new(),
            index: OnceLock::new(),
            cache: ReclusterCache::new(cache_capacity),
            pool: PoolCache::new(cfg.pool_budget_bytes),
            scratch: Mutex::new(Vec::new()),
            metrics: MetricsRegistry::default(),
            inflight: AtomicUsize::new(0),
            shed_streak: AtomicU32::new(0),
            kill: CancelToken::unlimited(),
            draining: AtomicBool::new(false),
        }
    }

    /// An engine adopting a prebuilt base hierarchy and HIMOR index
    /// (benchmarks and index persistence amortize construction this way).
    pub fn from_parts(
        g: Arc<AttributedGraph>,
        cfg: CodConfig,
        base: Hierarchy,
        index: HimorIndex,
    ) -> Self {
        let engine = Self::with_cache_capacity(g, cfg, DEFAULT_CACHE_CAPACITY);
        let _ = engine.base.set(Arc::new(base));
        let _ = engine.index.set(Arc::new(index));
        engine
    }

    /// An engine adopting *shared* prebuilt artifacts. Several engines can
    /// point at one base hierarchy and one HIMOR index without copying —
    /// this is how [`crate::shard::ShardedEngine`] keeps one engine per
    /// shard over a single set of (possibly memory-mapped) artifacts.
    pub fn from_shared_parts(
        g: Arc<AttributedGraph>,
        cfg: CodConfig,
        base: Arc<Hierarchy>,
        index: Arc<HimorIndex>,
    ) -> Self {
        let engine = Self::with_cache_capacity(g, cfg, DEFAULT_CACHE_CAPACITY);
        let _ = engine.base.set(base);
        let _ = engine.index.set(index);
        engine
    }

    /// An engine over the artifacts persisted in a CODX v3 file (see
    /// [`crate::codx::MappedArtifacts`]): graph, hierarchy and index are
    /// materialized once — zero-copy views of the mapping where the
    /// platform allows — and shared with the engine.
    pub fn from_mapped(arts: &crate::codx::MappedArtifacts, cfg: CodConfig) -> CodResult<Self> {
        let g = arts.graph()?;
        let base = arts.hierarchy()?;
        let index = arts.himor()?;
        Ok(Self::from_shared_parts(g, cfg, base, index))
    }

    /// The graph being served.
    pub fn graph(&self) -> &AttributedGraph {
        &self.g
    }

    /// The shared configuration.
    pub fn config(&self) -> &CodConfig {
        &self.cfg
    }

    /// Recluster-cache counters (hits, misses, residency).
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// Gauges of the shared RR-pool cache (resident pools and bytes, the
    /// byte budget, the invalidation epoch).
    pub fn pool_stats(&self) -> PoolCacheStats {
        self.pool.stats()
    }

    /// The RR-pool cache's invalidation epoch (bumped by every
    /// [`CodEngine::clear_cache`]).
    pub fn pool_epoch(&self) -> u64 {
        self.pool.epoch()
    }

    /// A snapshot of the engine-lifetime metrics: counter totals, phase
    /// times, outcome tallies and the traced-query latency histogram.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Folds a completed recovery into the engine's metrics so a served
    /// engine built from recovered artifacts exposes `cod_recovery_*`
    /// telemetry (the recovery itself ran before this engine existed).
    pub fn record_recovery(&self, replayed: u64, nanos: u64) {
        self.metrics.record_recovery(replayed, nanos);
    }

    /// Folds WAL activity observed before this engine was constructed
    /// (e.g. by the recovery replay) into its metrics.
    pub fn record_wal_activity(&self, appended: u64, fsyncs: u64) {
        self.metrics.record_wal_activity(appended, fsyncs);
    }

    /// The engine metrics rendered in the Prometheus text exposition
    /// format (counters as `cod_*_total`, recluster-cache gauges, and a
    /// `cod_query_seconds` histogram over traced queries).
    pub fn metrics_text(&self) -> String {
        self.metrics
            .snapshot()
            .render_prometheus(&self.cache.stats(), &self.pool.stats())
    }

    /// Drops every cached recluster artifact and every shared RR pool
    /// (diagnostics/testing; also the coarse invalidation hook for callers
    /// that mutate the graph behind a shared `Arc`).
    pub fn clear_cache(&self) {
        self.cache.clear();
        self.pool.invalidate();
    }

    /// Scoped invalidation for graph mutations: drops only the cached
    /// artifacts and shared RR pools the footprint can have invalidated,
    /// leaving everything else resident.
    ///
    /// * A **topology** footprint clears the recluster cache, the
    ///   unrestricted pools (they sample the whole graph) and the
    ///   restricted pools whose universe contains a touched node; a
    ///   restricted pool disjoint from every touched node samples an
    ///   unchanged subgraph and stays warm.
    /// * A pure **attribute** footprint drops only the entries and pools
    ///   keyed by a touched attribute; attribute-free pools (CODU) and
    ///   pools of disjoint attributes survive.
    ///
    /// Returns `(recluster entries dropped, pools dropped, pool bytes
    /// dropped)`. An empty footprint is a no-op that does not bump the
    /// pool epoch.
    pub fn invalidate_scoped(&self, footprint: &crate::mutation::Footprint) -> (usize, usize, u64) {
        if footprint.is_empty() {
            return (0, 0, 0);
        }
        let entries = self.cache.invalidate_scoped(footprint);
        let (pools, bytes) = if footprint.touches_topology() {
            self.pool.invalidate_scoped(|e| {
                !e.restricted()
                    || footprint
                        .nodes()
                        .iter()
                        .any(|&v| e.universe().binary_search(&v).is_ok())
            })
        } else {
            self.pool
                .invalidate_scoped(|e| e.attr().is_some_and(|a| footprint.touches_attr(a)))
        };
        (entries, pools, bytes)
    }

    /// The non-attributed base hierarchy `T` (+ LCA), built on first use.
    pub fn base_hierarchy(&self) -> Arc<Hierarchy> {
        self.base
            .get_or_init(|| {
                Arc::new(Hierarchy::new(build_hierarchy(
                    self.g.csr(),
                    self.cfg.linkage,
                )))
            })
            .clone()
    }

    /// The HIMOR index if it has been built already.
    pub fn himor(&self) -> Option<Arc<HimorIndex>> {
        self.index.get().cloned()
    }

    /// The HIMOR index, building it on first call. The build consumes RNG
    /// exactly like [`crate::pipeline::Codl::new`]: one `u64` master seed
    /// under a seeded policy, the full sampling stream under
    /// [`Parallelism::Serial`].
    pub fn ensure_himor<R: Rng>(&self, rng: &mut R) -> Arc<HimorIndex> {
        match self.ensure_himor_governed(rng, None) {
            Some(ix) => ix,
            None => unreachable!("an ungoverned build has no token to cancel it"),
        }
    }

    /// [`CodEngine::ensure_himor`] under cooperative governance: the
    /// `CacheBuild` failpoint fires before a build starts, and a token
    /// that fires mid-build aborts it — `None` leaves the index unset so
    /// a later (un-pressured) query can build it cleanly. The seed draw
    /// happens either way, so replay divergence stays confined to queries
    /// whose limits actually fired.
    fn ensure_himor_governed<R: Rng>(
        &self,
        rng: &mut R,
        cancel: Option<&CancelToken>,
    ) -> Option<Arc<HimorIndex>> {
        if let Some(ix) = self.index.get() {
            return Some(ix.clone());
        }
        let base = self.base_hierarchy();
        failpoint::hit(failpoint::Site::CacheBuild, cancel);
        let built = if self.cfg.parallelism.is_seeded() {
            HimorIndex::build_seeded_governed(
                self.g.csr(),
                self.cfg.model,
                &base.dendro,
                &base.lca,
                self.cfg.theta,
                rng.next_u64(),
                self.cfg.parallelism,
                cancel,
            )?
        } else {
            // The serial stream build is the legacy path: interrupting it
            // would desync the caller RNG anyway, so it runs ungoverned
            // and the token (if any) is observed at evaluation instead.
            HimorIndex::build(
                self.g.csr(),
                self.cfg.model,
                &base.dendro,
                &base.lca,
                self.cfg.theta,
                rng,
            )
        };
        Some(self.index.get_or_init(|| Arc::new(built)).clone())
    }

    /// [`CodEngine::ensure_himor_governed`] with build telemetry: when
    /// this call is the one that constructs the index, the build's
    /// sampling effort and bucket merges are charged to `sink` — the
    /// paper likewise charges one-time construction to the query that
    /// triggers it. An aborted build records its elapsed time but no
    /// completed-build counters.
    fn ensure_himor_traced<R: Rng>(
        &self,
        rng: &mut R,
        sink: &mut TraceSink,
        cancel: Option<&CancelToken>,
    ) -> Option<Arc<HimorIndex>> {
        if let Some(ix) = self.index.get() {
            return Some(ix.clone());
        }
        let t0 = sink.timing().then(Instant::now);
        let built = self.ensure_himor_governed(rng, cancel);
        if let Some(t0) = t0 {
            sink.add_nanos(Phase::HimorBuild, t0.elapsed().as_nanos() as u64);
        }
        let index = built?;
        sink.incr(Counter::HimorBuilds);
        let bs = index.build_stats();
        sink.add(Counter::RrGraphsSampled, bs.rr_graphs);
        sink.add(Counter::RrEdgesTraversed, bs.rr_edges);
        sink.add(Counter::HimorBucketMerges, bs.bucket_merges);
        Some(index)
    }

    /// CODR's global hierarchy for `attr`, through the cache.
    pub fn global_hierarchy(&self, attr: AttrId) -> (Arc<Hierarchy>, bool) {
        match self.global_hierarchy_governed(attr, None) {
            Some(out) => out,
            None => unreachable!("an ungoverned build has no token to cancel it"),
        }
    }

    /// [`CodEngine::global_hierarchy`] under cooperative governance:
    /// `None` means the token fired mid-build and nothing was cached.
    fn global_hierarchy_governed(
        &self,
        attr: AttrId,
        cancel: Option<&CancelToken>,
    ) -> Option<(Arc<Hierarchy>, bool)> {
        self.cache
            .try_global(attr, self.cfg.beta, self.cfg.linkage, || {
                failpoint::hit(failpoint::Site::CacheBuild, cancel);
                global_recluster_governed(&self.g, attr, self.cfg.beta, self.cfg.linkage, cancel)
                    .map(|d| Arc::new(Hierarchy::new(d)))
            })
    }

    /// LORE's local artifact for `(attr, vertex)`, through the cache,
    /// under cooperative governance (same contract as
    /// [`CodEngine::global_hierarchy_governed`]).
    fn local_artifact_governed(
        &self,
        attr: AttrId,
        base: &Hierarchy,
        vertex: VertexId,
        cancel: Option<&CancelToken>,
    ) -> Option<(Arc<LocalRecluster>, bool)> {
        self.cache
            .try_local(attr, self.cfg.beta, self.cfg.linkage, vertex, || {
                failpoint::hit(failpoint::Site::CacheBuild, cancel);
                let members = base.dendro.members_sorted(vertex);
                let (sub, sd) = local_recluster_governed(
                    &self.g,
                    &members,
                    attr,
                    self.cfg.beta,
                    self.cfg.linkage,
                    cancel,
                )?;
                Some(Arc::new(LocalRecluster {
                    sub,
                    hier: Hierarchy::new(sd),
                }))
            })
    }

    /// Claims an in-flight slot. `Ok(None)` when no cap is configured;
    /// `Err((cap, retry_after))` when the cap is already saturated (the
    /// call must shed, suggesting the caller retry after the hint).
    fn admit(&self) -> Result<Option<InflightPermit<'_>>, (usize, Duration)> {
        let Some(cap) = self.cfg.max_inflight else {
            return Ok(None);
        };
        match self
            .inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < cap).then_some(n + 1)
            }) {
            Ok(_) => {
                self.shed_streak.store(0, Ordering::Relaxed);
                Ok(Some(InflightPermit(&self.inflight)))
            }
            Err(_) => {
                let streak = self.shed_streak.fetch_add(1, Ordering::Relaxed);
                Err((cap, retry_after_for(streak)))
            }
        }
    }

    /// Batch calls currently holding an admission permit. Only maintained
    /// when [`CodConfig::max_inflight`] is set; always 0 otherwise. The
    /// serve tier asserts this returns to zero after a chaos soak — a
    /// leaked permit would pin it above zero forever.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// The retry-after the *next* shed would carry, without shedding. The
    /// serve tier uses it for `Retry-After` on connections it refuses at
    /// the socket, before any engine call exists to consult.
    pub fn retry_after_hint(&self) -> Duration {
        retry_after_for(self.shed_streak.load(Ordering::Relaxed))
    }

    /// Marks the engine as draining: still answering, but every query
    /// planned from now on carries a token linked to the engine kill
    /// switch — including queries whose limits are unlimited and would
    /// normally skip tokens entirely. Idempotent; there is no un-drain
    /// (the engine is expected to be dropped once the drain completes).
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Whether [`CodEngine::begin_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Fires the engine kill switch: every in-flight query carrying a
    /// token observes it at its next governance checkpoint and walks the
    /// degradation ladder (degraded answer, or `DeadlineExceeded` when
    /// even the fallback rung can't finish). Queries planned before
    /// [`CodEngine::begin_drain`] under an unlimited config carry no
    /// token and run to completion — callers who need the hard stop call
    /// `begin_drain` first and give in-flight work a grace period.
    pub fn cancel_inflight(&self) {
        self.begin_drain();
        self.kill.cancel();
    }

    /// The governance token for one query: the configured limits, linked
    /// to the engine kill switch. Unlimited queries skip the token (the
    /// fast path — every checkpoint is then a no-op) unless the engine is
    /// draining, in which case they get a bare child of the kill switch.
    fn mint_token(&self, limits: &QueryLimits) -> Option<CancelToken> {
        match limits.token_with_parent(&self.kill) {
            Some(t) => Some(t),
            None if self.is_draining() => {
                Some(CancelToken::with_parent(None, None, None, &self.kill))
            }
            None => None,
        }
    }

    fn take_scratch(&self) -> QueryScratch {
        let mut pool = match self.scratch.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        pool.pop().unwrap_or_default()
    }

    fn put_scratch(&self, ws: QueryScratch) {
        let mut pool = match self.scratch.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if pool.len() < SCRATCH_POOL_CAP {
            pool.push(ws);
        }
    }

    /// Answers one COD query. Implemented as a batch of one, so single and
    /// batched answers are identical by construction.
    pub fn query<R: Rng>(&self, query: Query, rng: &mut R) -> CodResult<Option<CodAnswer>> {
        match self.query_batch(std::slice::from_ref(&query), rng).pop() {
            Some(result) => result,
            None => unreachable!("a batch of one yields one result"),
        }
    }

    /// [`CodEngine::query`] under per-request limits (see
    /// [`CodEngine::query_batch_with_limits`]).
    pub fn query_with_limits<R: Rng>(
        &self,
        query: Query,
        limits: &QueryLimits,
        rng: &mut R,
    ) -> CodResult<Option<CodAnswer>> {
        match self
            .query_batch_with_limits(std::slice::from_ref(&query), limits, rng)
            .pop()
        {
            Some(result) => result,
            None => unreachable!("a batch of one yields one result"),
        }
    }

    /// Answers a batch of COD queries, one result per query, in order.
    ///
    /// Planning runs sequentially in query order (validation, artifact
    /// preparation through the cache, index lookups, master-seed draws);
    /// pending evaluations are then grouped by `(method, attr)` and fanned
    /// out under [`CodConfig::parallelism`], each group reusing one pooled
    /// workspace. Results are bit-identical to issuing the same queries
    /// one at a time with the same RNG (see the module docs for the
    /// determinism contract).
    pub fn query_batch<R: Rng>(
        &self,
        queries: &[Query],
        rng: &mut R,
    ) -> Vec<CodResult<Option<CodAnswer>>> {
        let limits = self.cfg.limits;
        self.query_batch_with_limits(queries, &limits, rng)
    }

    /// [`CodEngine::query_batch`] with the configured [`CodConfig::limits`]
    /// replaced by per-call `limits` — the serve tier maps each HTTP
    /// request's deadline here without rebuilding the engine. Admission
    /// control, caching, telemetry and the determinism contract are
    /// identical; a query whose limits never fire answers bit-identically
    /// to an unlimited one.
    pub fn query_batch_with_limits<R: Rng>(
        &self,
        queries: &[Query],
        limits: &QueryLimits,
        rng: &mut R,
    ) -> Vec<CodResult<Option<CodAnswer>>> {
        self.query_batch_impl(queries, limits, rng, None)
    }

    /// [`CodEngine::query_batch_with_limits`] with every master seed
    /// *derived* from `seq` by global query position instead of drawn from
    /// a streaming RNG: query `i` evaluates on `seq.seed_for(offset + i +
    /// 1)` (stream 0 is reserved for the one-time HIMOR build). Because a
    /// query's seed depends only on its position, a batch split across
    /// engines — the [`crate::shard::ShardedEngine`] scatter — answers
    /// bit-identically to the whole batch on one engine, regardless of how
    /// the split interleaves. Queries that settle without evaluation
    /// (validation errors, index hits, empty chains) simply leave their
    /// derived seed unused; unlike the streaming path, this cannot shift
    /// any later query's seed.
    pub fn query_batch_seeded(
        &self,
        queries: &[Query],
        seq: &SeedSequence,
        offset: u64,
        limits: &QueryLimits,
    ) -> Vec<CodResult<Option<CodAnswer>>> {
        let seeds: Vec<u64> = (0..queries.len() as u64)
            .map(|i| seq.seed_for(offset + i + 1))
            .collect();
        self.query_batch_derived(queries, &seeds, seq, limits)
    }

    /// The scatter half of the sharded batch: `queries[i]` evaluates on
    /// `seeds[i]` (already derived from the batch's [`SeedSequence`] by
    /// *global* position), and `seq` stream 0 seeds the RNG any lazy
    /// artifact build would consume.
    pub(crate) fn query_batch_derived(
        &self,
        queries: &[Query],
        seeds: &[u64],
        seq: &SeedSequence,
        limits: &QueryLimits,
    ) -> Vec<CodResult<Option<CodAnswer>>> {
        debug_assert_eq!(queries.len(), seeds.len());
        let mut build_rng = seq.rng_for(0);
        self.query_batch_impl(queries, limits, &mut build_rng, Some(seeds))
    }

    fn query_batch_impl<R: Rng>(
        &self,
        queries: &[Query],
        limits: &QueryLimits,
        rng: &mut R,
        derived: Option<&[u64]>,
    ) -> Vec<CodResult<Option<CodAnswer>>> {
        // Admission control: with `max_inflight` set, at most that many
        // batch calls run concurrently; excess calls are shed immediately
        // with a retriable error instead of queueing behind a stalled
        // engine. The permit is RAII and minted *before* the plan pass,
        // so any panic beyond this point — planning included — releases
        // it on unwind (regression-tested in tests/governance.rs).
        let _permit = match self.admit() {
            Ok(permit) => permit,
            Err((max_inflight, retry_after)) => {
                self.metrics.record_shed(queries.len() as u64);
                return queries
                    .iter()
                    .map(|_| {
                        Err(CodError::Overloaded {
                            max_inflight,
                            retry_after,
                        })
                    })
                    .collect();
            }
        };
        // One telemetry sink per query: plan-pass events land here
        // directly; evaluation events are absorbed from the workspace sink
        // afterwards. Per-query deltas therefore sum exactly to what the
        // registry aggregates (asserted in tests/telemetry.rs).
        let mut sinks: Vec<TraceSink> = queries
            .iter()
            .map(|_| TraceSink::new(self.cfg.trace))
            .collect();
        let plans: Vec<Plan> = queries
            .iter()
            .zip(sinks.iter_mut())
            .enumerate()
            .map(|(i, (&query, sink))| {
                self.plan(query, limits, rng, derived.map(|seeds| seeds[i]), sink)
            })
            .collect();

        // Group pending evaluations by (method, attr), preserving
        // first-appearance order, so one worker serves a whole attribute
        // group from one warm workspace.
        type GroupKey = (Method, Option<AttrId>);
        let mut groups: Vec<(GroupKey, Vec<usize>)> = Vec::new();
        for (i, plan) in plans.iter().enumerate() {
            if matches!(plan, Plan::Pending { .. }) {
                let key = (queries[i].method, queries[i].attr);
                match groups.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, idxs)) => idxs.push(i),
                    None => groups.push((key, vec![i])),
                }
            }
        }
        let pending: usize = groups.iter().map(|(_, idxs)| idxs.len()).sum();

        let mut evaluated: Vec<Option<(CodResult<Option<CodAnswer>>, QueryTrace)>> =
            (0..plans.len()).map(|_| None).collect();
        if pending <= 1 {
            // No fan-out to amortize: evaluate inline and let the single
            // query keep the configured intra-query parallelism.
            let mut ws = self.take_scratch();
            for (_, idxs) in &groups {
                for &i in idxs {
                    if let Plan::Pending {
                        q,
                        attr,
                        seed,
                        ref artifacts,
                        cache,
                        method,
                        ref token,
                        degraded,
                    } = plans[i]
                    {
                        ws.sink.reset(self.cfg.trace);
                        let tok = token.as_ref();
                        let caught = catch_unwind(AssertUnwindSafe(|| {
                            failpoint::hit(failpoint::Site::EvalWorker, tok);
                            self.eval(
                                q,
                                attr,
                                seed,
                                artifacts,
                                cache,
                                self.cfg.parallelism,
                                &mut ws,
                                tok,
                                degraded,
                                method,
                            )
                        }));
                        let result = match caught {
                            Ok(r) => r,
                            Err(payload) => {
                                // The workspace may hold torn state; start
                                // the next query from a fresh one.
                                ws = QueryScratch::default();
                                Err(CodError::Internal(panic_message(payload)))
                            }
                        };
                        evaluated[i] = Some((result, ws.sink.take()));
                    }
                }
            }
            self.put_scratch(ws);
        } else {
            // Fan groups out; inside a group each query runs single-
            // threaded on its own master seed (thread-count invariance
            // makes this bit-identical to any other split).
            let shards = par_ranges(groups.len(), self.cfg.parallelism.thread_count(), |range| {
                let mut ws = self.take_scratch();
                let mut out: Vec<(usize, CodResult<Option<CodAnswer>>, QueryTrace)> = Vec::new();
                for gi in range {
                    for &i in &groups[gi].1 {
                        if let Plan::Pending {
                            q,
                            attr,
                            seed,
                            ref artifacts,
                            cache,
                            method,
                            ref token,
                            degraded,
                        } = plans[i]
                        {
                            ws.sink.reset(self.cfg.trace);
                            let tok = token.as_ref();
                            let caught = catch_unwind(AssertUnwindSafe(|| {
                                failpoint::hit(failpoint::Site::EvalWorker, tok);
                                self.eval(
                                    q,
                                    attr,
                                    seed,
                                    artifacts,
                                    cache,
                                    Parallelism::Threads(1),
                                    &mut ws,
                                    tok,
                                    degraded,
                                    method,
                                )
                            }));
                            let result = match caught {
                                Ok(r) => r,
                                Err(payload) => {
                                    ws = QueryScratch::default();
                                    Err(CodError::Internal(panic_message(payload)))
                                }
                            };
                            out.push((i, result, ws.sink.take()));
                        }
                    }
                }
                self.put_scratch(ws);
                out
            });
            for (i, result, trace) in shards.into_iter().flatten() {
                evaluated[i] = Some((result, trace));
            }
        }

        plans
            .into_iter()
            .zip(evaluated)
            .zip(sinks)
            .map(|((plan, evaluated), mut sink)| {
                let mut result = match plan {
                    Plan::Done(r) => r,
                    Plan::Pending { .. } => match evaluated {
                        Some((r, trace)) => {
                            sink.absorb(&trace);
                            r
                        }
                        None => unreachable!("every pending plan was evaluated"),
                    },
                };
                let outcome = match &result {
                    Ok(Some(a)) if a.source == AnswerSource::Index => QueryOutcome::AnswerIndex,
                    Ok(Some(_)) => QueryOutcome::AnswerCompressed,
                    Ok(None) => QueryOutcome::NoAnswer,
                    Err(_) => QueryOutcome::Error,
                };
                if let Ok(Some(a)) = &result {
                    if a.degraded.is_some() {
                        self.metrics.record_degraded();
                    }
                }
                self.metrics.record(&sink, outcome);
                if self.cfg.trace {
                    if let Ok(Some(a)) = &mut result {
                        a.trace = Some(sink.trace());
                    }
                }
                result
            })
            .collect()
    }

    fn plan<R: Rng>(
        &self,
        query: Query,
        limits: &QueryLimits,
        rng: &mut R,
        derived: Option<u64>,
        sink: &mut TraceSink,
    ) -> Plan {
        let t0 = sink.timing().then(Instant::now);
        // Panic isolation: a planning panic (artifact build, index code,
        // an armed failpoint) must not take the whole batch down — it
        // becomes this query's `Internal` error and the engine stays
        // serviceable. Cache and scratch locks recover from poisoning.
        let plan = match catch_unwind(AssertUnwindSafe(|| {
            self.plan_inner(query, limits, rng, derived, sink)
        })) {
            Ok(Ok(plan)) => plan,
            Ok(Err(e)) => Plan::Done(Err(e)),
            Err(payload) => Plan::Done(Err(CodError::Internal(panic_message(payload)))),
        };
        if let Some(t0) = t0 {
            // Plan time is everything not attributed to a build or (under
            // the serial policy) evaluation phase during planning. The sink
            // is fresh per query, so the already-recorded phase total is
            // exactly that attributed share.
            let total = t0.elapsed().as_nanos() as u64;
            let attributed = sink.trace().phases.total();
            sink.add_nanos(Phase::Plan, total.saturating_sub(attributed));
        }
        plan
    }

    /// The sequential planning pass for one query: validation, artifact
    /// preparation, index lookup, empty-chain short-circuit, master-seed
    /// draw. Replicates the legacy facades' control flow (and therefore
    /// their RNG consumption) exactly. Telemetry for plan-side events
    /// (cache outcomes, artifact builds, index hits) lands in `sink`;
    /// nothing recorded there reads or writes `rng`.
    fn plan_inner<R: Rng>(
        &self,
        query: Query,
        limits: &QueryLimits,
        rng: &mut R,
        derived: Option<u64>,
        sink: &mut TraceSink,
    ) -> CodResult<Plan> {
        let Query {
            node: q, method, ..
        } = query;
        // CODU ignores the attribute (its facade has no attr parameter);
        // every other method requires one.
        let attr = if method.needs_attr() {
            match query.attr {
                Some(a) => Some(a),
                None => {
                    return Err(CodError::InvalidQuery(format!(
                        "method {method:?} requires a query attribute"
                    )))
                }
            }
        } else {
            None
        };
        validate_query(&self.g, &self.cfg, q, attr)?;

        // Governance: one token per query, minted after validation (the
        // deadline clock starts here and covers artifact builds and
        // evaluation together). `None` when the limits are unlimited and
        // the engine isn't draining — the common case, which keeps every
        // checkpoint a no-op.
        let token = self.mint_token(limits);
        let mut degraded: Option<Method> = None;

        let mut cache_outcome = None;
        let artifacts = match method {
            Method::Codu => EvalArtifacts::Whole(self.base_hierarchy()),
            Method::Codr => {
                let Some(a) = attr else {
                    unreachable!("validated above: Codr requires an attribute")
                };
                let t0 = sink.timing().then(Instant::now);
                match self.global_hierarchy_governed(a, token.as_ref()) {
                    Some((h, hit)) => {
                        record_lookup(sink, hit, t0);
                        cache_outcome = hit_to_outcome(hit);
                        EvalArtifacts::Whole(h)
                    }
                    // Reclustering interrupted: degrade to the CODU rung
                    // (the non-attributed hierarchy is an engine-lifetime
                    // artifact, already built or cheap to share).
                    None => {
                        record_lookup(sink, false, t0);
                        degraded = Some(Method::Codu);
                        EvalArtifacts::Whole(self.base_hierarchy())
                    }
                }
            }
            Method::CodlMinus => {
                let Some(a) = attr else {
                    unreachable!("validated above: CodlMinus requires an attribute")
                };
                self.lore_artifacts(
                    a,
                    q,
                    sink,
                    token.as_ref(),
                    &mut cache_outcome,
                    &mut degraded,
                )
            }
            Method::Codl => {
                let Some(a) = attr else {
                    unreachable!("validated above: Codl requires an attribute")
                };
                match self.ensure_himor_traced(rng, sink, token.as_ref()) {
                    // Index build interrupted: fall to the CODL⁻ rung
                    // (LORE without the index), which may degrade further.
                    None => {
                        degraded = Some(Method::CodlMinus);
                        self.lore_artifacts(
                            a,
                            q,
                            sink,
                            token.as_ref(),
                            &mut cache_outcome,
                            &mut degraded,
                        )
                    }
                    Some(index) => {
                        let base = self.base_hierarchy();
                        let choice =
                            select_recluster_community(&self.g, &base.dendro, &base.lca, q, a);
                        let floor: Option<VertexId> = choice.map(|c| c.vertex);
                        // Algorithm 3 lines 1–2: answer from the index if
                        // an ancestor of C_ℓ qualifies. No RNG is consumed.
                        if let Some(c) = index.largest_top_k(&base.dendro, q, floor, self.cfg.k) {
                            let path = base.dendro.root_path(q);
                            let Some(j) = path.iter().position(|&v| v == c) else {
                                unreachable!("largest_top_k only returns vertices on q's root path")
                            };
                            sink.incr(Counter::HimorIndexHits);
                            return Ok(Plan::Done(Ok(Some(CodAnswer {
                                members: base.dendro.members_sorted(c),
                                rank: index.ranks_of(q)[j] as usize,
                                source: AnswerSource::Index,
                                uncertain: false,
                                cache: None,
                                degraded: None,
                                trace: None,
                            }))));
                        }
                        // Line 3: compressed evaluation inside the
                        // reclustered C_ℓ.
                        let Some(choice) = choice else {
                            return Ok(Plan::Done(Ok(None)));
                        };
                        let t0 = sink.timing().then(Instant::now);
                        match self.local_artifact_governed(a, &base, choice.vertex, token.as_ref())
                        {
                            Some((local, hit)) => {
                                record_lookup(sink, hit, t0);
                                cache_outcome = hit_to_outcome(hit);
                                EvalArtifacts::SubLocal { local }
                            }
                            None => {
                                record_lookup(sink, false, t0);
                                degraded = Some(Method::Codu);
                                EvalArtifacts::Whole(base)
                            }
                        }
                    }
                }
            }
        };

        // Build the chain once here so construction errors and the
        // empty-chain short-circuit surface in plan order, *before* any
        // seed draw — exactly where the legacy facades surface them.
        let empty = build_chain(&artifacts, q)?.is_empty();
        if empty {
            return Ok(Plan::Done(Ok(None)));
        }

        if let Some(seed) = derived {
            // Position-derived seed: the caller fixed this query's master
            // seed up front, so the Pending path is mandatory — streaming
            // evaluation here would consume the build RNG and break the
            // scatter-invariance contract of `query_batch_seeded`.
            return Ok(Plan::Pending {
                q,
                attr,
                seed,
                artifacts,
                cache: cache_outcome,
                method,
                token,
                degraded,
            });
        }
        if self.cfg.parallelism.is_seeded() {
            // One master seed per evaluated query, drawn in query order.
            Ok(Plan::Pending {
                q,
                attr,
                seed: rng.next_u64(),
                artifacts,
                cache: cache_outcome,
                method,
                token,
                degraded,
            })
        } else {
            // Legacy serial stream: evaluate now, on the caller's RNG.
            let mut ws = self.take_scratch();
            ws.sink.reset(self.cfg.trace);
            failpoint::hit(failpoint::Site::EvalWorker, token.as_ref());
            let result = self.eval_stream(
                q,
                attr,
                &artifacts,
                cache_outcome,
                rng,
                &mut ws,
                token.as_ref(),
                degraded,
                method,
            );
            let trace = ws.sink.take();
            self.put_scratch(ws);
            sink.absorb(&trace);
            Ok(Plan::Done(result))
        }
    }

    /// CODL⁻'s artifact preparation (also the fallback rung when CODL's
    /// index build is interrupted): LORE community selection plus the
    /// governed local recluster. An interrupted local build degrades to
    /// the CODU rung — the whole-graph hierarchy `T` — and records it in
    /// `degraded`.
    fn lore_artifacts(
        &self,
        a: AttrId,
        q: NodeId,
        sink: &mut TraceSink,
        cancel: Option<&CancelToken>,
        cache_outcome: &mut Option<CacheOutcome>,
        degraded: &mut Option<Method>,
    ) -> EvalArtifacts {
        let base = self.base_hierarchy();
        match select_recluster_community(&self.g, &base.dendro, &base.lca, q, a) {
            // No attribute signal on the path: evaluate T directly.
            None => EvalArtifacts::Whole(base),
            Some(choice) => {
                let t0 = sink.timing().then(Instant::now);
                match self.local_artifact_governed(a, &base, choice.vertex, cancel) {
                    Some((local, hit)) => {
                        record_lookup(sink, hit, t0);
                        *cache_outcome = hit_to_outcome(hit);
                        EvalArtifacts::ComposedLocal {
                            base,
                            local,
                            c_ell: choice.vertex,
                        }
                    }
                    None => {
                        record_lookup(sink, false, t0);
                        *degraded = Some(Method::Codu);
                        EvalArtifacts::Whole(base)
                    }
                }
            }
        }
    }

    /// Seeded evaluation of one planned query.
    #[allow(clippy::too_many_arguments)]
    fn eval(
        &self,
        q: NodeId,
        attr: Option<AttrId>,
        seed: u64,
        artifacts: &EvalArtifacts,
        cache: Option<CacheOutcome>,
        par: Parallelism,
        ws: &mut QueryScratch,
        cancel: Option<&CancelToken>,
        degraded: Option<Method>,
        requested: Method,
    ) -> CodResult<Option<CodAnswer>> {
        let chain = build_chain(artifacts, q)?;
        let out = if self.cfg.pool {
            self.eval_pooled(q, attr, &chain, par, ws, cancel)?
        } else {
            compressed_cod_governed::<SmallRng>(
                self.g.csr(),
                self.cfg.model,
                &chain,
                q,
                self.cfg.k,
                self.cfg.theta,
                self.cfg.budget,
                SeedPolicy::PerIndex {
                    seeds: SeedSequence::new(seed),
                    par,
                },
                Some(ws),
                cancel,
            )?
        };
        // The fallback seed is a derived child stream: disjoint from the
        // primary evaluation's per-index streams by construction.
        self.finish(q, &chain, out, cache, degraded, requested, ws, || {
            SeedSequence::new(seed).child(1).master()
        })
    }

    /// Serial (caller-RNG-stream) evaluation of one planned query.
    #[allow(clippy::too_many_arguments)]
    fn eval_stream<R: Rng>(
        &self,
        q: NodeId,
        attr: Option<AttrId>,
        artifacts: &EvalArtifacts,
        cache: Option<CacheOutcome>,
        rng: &mut R,
        ws: &mut QueryScratch,
        cancel: Option<&CancelToken>,
        degraded: Option<Method>,
        requested: Method,
    ) -> CodResult<Option<CodAnswer>> {
        let chain = build_chain(artifacts, q)?;
        let out = if self.cfg.pool {
            // Pooled sampling is key-derived: the caller RNG is consumed
            // only if the degradation ladder needs a fallback seed.
            self.eval_pooled(q, attr, &chain, self.cfg.parallelism, ws, cancel)?
        } else {
            compressed_cod_governed(
                self.g.csr(),
                self.cfg.model,
                &chain,
                q,
                self.cfg.k,
                self.cfg.theta,
                self.cfg.budget,
                SeedPolicy::Stream(rng),
                Some(ws),
                cancel,
            )?
        };
        // Only a cancelled evaluation draws the extra fallback seed, so
        // the no-trigger caller-RNG stream is untouched.
        self.finish(q, &chain, out, cache, degraded, requested, ws, || {
            rng.next_u64()
        })
    }

    /// Compressed evaluation served from the shared RR-pool cache: look up
    /// (or create) the pool for the chain's `(attr, universe)` key, grow it
    /// to the resolved `Θ` if needed, fold the pooled graphs, and re-apply
    /// the byte budget afterwards (growth happens outside the cache lock).
    /// All pool telemetry flows through the query's own sink so per-query
    /// trace deltas keep summing to the registry aggregates.
    fn eval_pooled(
        &self,
        q: NodeId,
        attr: Option<AttrId>,
        chain: &AnyChain<'_>,
        par: Parallelism,
        ws: &mut QueryScratch,
        cancel: Option<&CancelToken>,
    ) -> CodResult<CodOutcome> {
        let universe = chain.universe();
        let restricted = universe.len() < self.g.num_nodes();
        let (entry, lookup) = self.pool.get_or_create(attr, &universe, restricted);
        ws.sink.incr(if lookup.hit {
            Counter::PoolHits
        } else {
            Counter::PoolMisses
        });
        ws.sink.add(Counter::PoolEvictedBytes, lookup.evicted_bytes);
        let out = compressed_cod_pooled(
            self.g.csr(),
            self.cfg.model,
            chain,
            q,
            self.cfg.k,
            self.cfg.theta,
            self.cfg.budget,
            &entry,
            par,
            Some(ws),
            cancel,
        )?;
        ws.sink
            .add(Counter::PoolEvictedBytes, self.pool.enforce_budget(&entry));
        Ok(out)
    }

    /// Turns a (possibly cancelled) compressed outcome into the final
    /// result, walking the degradation ladder:
    ///
    /// 1. an answer from the planned artifacts — flagged with the serving
    ///    rung (and `uncertain`) if planning degraded or evaluation was
    ///    cut short;
    /// 2. no answer but a cancelled evaluation — one bounded retry on the
    ///    base hierarchy with [`FALLBACK_BUDGET`] draws and no token;
    /// 3. still nothing — the hard [`CodError::DeadlineExceeded`].
    ///
    /// A clean (non-cancelled, non-degraded) `None` stays `Ok(None)`: the
    /// chain genuinely has no qualifying community.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        q: NodeId,
        chain: &impl Chain,
        out: CodOutcome,
        cache: Option<CacheOutcome>,
        degraded: Option<Method>,
        requested: Method,
        ws: &mut QueryScratch,
        fallback_seed: impl FnOnce() -> u64,
    ) -> CodResult<Option<CodAnswer>> {
        let cancelled = out.cancelled;
        let served = degraded.or_else(|| cancelled.then_some(requested));
        match package(chain, out, cache) {
            Some(mut a) => {
                if let Some(rung) = served {
                    a.degraded = Some(rung);
                    a.uncertain = true;
                }
                Ok(Some(a))
            }
            None if cancelled => self.degraded_fallback(q, fallback_seed(), cache, ws),
            None => Ok(None),
        }
    }

    /// The last rung of the degradation ladder (see [`CodEngine::finish`]).
    fn degraded_fallback(
        &self,
        q: NodeId,
        seed: u64,
        cache: Option<CacheOutcome>,
        ws: &mut QueryScratch,
    ) -> CodResult<Option<CodAnswer>> {
        let base = self.base_hierarchy();
        let chain = DendroChain::new(&base.dendro, &base.lca, q)?;
        if chain.is_empty() {
            return Err(CodError::DeadlineExceeded);
        }
        let budget = self
            .cfg
            .budget
            .map_or(FALLBACK_BUDGET, |b| b.min(FALLBACK_BUDGET));
        let out = compressed_cod_governed::<SmallRng>(
            self.g.csr(),
            self.cfg.model,
            &chain,
            q,
            self.cfg.k,
            self.cfg.theta,
            Some(budget),
            SeedPolicy::PerIndex {
                seeds: SeedSequence::new(seed),
                par: Parallelism::Threads(1),
            },
            Some(ws),
            None,
        )?;
        match package(&chain, out, cache) {
            Some(mut a) => {
                a.degraded = Some(Method::Codu);
                a.uncertain = true;
                Ok(Some(a))
            }
            None => Err(CodError::DeadlineExceeded),
        }
    }
}

impl std::fmt::Debug for CodEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CodEngine")
            .field("nodes", &self.g.num_nodes())
            .field("cache", &self.cache.stats())
            .field("himor_built", &self.index.get().is_some())
            .finish_non_exhaustive()
    }
}

/// Packages a compressed outcome into a [`CodAnswer`].
fn package(chain: &impl Chain, out: CodOutcome, cache: Option<CacheOutcome>) -> Option<CodAnswer> {
    let level = out.best_level?;
    Some(CodAnswer {
        members: chain.members(level),
        rank: out.ranks[level],
        source: AnswerSource::Compressed,
        uncertain: out.truncated || out.uncertain[level],
        cache,
        degraded: None,
        trace: None,
    })
}

fn hit_to_outcome(hit: bool) -> Option<CacheOutcome> {
    Some(if hit {
        CacheOutcome::Hit
    } else {
        CacheOutcome::Miss
    })
}

/// Cache lookups that miss run a recluster build; attribute the elapsed
/// time to the Recluster phase and tally the outcome.
fn record_lookup(sink: &mut TraceSink, hit: bool, t0: Option<Instant>) {
    if hit {
        sink.incr(Counter::CacheHits);
    } else {
        sink.incr(Counter::CacheMisses);
        sink.incr(Counter::ReclusterBuilds);
        if let Some(t0) = t0 {
            sink.add_nanos(Phase::Recluster, t0.elapsed().as_nanos() as u64);
        }
    }
}

/// The retry-after hint for the given shed streak: exponential from
/// [`RETRY_AFTER_BASE_MS`], capped at 25 ms × 2⁶ = 1.6 s.
fn retry_after_for(streak: u32) -> Duration {
    Duration::from_millis(RETRY_AFTER_BASE_MS << streak.min(RETRY_AFTER_MAX_SHIFT))
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "query worker panicked".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::{AttrInterner, AttrTable, GraphBuilder};

    fn toy() -> AttributedGraph {
        let mut b = GraphBuilder::new(8);
        for (u, v) in [
            (0, 1),
            (0, 2),
            (1, 2),
            (3, 4),
            (3, 5),
            (4, 5),
            (2, 3),
            (0, 6),
            (0, 7),
            (6, 7),
        ] {
            b.add_edge(u, v);
        }
        let mut i = AttrInterner::new();
        let a = i.intern("A");
        let c = i.intern("B");
        let lists = vec![
            vec![a],
            vec![a],
            vec![a],
            vec![c],
            vec![c],
            vec![c],
            vec![a],
            vec![a],
        ];
        AttributedGraph::from_parts(b.build(), AttrTable::from_lists(lists), i)
    }

    fn cfg() -> CodConfig {
        CodConfig {
            k: 2,
            theta: 60,
            parallelism: Parallelism::Threads(2),
            ..CodConfig::default()
        }
    }

    #[test]
    fn engine_answers_all_methods() {
        let engine = CodEngine::new(toy(), cfg());
        let mut rng = SmallRng::seed_from_u64(77);
        for method in [Method::Codu, Method::Codr, Method::CodlMinus, Method::Codl] {
            let q = Query {
                node: 0,
                attr: Some(0),
                method,
            };
            let ans = engine.query(q, &mut rng).unwrap();
            if let Some(a) = ans {
                assert!(a.members.contains(&0), "{method:?}");
            }
        }
    }

    #[test]
    fn missing_attribute_is_rejected_for_attributed_methods() {
        let engine = CodEngine::new(toy(), cfg());
        let mut rng = SmallRng::seed_from_u64(1);
        for method in [Method::Codr, Method::CodlMinus, Method::Codl] {
            let err = engine
                .query(
                    Query {
                        node: 0,
                        attr: None,
                        method,
                    },
                    &mut rng,
                )
                .unwrap_err();
            assert!(
                matches!(err, CodError::InvalidQuery(_)),
                "{method:?}: {err}"
            );
        }
        // CODU ignores the attribute entirely.
        assert!(engine.query(Query::codu(0), &mut rng).is_ok());
    }

    #[test]
    fn repeat_attribute_queries_hit_the_cache() {
        let engine = CodEngine::new(toy(), cfg());
        let mut rng = SmallRng::seed_from_u64(5);
        let q = Query::new(0, 0, Method::Codr);
        let first = engine.query(q, &mut rng).unwrap();
        let second = engine.query(q, &mut rng).unwrap();
        assert_eq!(
            first.as_ref().map(|a| a.cache),
            Some(Some(CacheOutcome::Miss))
        );
        assert_eq!(
            second.as_ref().map(|a| a.cache),
            Some(Some(CacheOutcome::Hit))
        );
        let stats = engine.cache_stats();
        assert!(stats.hits >= 1 && stats.misses >= 1);
    }

    #[test]
    fn batch_of_errors_and_answers_keeps_positions() {
        let engine = CodEngine::new(toy(), cfg());
        let mut rng = SmallRng::seed_from_u64(9);
        let queries = [
            Query::codu(0),
            Query::codu(99), // out of range
            Query::new(3, 1, Method::Codr),
        ];
        let results = engine.query_batch(&queries, &mut rng);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(CodError::InvalidQuery(_))));
        assert!(results[2].is_ok());
    }
}
