//! Bounded LRU cache for reclustered hierarchies.
//!
//! CODR rebuilds the global attribute-weighted hierarchy `T_ℓ` per query
//! and LORE rebuilds the local `C_ℓ` hierarchy per query — both pure
//! functions of `(attr, β, linkage)` (plus the LORE community vertex).
//! Under realistic workloads queries concentrate on a few popular
//! attributes, so the serving layer keeps the last few artifacts around.
//! Because reclustering is deterministic, serving a cached artifact is
//! *exactly* the artifact a cold build would produce: cache state can never
//! change an answer, only its latency.
//!
//! The cache is a mutex-guarded vector scanned linearly. Capacities are
//! small (default 64) and artifacts are large, so a scan beats the constant
//! factors of a hash map + intrusive list, and `CacheKey` only needs
//! `PartialEq`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cod_graph::subgraph::Subgraph;
use cod_graph::AttrId;
use cod_hierarchy::{Hierarchy, Linkage, VertexId};

/// A cached LORE local recluster: the induced subgraph of `C_ℓ` plus the
/// reclustered hierarchy over it.
pub struct LocalRecluster {
    /// The induced subgraph of the selected community `C_ℓ`.
    pub sub: Subgraph,
    /// The attribute-weighted hierarchy over `sub` with its LCA index.
    pub hier: Hierarchy,
}

/// What a cached artifact was derived from. `β` is keyed by its IEEE bit
/// pattern: builds are bit-deterministic in `β`, so bitwise equality is the
/// correct (and total) notion of "same parameters".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CacheKey {
    attr: AttrId,
    beta_bits: u64,
    linkage: Linkage,
    scope: Scope,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Scope {
    /// CODR's global `T_ℓ` hierarchy.
    Global,
    /// LORE's local recluster of community `C_ℓ` (identified by its vertex
    /// in the base hierarchy).
    Local(VertexId),
}

#[derive(Clone)]
enum Artifact {
    Global(Arc<Hierarchy>),
    Local(Arc<LocalRecluster>),
}

struct Slot {
    key: CacheKey,
    artifact: Artifact,
    /// Last-touch stamp for LRU eviction (monotone per cache).
    stamp: u64,
}

/// Cumulative cache counters, readable without locking.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build the artifact.
    pub misses: u64,
    /// Artifacts currently resident.
    pub len: usize,
    /// Maximum resident artifacts.
    pub capacity: usize,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded LRU cache of reclustered hierarchies keyed by
/// `(attr, β, linkage)` (plus the community vertex for local artifacts).
pub struct ReclusterCache {
    slots: Mutex<(Vec<Slot>, u64)>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

impl ReclusterCache {
    /// A cache holding at most `capacity` artifacts (0 disables caching:
    /// every lookup misses and nothing is retained).
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: Mutex::new((Vec::new(), 0)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity,
        }
    }

    /// Fetches or builds CODR's global hierarchy for `(attr, beta,
    /// linkage)`. Returns the artifact and whether it was a cache hit.
    ///
    /// `build` runs outside the cache lock — a long recluster must not
    /// stall readers of other keys. Two racing builders may both build; the
    /// loser's identical artifact is dropped.
    pub fn global(
        &self,
        attr: AttrId,
        beta: f64,
        linkage: Linkage,
        build: impl FnOnce() -> Arc<Hierarchy>,
    ) -> (Arc<Hierarchy>, bool) {
        let key = CacheKey {
            attr,
            beta_bits: beta.to_bits(),
            linkage,
            scope: Scope::Global,
        };
        match self.fetch_or_insert(key, || Artifact::Global(build())) {
            (Artifact::Global(h), hit) => (h, hit),
            (Artifact::Local(_), _) => unreachable!("global key stored a local artifact"),
        }
    }

    /// [`ReclusterCache::global`] for interruptible builders: `build`
    /// returning `None` (a cancelled governed recluster) caches nothing and
    /// yields `None` — a later uncancelled query rebuilds cleanly. The miss
    /// is still counted: work was attempted.
    pub fn try_global(
        &self,
        attr: AttrId,
        beta: f64,
        linkage: Linkage,
        build: impl FnOnce() -> Option<Arc<Hierarchy>>,
    ) -> Option<(Arc<Hierarchy>, bool)> {
        let key = CacheKey {
            attr,
            beta_bits: beta.to_bits(),
            linkage,
            scope: Scope::Global,
        };
        match self.fetch_or_try_insert(key, || build().map(Artifact::Global))? {
            (Artifact::Global(h), hit) => Some((h, hit)),
            (Artifact::Local(_), _) => unreachable!("global key stored a local artifact"),
        }
    }

    /// Fetches or builds LORE's local recluster of community `c_ell` for
    /// `(attr, beta, linkage)`. Returns the artifact and whether it was a
    /// cache hit.
    pub fn local(
        &self,
        attr: AttrId,
        beta: f64,
        linkage: Linkage,
        c_ell: VertexId,
        build: impl FnOnce() -> Arc<LocalRecluster>,
    ) -> (Arc<LocalRecluster>, bool) {
        let key = CacheKey {
            attr,
            beta_bits: beta.to_bits(),
            linkage,
            scope: Scope::Local(c_ell),
        };
        match self.fetch_or_insert(key, || Artifact::Local(build())) {
            (Artifact::Local(l), hit) => (l, hit),
            (Artifact::Global(_), _) => unreachable!("local key stored a global artifact"),
        }
    }

    /// [`ReclusterCache::local`] for interruptible builders (see
    /// [`ReclusterCache::try_global`]).
    pub fn try_local(
        &self,
        attr: AttrId,
        beta: f64,
        linkage: Linkage,
        c_ell: VertexId,
        build: impl FnOnce() -> Option<Arc<LocalRecluster>>,
    ) -> Option<(Arc<LocalRecluster>, bool)> {
        let key = CacheKey {
            attr,
            beta_bits: beta.to_bits(),
            linkage,
            scope: Scope::Local(c_ell),
        };
        match self.fetch_or_try_insert(key, || build().map(Artifact::Local))? {
            (Artifact::Local(l), hit) => Some((l, hit)),
            (Artifact::Global(_), _) => unreachable!("local key stored a global artifact"),
        }
    }

    fn fetch_or_insert(&self, key: CacheKey, build: impl FnOnce() -> Artifact) -> (Artifact, bool) {
        match self.fetch_or_try_insert(key, || Some(build())) {
            Some(out) => out,
            None => unreachable!("infallible builder returned None"),
        }
    }

    /// Core lookup-or-build: the builder runs *outside* the cache lock and
    /// may decline (`None`) — nothing is inserted then, so an interrupted
    /// build can never leave a partial artifact behind.
    fn fetch_or_try_insert(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> Option<Artifact>,
    ) -> Option<(Artifact, bool)> {
        if let Some(found) = self.lookup(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some((found, true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let artifact = build()?;
        self.insert(key, artifact.clone());
        Some((artifact, false))
    }

    fn lookup(&self, key: CacheKey) -> Option<Artifact> {
        let Ok(mut guard) = self.slots.lock() else {
            return None; // poisoned: a panicking builder elsewhere; degrade to miss
        };
        let (slots, clock) = &mut *guard;
        let slot = slots.iter_mut().find(|s| s.key == key)?;
        *clock += 1;
        slot.stamp = *clock;
        Some(slot.artifact.clone())
    }

    fn insert(&self, key: CacheKey, artifact: Artifact) {
        if self.capacity == 0 {
            return;
        }
        let Ok(mut guard) = self.slots.lock() else {
            return;
        };
        let (slots, clock) = &mut *guard;
        *clock += 1;
        let stamp = *clock;
        if let Some(slot) = slots.iter_mut().find(|s| s.key == key) {
            // Raced with another builder for the same key: keep the
            // incumbent (identical by determinism), refresh recency.
            slot.stamp = stamp;
            return;
        }
        if slots.len() >= self.capacity {
            if let Some(oldest) = slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.stamp)
                .map(|(i, _)| i)
            {
                slots.swap_remove(oldest);
            }
        }
        slots.push(Slot {
            key,
            artifact,
            stamp,
        });
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let len = self.slots.lock().map(|g| g.0.len()).unwrap_or(0);
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            len,
            capacity: self.capacity,
        }
    }

    /// Drops every cached artifact (counters are kept).
    pub fn clear(&self) {
        if let Ok(mut guard) = self.slots.lock() {
            guard.0.clear();
        }
    }

    /// Drops only the artifacts a mutation footprint can have invalidated;
    /// returns how many were dropped.
    ///
    /// * A **topology** footprint clears everything — every reclustered
    ///   hierarchy embeds the adjacency structure.
    /// * A pure **attribute** footprint drops only the entries keyed by a
    ///   touched attribute: `g_ℓ`'s edge weights depend solely on which
    ///   endpoints carry `ℓ`, so artifacts of untouched attributes are
    ///   bit-identical to what a rebuild would produce and stay resident.
    pub fn invalidate_scoped(&self, footprint: &crate::mutation::Footprint) -> usize {
        let Ok(mut guard) = self.slots.lock() else {
            return 0;
        };
        let before = guard.0.len();
        if footprint.touches_topology() {
            guard.0.clear();
        } else {
            guard.0.retain(|s| !footprint.touches_attr(s.key.attr));
        }
        before - guard.0.len()
    }
}

impl std::fmt::Debug for ReclusterCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReclusterCache")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_hierarchy::Dendrogram;

    fn hier() -> Arc<Hierarchy> {
        Arc::new(Hierarchy::new(Dendrogram::singleton()))
    }

    #[test]
    fn repeat_lookups_hit() {
        let cache = ReclusterCache::new(4);
        let (_, hit) = cache.global(0, 1.0, Linkage::Average, hier);
        assert!(!hit);
        let (_, hit) = cache.global(0, 1.0, Linkage::Average, || {
            panic!("must not rebuild a cached artifact")
        });
        assert!(hit);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_parameters_are_distinct_entries() {
        let cache = ReclusterCache::new(8);
        cache.global(0, 1.0, Linkage::Average, hier);
        let (_, hit) = cache.global(0, 2.0, Linkage::Average, hier);
        assert!(!hit, "different beta is a different artifact");
        let (_, hit) = cache.global(0, 1.0, Linkage::Single, hier);
        assert!(!hit, "different linkage is a different artifact");
        let (_, hit) = cache.global(1, 1.0, Linkage::Average, hier);
        assert!(!hit, "different attr is a different artifact");
        assert_eq!(cache.stats().len, 4);
    }

    #[test]
    fn lru_evicts_the_stalest_key() {
        let cache = ReclusterCache::new(2);
        cache.global(0, 1.0, Linkage::Average, hier);
        cache.global(1, 1.0, Linkage::Average, hier);
        // Touch attr 0 so attr 1 is the LRU victim.
        cache.global(0, 1.0, Linkage::Average, || panic!("cached"));
        cache.global(2, 1.0, Linkage::Average, hier);
        let (_, hit0) = cache.global(0, 1.0, Linkage::Average, hier);
        let (_, hit1) = cache.global(1, 1.0, Linkage::Average, hier);
        assert!(hit0, "recently touched entry survives");
        assert!(!hit1, "LRU entry was evicted");
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn zero_capacity_disables_retention() {
        let cache = ReclusterCache::new(0);
        cache.global(0, 1.0, Linkage::Average, hier);
        let (_, hit) = cache.global(0, 1.0, Linkage::Average, hier);
        assert!(!hit);
        assert_eq!(cache.stats().len, 0);
    }

    #[test]
    fn declined_build_caches_nothing() {
        let cache = ReclusterCache::new(4);
        assert!(cache
            .try_global(0, 1.0, Linkage::Average, || None)
            .is_none());
        let s = cache.stats();
        assert_eq!((s.misses, s.len), (1, 0), "declined build counts a miss");
        // A later successful build inserts cleanly and then hits.
        let (_, hit) = cache
            .try_global(0, 1.0, Linkage::Average, || Some(hier()))
            .unwrap();
        assert!(!hit);
        let (_, hit) = cache.try_global(0, 1.0, Linkage::Average, || None).unwrap();
        assert!(hit, "cached artifact served without invoking the builder");
    }

    #[test]
    fn scoped_invalidation_respects_the_footprint() {
        use crate::mutation::Footprint;
        let cache = ReclusterCache::new(8);
        cache.global(0, 1.0, Linkage::Average, hier);
        cache.global(1, 1.0, Linkage::Average, hier);
        cache.global(2, 1.0, Linkage::Average, hier);

        // Attribute footprint: only the touched attribute's entry drops.
        let mut fp = Footprint::new();
        fp.add_attr_event(5, [1]);
        assert_eq!(cache.invalidate_scoped(&fp), 1);
        let (_, hit0) = cache.global(0, 1.0, Linkage::Average, hier);
        let (_, hit1) = cache.global(1, 1.0, Linkage::Average, hier);
        let (_, hit2) = cache.global(2, 1.0, Linkage::Average, hier);
        assert!(hit0 && !hit1 && hit2, "only attr 1 was invalidated");

        // Topology footprint: everything drops.
        let mut fp = Footprint::new();
        fp.add_edge_event(3, 4);
        assert_eq!(cache.invalidate_scoped(&fp), 3);
        assert_eq!(cache.stats().len, 0);
    }

    #[test]
    fn global_and_local_keys_do_not_collide() {
        let cache = ReclusterCache::new(4);
        cache.global(0, 1.0, Linkage::Average, hier);
        let (_, hit) = cache.local(0, 1.0, Linkage::Average, 7, || {
            let g = cod_graph::GraphBuilder::new(1).build();
            Arc::new(LocalRecluster {
                sub: Subgraph::induced(&g, &[0]),
                hier: Hierarchy::new(Dendrogram::singleton()),
            })
        });
        assert!(!hit, "local scope must not alias the global entry");
        assert_eq!(cache.stats().len, 2);
    }
}
