//! The naïve per-community COD baseline (§V-C's `Independent`).
//!
//! Evaluates the influence rank of `q` in every community of the chain
//! *from scratch*: each community `C` gets its own `Θ_C = θ·|C|` RR graphs
//! with sources drawn from `C` and traversal restricted to `C`. Total
//! sampling cost `θ·Σ_C |C|`, which is what makes the paper's Fig. 8/9
//! comparisons so lopsided.

use cod_graph::{Csr, NodeId};
use cod_influence::{InfluenceEstimate, Model};
use rand::prelude::*;

use crate::chain::Chain;
use crate::compressed::CodOutcome;

/// Runs the Independent baseline for query `q` over `chain`.
pub fn independent_cod<R: Rng>(
    g: &Csr,
    model: Model,
    chain: &impl Chain,
    q: NodeId,
    k: usize,
    theta_per_node: usize,
    rng: &mut R,
) -> CodOutcome {
    assert!(k >= 1);
    let m = chain.len();
    let mut best_level = None;
    let mut ranks = Vec::with_capacity(m);
    let mut sigma_q = Vec::with_capacity(m);
    let mut total_theta = 0usize;
    for h in 0..m {
        let members = chain.members(h);
        let theta = theta_per_node.max(1) * members.len();
        total_theta += theta;
        let est = InfluenceEstimate::on_community(g, model, &members, theta, rng);
        let rank = est.rank(q, &members);
        ranks.push(rank);
        sigma_q.push(est.sigma(q));
        if rank <= k {
            best_level = Some(h);
        }
    }
    CodOutcome {
        best_level,
        ranks,
        sigma_q,
        uncertain: vec![false; m],
        theta: total_theta,
        truncated: false,
        cancelled: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::DendroChain;
    use cod_graph::GraphBuilder;
    use cod_hierarchy::{cluster_unweighted, Dendrogram, LcaIndex, Linkage};

    #[test]
    fn agrees_with_structure_on_a_star() {
        let mut b = GraphBuilder::new(6);
        for v in 1..6 {
            b.add_edge(0, v);
        }
        let g = b.build();
        let merges = cluster_unweighted(&g, Linkage::Average);
        let d = Dendrogram::from_merges(6, &merges);
        let lca = LcaIndex::new(&d);
        let chain = DendroChain::new(&d, &lca, 0).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let out = independent_cod(&g, Model::WeightedCascade, &chain, 0, 1, 200, &mut rng);
        assert_eq!(out.best_level, Some(chain.len() - 1));
        for &r in &out.ranks {
            assert_eq!(r, 1);
        }
    }

    #[test]
    fn total_theta_is_sum_over_communities() {
        let mut b = GraphBuilder::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        let merges = cluster_unweighted(&g, Linkage::Average);
        let d = Dendrogram::from_merges(4, &merges);
        let lca = LcaIndex::new(&d);
        let chain = DendroChain::new(&d, &lca, 1).unwrap();
        let mut rng = SmallRng::seed_from_u64(10);
        let out = independent_cod(&g, Model::WeightedCascade, &chain, 1, 1, 3, &mut rng);
        let expected: usize = (0..chain.len()).map(|h| 3 * chain.size(h)).sum();
        assert_eq!(out.theta, expected);
    }
}
