//! The HIMOR index (§IV-B): precomputed influence ranks of every node in
//! every community of the non-attributed hierarchy `T`.
//!
//! **Compressed construction** extends Algorithm 1 in two ways: HFS runs
//! over the *tree-structured* buckets of `T` (one bucket per community,
//! tagged via O(1) `lca`), and the second stage computes *all* node ranks
//! per community instead of a top-k. Buckets are folded bottom-up: child
//! counts accumulate into an ancestor accumulator, each bucket is sorted
//! once, and child rank lists are merge-sorted with updated entries
//! replacing stale ones (Example 7). Cost
//! `O(Θ·ω + |R|·log|V| + Σ_v dep(v))` (Theorem 6).
//!
//! **Queries** (Algorithm 3): for a query `q` and LORE's choice `C_ℓ`, the
//! largest ancestor of `C_ℓ` on `q`'s root path where `q`'s stored rank is
//! `≤ k` is returned directly; only if none exists does CODL fall back to
//! compressed evaluation inside the reclustered `C_ℓ`.

use cod_graph::{Csr, FxHashMap, NodeId};
use cod_hierarchy::{Dendrogram, LcaIndex, VertexId};
use cod_influence::{Model, RrSampler};
use rand::prelude::*;

/// Influence ranks of every node along its root path in `T`.
#[derive(Clone, Debug)]
pub struct HimorIndex {
    /// `ranks[v][j]` = 1-based estimated influence rank of node `v` in its
    /// `j`-th root-path community (0 = the deepest, its leaf's parent).
    ranks: Vec<Vec<u32>>,
    /// Total RR graphs used.
    theta: usize,
}

impl HimorIndex {
    /// Builds the index with `Θ = θ·|V|` RR graphs (compressed
    /// construction).
    pub fn build<R: Rng>(
        g: &Csr,
        model: Model,
        dendro: &Dendrogram,
        lca: &LcaIndex,
        theta_per_node: usize,
        rng: &mut R,
    ) -> Self {
        let n = dendro.num_leaves();
        assert_eq!(g.num_nodes(), n);
        let theta = theta_per_node.max(1) * n;
        let buckets = Self::hfs_stage(g, model, dendro, lca, theta, rng);
        let ranks = Self::merge_stage(dendro, buckets);
        Self { ranks, theta }
    }

    /// Builds the index with `Θ = θ·|V|` RR graphs, sharding the
    /// sampling-plus-HFS stage over `num_threads` OS threads. Each thread
    /// derives its own RNG stream from `seed`, so the result is
    /// deterministic for a fixed `(seed, num_threads)` pair; bucket counts
    /// are merged by addition (commutative), making scheduling irrelevant.
    pub fn build_parallel(
        g: &Csr,
        model: Model,
        dendro: &Dendrogram,
        lca: &LcaIndex,
        theta_per_node: usize,
        seed: u64,
        num_threads: usize,
    ) -> Self {
        let n = dendro.num_leaves();
        assert_eq!(g.num_nodes(), n);
        let threads = num_threads.max(1);
        let theta = theta_per_node.max(1) * n;
        let per_thread = theta.div_ceil(threads);
        let shards: Vec<Vec<FxHashMap<NodeId, u32>>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                let quota = per_thread.min(theta.saturating_sub(t * per_thread));
                handles.push(scope.spawn(move || {
                    let mut rng = rand::rngs::SmallRng::seed_from_u64(
                        seed ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    );
                    Self::hfs_stage(g, model, dendro, lca, quota, &mut rng)
                }));
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(shard) => shard,
                    // A shard thread only dies if it panicked; propagate the
                    // original payload instead of wrapping it.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let mut merged = vec![FxHashMap::default(); dendro.num_vertices()];
        for shard in shards {
            for (slot, bucket) in merged.iter_mut().zip(shard) {
                for (v, c) in bucket {
                    *slot.entry(v).or_insert(0) += c;
                }
            }
        }
        let ranks = Self::merge_stage(dendro, merged);
        Self { ranks, theta }
    }

    /// Stage 1: HFS over the community tree, producing one bucket of
    /// appearance counts per internal vertex.
    fn hfs_stage<R: Rng>(
        g: &Csr,
        model: Model,
        dendro: &Dendrogram,
        lca: &LcaIndex,
        theta: usize,
        rng: &mut R,
    ) -> Vec<FxHashMap<NodeId, u32>> {
        let nv = dendro.num_vertices();
        let n = dendro.num_leaves();
        let max_depth = (0..n as NodeId)
            .map(|v| dendro.depth(dendro.leaf(v)))
            .max()
            .unwrap_or(1) as usize;
        let mut buckets: Vec<FxHashMap<NodeId, u32>> = vec![FxHashMap::default(); nv];
        let mut sampler = RrSampler::new(g, model);
        // Per-RR scratch: queues indexed by tag depth, drained deepest-first.
        let mut queues: Vec<Vec<(u32, VertexId)>> = vec![Vec::new(); max_depth + 1];
        let mut explored: Vec<bool> = Vec::new();

        for _ in 0..theta {
            let rr = sampler.sample_uniform(rng);
            let s = rr.source();
            let s_leaf = dendro.leaf(s);
            if s_leaf == dendro.root() {
                continue; // single-node graph: nothing to index
            }
            let tag0 = dendro.parent(s_leaf);
            let d0 = dendro.depth(tag0) as usize;
            explored.clear();
            explored.resize(rr.len(), false);
            queues[d0].push((0, tag0));
            for d in (1..=d0).rev() {
                while let Some((v, tag)) = queues[d].pop() {
                    if explored[v as usize] {
                        continue;
                    }
                    explored[v as usize] = true;
                    *buckets[tag as usize].entry(rr.node(v)).or_insert(0) += 1;
                    for &u in rr.out_neighbors(v) {
                        if explored[u as usize] {
                            continue;
                        }
                        // Smallest community containing a path from s to u:
                        // the lca of u's leaf with the current tag.
                        let tu = lca.lca(dendro.leaf(rr.node(u)), tag);
                        queues[dendro.depth(tu) as usize].push((u, tu));
                    }
                }
            }
        }
        buckets
    }

    /// Stage 2: bottom-up bucket merge producing per-node rank vectors.
    fn merge_stage(
        dendro: &Dendrogram,
        mut buckets: Vec<FxHashMap<NodeId, u32>>,
    ) -> Vec<Vec<u32>> {
        let n = dendro.num_leaves();
        let nv = dendro.num_vertices();
        // acc[v] = accumulated count of v over the already-folded buckets on
        // its root path (exact count within the vertex being processed).
        let mut acc = vec![0u32; n];
        let mut ranks: Vec<Vec<u32>> = (0..n as NodeId)
            .map(|v| vec![0; dendro.root_path(v).len()])
            .collect();
        // Sorted count lists (count desc, id asc), one per live vertex.
        let mut lists: Vec<Option<Vec<(u32, NodeId)>>> = (0..nv).map(|_| None).collect();
        for (v, slot) in lists.iter_mut().enumerate().take(n) {
            *slot = Some(vec![(0, v as NodeId)]);
        }

        // Post-order over internal vertices: children have smaller subtree
        // intervals and strictly larger depth; process by depth descending,
        // ties broken arbitrarily (children always deeper than parents).
        let mut order: Vec<VertexId> = (n as VertexId..nv as VertexId).collect();
        order.sort_unstable_by_key(|&v| std::cmp::Reverse(dendro.depth(v)));

        for &i in &order {
            let bucket = std::mem::take(&mut buckets[i as usize]);
            for (&v, &c) in &bucket {
                acc[v as usize] += c;
            }
            let [a, b] = dendro.children(i);
            let (Some(la), Some(lb)) = (lists[a as usize].take(), lists[b as usize].take())
            else {
                unreachable!("children are processed before parents in depth order")
            };
            // Updated entries for nodes recorded in this bucket.
            let mut updated: Vec<(u32, NodeId)> =
                bucket.keys().map(|&v| (acc[v as usize], v)).collect();
            updated.sort_unstable_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
            // Three-way merge, skipping stale child entries.
            let mut merged = Vec::with_capacity(la.len() + lb.len());
            let stale = |v: NodeId| bucket.contains_key(&v);
            let mut ia = la.iter().filter(|e| !stale(e.1)).peekable();
            let mut ib = lb.iter().filter(|e| !stale(e.1)).peekable();
            let mut iu = updated.iter().peekable();
            loop {
                // Pick the largest head among the three runs.
                let best = [ia.peek().copied(), ib.peek().copied(), iu.peek().copied()]
                    .into_iter()
                    .enumerate()
                    .filter_map(|(idx, e)| e.map(|e| (idx, *e)))
                    .max_by(|(_, x), (_, y)| x.0.cmp(&y.0).then(y.1.cmp(&x.1)));
                match best {
                    None => break,
                    Some((0, e)) => {
                        ia.next();
                        merged.push(e);
                    }
                    Some((1, e)) => {
                        ib.next();
                        merged.push(e);
                    }
                    Some((_, e)) => {
                        iu.next();
                        merged.push(e);
                    }
                }
            }
            // Assign ranks: ties share the rank of their first position.
            let depth_i = dendro.depth(i);
            let mut rank_of_count = 1u32;
            let mut prev_count = u32::MAX;
            for (pos, &(c, v)) in merged.iter().enumerate() {
                if c != prev_count {
                    rank_of_count = pos as u32 + 1;
                    prev_count = c;
                }
                let j = dendro.depth(dendro.leaf(v)) - 1 - depth_i;
                ranks[v as usize][j as usize] = rank_of_count;
            }
            lists[i as usize] = Some(merged);
        }
        ranks
    }

    /// Reassembles an index from stored parts (see [`crate::persist`]).
    /// `ranks[v]` must align with the root path of `v` in the hierarchy the
    /// index will be queried against.
    pub fn from_raw(ranks: Vec<Vec<u32>>, theta: usize) -> Self {
        Self { ranks, theta }
    }

    /// Number of indexed nodes.
    pub fn num_nodes(&self) -> usize {
        self.ranks.len()
    }

    /// Number of RR graphs used for construction.
    pub fn theta(&self) -> usize {
        self.theta
    }

    /// The stored rank vector of `v`, aligned with
    /// [`Dendrogram::root_path`] (index 0 = deepest community).
    pub fn ranks_of(&self, v: NodeId) -> &[u32] {
        &self.ranks[v as usize]
    }

    /// Algorithm 3, lines 1–2: the *largest* community on `q`'s root path
    /// that contains `floor` (an ancestor-or-self of `floor`) in which `q`
    /// ranks top-k. `floor = None` scans the whole path.
    pub fn largest_top_k(
        &self,
        dendro: &Dendrogram,
        q: NodeId,
        floor: Option<VertexId>,
        k: usize,
    ) -> Option<VertexId> {
        let path = dendro.root_path(q);
        let ranks = self.ranks_of(q);
        debug_assert_eq!(path.len(), ranks.len());
        for j in (0..path.len()).rev() {
            // Stop below the floor community.
            if let Some(f) = floor {
                if !dendro.is_descendant(f, path[j]) {
                    return None;
                }
            }
            if ranks[j] as usize <= k {
                return Some(path[j]);
            }
        }
        None
    }

    /// Approximate index memory in bytes (rank entries only) — the
    /// Table II "index size" metric.
    pub fn memory_bytes(&self) -> usize {
        self.ranks
            .iter()
            .map(|r| r.len() * std::mem::size_of::<u32>() + std::mem::size_of::<Vec<u32>>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::GraphBuilder;
    use cod_hierarchy::{cluster_unweighted, Linkage};
    use cod_influence::InfluenceEstimate;

    fn two_stars() -> Csr {
        let mut b = GraphBuilder::new(10);
        for v in 1..6 {
            b.add_edge(0, v);
        }
        for v in 7..10 {
            b.add_edge(6, v);
        }
        b.add_edge(5, 6);
        b.build()
    }

    fn setup(g: &Csr) -> (Dendrogram, LcaIndex) {
        let merges = cluster_unweighted(g, Linkage::Average);
        let d = Dendrogram::from_merges(g.num_nodes(), &merges);
        let lca = LcaIndex::new(&d);
        (d, lca)
    }

    #[test]
    fn hub_ranks_first_everywhere() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let mut rng = SmallRng::seed_from_u64(21);
        let idx = HimorIndex::build(&g, Model::WeightedCascade, &d, &lca, 300, &mut rng);
        // Node 0 (big hub) must rank 1 in every community on its path.
        for &r in idx.ranks_of(0) {
            assert_eq!(r, 1);
        }
        assert_eq!(
            idx.largest_top_k(&d, 0, None, 1),
            Some(*d.root_path(0).last().unwrap())
        );
    }

    #[test]
    fn ranks_agree_with_direct_community_estimation() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let mut rng = SmallRng::seed_from_u64(22);
        let idx = HimorIndex::build(&g, Model::WeightedCascade, &d, &lca, 800, &mut rng);
        // For every node and every path community, the indexed rank must
        // match an independent high-θ estimate up to tie noise; check the
        // unambiguous hub/leaf relations instead of exact equality.
        let mut est_rng = SmallRng::seed_from_u64(23);
        for q in [0u32, 6, 9] {
            let path = d.root_path(q);
            for (j, &c) in path.iter().enumerate() {
                let members = d.members_sorted(c);
                let est = InfluenceEstimate::on_community(
                    &g,
                    Model::WeightedCascade,
                    &members,
                    400 * members.len(),
                    &mut est_rng,
                );
                let direct = est.rank(q, &members);
                let stored = idx.ranks_of(q)[j] as usize;
                assert!(
                    stored.abs_diff(direct) <= 1,
                    "q={q} level {j}: stored {stored} vs direct {direct}"
                );
            }
        }
    }

    #[test]
    fn floor_limits_the_scan() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let mut rng = SmallRng::seed_from_u64(24);
        let idx = HimorIndex::build(&g, Model::WeightedCascade, &d, &lca, 300, &mut rng);
        // Query node 9 (a periphery leaf of the small star): with floor at
        // the root, only the root is scanned, and node 9 is not top-1 there.
        let root = d.root();
        assert_eq!(idx.largest_top_k(&d, 9, Some(root), 1), None);
        // With a generous k the root itself qualifies.
        assert_eq!(idx.largest_top_k(&d, 9, Some(root), 10), Some(root));
    }

    #[test]
    fn parallel_build_is_deterministic_and_consistent() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let a = HimorIndex::build_parallel(&g, Model::WeightedCascade, &d, &lca, 200, 77, 4);
        let b = HimorIndex::build_parallel(&g, Model::WeightedCascade, &d, &lca, 200, 77, 4);
        for v in 0..10u32 {
            assert_eq!(a.ranks_of(v), b.ranks_of(v), "same seed => same index");
        }
        // Structural agreement with a sequential build: the hub must rank
        // first everywhere under both.
        let mut rng = SmallRng::seed_from_u64(78);
        let seq = HimorIndex::build(&g, Model::WeightedCascade, &d, &lca, 200, &mut rng);
        for &r in a.ranks_of(0) {
            assert_eq!(r, 1);
        }
        for &r in seq.ranks_of(0) {
            assert_eq!(r, 1);
        }
        assert_eq!(a.theta(), seq.theta());
    }

    #[test]
    fn parallel_build_with_one_thread_works() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let a = HimorIndex::build_parallel(&g, Model::WeightedCascade, &d, &lca, 50, 5, 1);
        assert_eq!(a.num_nodes(), 10);
    }

    #[test]
    fn memory_reflects_total_depth() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let mut rng = SmallRng::seed_from_u64(25);
        let idx = HimorIndex::build(&g, Model::WeightedCascade, &d, &lca, 10, &mut rng);
        let entries: usize = (0..10u32).map(|v| d.root_path(v).len()).sum();
        assert!(idx.memory_bytes() >= entries * 4);
    }
}
