//! The HIMOR index (§IV-B): precomputed influence ranks of every node in
//! every community of the non-attributed hierarchy `T`.
//!
//! **Compressed construction** extends Algorithm 1 in two ways: HFS runs
//! over the *tree-structured* buckets of `T` (one bucket per community,
//! tagged via O(1) `lca`), and the second stage computes *all* node ranks
//! per community instead of a top-k. Buckets are folded bottom-up: child
//! counts accumulate into an ancestor accumulator, each bucket is sorted
//! once, and child rank lists are merge-sorted with updated entries
//! replacing stale ones (Example 7). Cost
//! `O(Θ·ω + |R|·log|V| + Σ_v dep(v))` (Theorem 6).
//!
//! **Queries** (Algorithm 3): for a query `q` and LORE's choice `C_ℓ`, the
//! largest ancestor of `C_ℓ` on `q`'s root path where `q`'s stored rank is
//! `≤ k` is returned directly; only if none exists does CODL fall back to
//! compressed evaluation inside the reclustered `C_ℓ`.

use cod_graph::{Csr, FxHashMap, NodeId, Segment};
use cod_hierarchy::{Dendrogram, LcaIndex, TreeDiff, VertexId};
use cod_influence::{
    par_ranges, CancelToken, Model, Parallelism, RrGraph, RrSampler, SampleStats, SeedSequence,
};
use rand::prelude::*;

use crate::failpoint;

/// Draws between governance checkpoints of the seeded HFS stage (matches
/// the compressed-evaluation cadence).
const CHECK_EVERY: usize = 64;

/// Flattened per-node rank rows in CSR-like storage: `of(v)` is node `v`'s
/// rank vector, aligned with its root path (index 0 = deepest community).
///
/// Stored in [`Segment`]s so a memory-mapped CODX v3 artifact can back the
/// table zero-copy; in-RAM builds own their vectors as before.
#[derive(Clone, Debug, Default)]
pub struct RankTable {
    offsets: Segment<usize>,
    values: Segment<u32>,
}

impl RankTable {
    /// Flattens per-node rank rows (the merge stage's output shape).
    pub fn from_nested(rows: Vec<Vec<u32>>) -> Self {
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let mut values = Vec::new();
        offsets.push(0);
        for row in &rows {
            values.extend_from_slice(row);
            offsets.push(values.len());
        }
        Self {
            offsets: offsets.into(),
            values: values.into(),
        }
    }

    /// Assembles a table over pre-validated storage (owned or mapped).
    /// `offsets` must have length `n + 1`, start at 0, end at
    /// `values.len()`, and be non-decreasing.
    pub fn from_segments(offsets: Segment<usize>, values: Segment<u32>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(offsets.first().copied(), Some(0));
        debug_assert_eq!(offsets.last().copied(), Some(values.len()));
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Self { offsets, values }
    }

    /// Number of nodes covered.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The rank row of node `v`.
    #[inline]
    pub fn of(&self, v: NodeId) -> &[u32] {
        let v = v as usize;
        &self.values[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The raw offset array (`n + 1` entries), for persistence.
    #[inline]
    pub fn raw_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw concatenated rank array, for persistence.
    #[inline]
    pub fn raw_values(&self) -> &[u32] {
        &self.values
    }
}

/// Influence ranks of every node along its root path in `T`.
#[derive(Clone, Debug)]
pub struct HimorIndex {
    /// `ranks.of(v)[j]` = 1-based estimated influence rank of node `v` in
    /// its `j`-th root-path community (0 = the deepest, its leaf's parent).
    ranks: RankTable,
    /// Total RR graphs used.
    theta: usize,
    /// Construction-effort counters recorded while building.
    build_stats: BuildStats,
}

/// Effort counters of one HIMOR construction, mirroring Theorem 6's cost
/// terms: `Θ·ω` (graphs × edges sampled) plus one bucket merge per internal
/// vertex of `T`. All zero for an index reloaded from disk
/// ([`HimorIndex::from_raw`]) — persistence stores ranks, not provenance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// RR graphs generated during stage 1.
    pub rr_graphs: u64,
    /// Activated edges recorded across those RR graphs.
    pub rr_edges: u64,
    /// Bottom-up bucket merges performed in stage 2 (one per internal
    /// vertex).
    pub bucket_merges: u64,
}

/// What the seeded HFS stage hands back: per-vertex buckets, the drawn RR
/// graphs (empty unless retention was requested), and effort counters.
type HfsStageOutput = (Vec<FxHashMap<NodeId, u32>>, Vec<RrGraph>, SampleStats);

/// Detached inputs of one vertex's bucket merge (stage 2).
struct MergeItem {
    vertex: VertexId,
    bucket: FxHashMap<NodeId, u32>,
    left: Vec<(u32, NodeId)>,
    right: Vec<(u32, NodeId)>,
}

/// The deferred effects of one vertex's bucket merge: applied by the caller
/// in post-order once the whole wave is computed.
struct MergeOutput {
    /// Sorted count list (count desc, id asc) of the merged community.
    merged: Vec<(u32, NodeId)>,
    /// `(node, new accumulated count)` — assignments, not deltas.
    acc_updates: Vec<(NodeId, u32)>,
    /// `(node, root-path index, rank)` assignments.
    rank_updates: Vec<(NodeId, u32, u32)>,
}

impl HimorIndex {
    /// Builds the index with `Θ = θ·|V|` RR graphs (compressed
    /// construction).
    pub fn build<R: Rng>(
        g: &Csr,
        model: Model,
        dendro: &Dendrogram,
        lca: &LcaIndex,
        theta_per_node: usize,
        rng: &mut R,
    ) -> Self {
        let n = dendro.num_leaves();
        assert_eq!(g.num_nodes(), n);
        let theta = theta_per_node.max(1) * n;
        let (buckets, sampled) = Self::hfs_stage(g, model, dendro, lca, theta, rng);
        let Some(ranks) = Self::merge_stage(dendro, buckets, 1, None) else {
            unreachable!("an ungoverned build has no token to cancel it")
        };
        let build_stats = BuildStats {
            rr_graphs: sampled.graphs,
            rr_edges: sampled.edges,
            bucket_merges: (dendro.num_vertices() - n) as u64,
        };
        Self {
            ranks: RankTable::from_nested(ranks),
            theta,
            build_stats,
        }
    }

    /// Builds the index with `Θ = θ·|V|` RR graphs using per-index seed
    /// derivation: sample `i` is drawn entirely from the RNG
    /// [`SeedSequence::rng_for`] derives for index `i`, so the index is a
    /// pure function of `(g, model, T, θ, seed)` — bit-identical for every
    /// thread count and across repeated runs. Both the sampling/HFS stage
    /// and the bottom-up bucket merge (parallelized over same-depth tree
    /// waves, whose vertices have disjoint member sets) run on `par`.
    pub fn build_seeded(
        g: &Csr,
        model: Model,
        dendro: &Dendrogram,
        lca: &LcaIndex,
        theta_per_node: usize,
        seed: u64,
        par: Parallelism,
    ) -> Self {
        match Self::build_seeded_governed(g, model, dendro, lca, theta_per_node, seed, par, None) {
            Some(idx) => idx,
            None => unreachable!("an ungoverned build has no token to cancel it"),
        }
    }

    /// [`HimorIndex::build_seeded`] under cooperative governance: the HFS
    /// stage polls `cancel` every `CHECK_EVERY` draws (charging traversed
    /// RR edges against the token's cap) and the merge stage polls it once
    /// per depth wave. A fired token aborts the build and returns `None` —
    /// a half-built index is never observable. `cancel: None` is exactly
    /// [`HimorIndex::build_seeded`]; checkpoints never touch the RNG, so a
    /// token that does not fire leaves the index bit-identical.
    #[allow(clippy::too_many_arguments)] // the build signature plus the token
    pub fn build_seeded_governed(
        g: &Csr,
        model: Model,
        dendro: &Dendrogram,
        lca: &LcaIndex,
        theta_per_node: usize,
        seed: u64,
        par: Parallelism,
        cancel: Option<&CancelToken>,
    ) -> Option<Self> {
        let n = dendro.num_leaves();
        assert_eq!(g.num_nodes(), n);
        let theta = theta_per_node.max(1) * n;
        let threads = par.thread_count();
        let (buckets, _, sampled) = Self::hfs_stage_seeded(
            g,
            model,
            dendro,
            lca,
            theta,
            SeedSequence::new(seed),
            threads,
            cancel,
            false,
        )?;
        let ranks = Self::merge_stage(dendro, buckets, threads, cancel)?;
        let build_stats = BuildStats {
            rr_graphs: sampled.graphs,
            rr_edges: sampled.edges,
            bucket_merges: (dendro.num_vertices() - n) as u64,
        };
        Some(Self {
            ranks: RankTable::from_nested(ranks),
            theta,
            build_stats,
        })
    }

    /// Builds the index with `Θ = θ·|V|` RR graphs over `num_threads` OS
    /// threads. A thin wrapper over [`HimorIndex::build_seeded`], kept for
    /// callers that count threads directly: the result depends only on
    /// `seed`, never on `num_threads`.
    pub fn build_parallel(
        g: &Csr,
        model: Model,
        dendro: &Dendrogram,
        lca: &LcaIndex,
        theta_per_node: usize,
        seed: u64,
        num_threads: usize,
    ) -> Self {
        Self::build_seeded(
            g,
            model,
            dendro,
            lca,
            theta_per_node,
            seed,
            Parallelism::Threads(num_threads),
        )
    }

    /// [`HimorIndex::build_seeded_governed`] variant that additionally
    /// retains the drawn RR graphs and the master per-vertex buckets, so
    /// later graph mutations can *patch* the index via
    /// [`HimorPatchState::patch`] instead of resampling all `Θ` graphs.
    #[allow(clippy::too_many_arguments)] // the build signature plus the token
    pub fn build_seeded_patchable(
        g: &Csr,
        model: Model,
        dendro: &Dendrogram,
        lca: &LcaIndex,
        theta_per_node: usize,
        seed: u64,
        par: Parallelism,
        cancel: Option<&CancelToken>,
    ) -> Option<(Self, HimorPatchState)> {
        let n = dendro.num_leaves();
        assert_eq!(g.num_nodes(), n);
        let theta = theta_per_node.max(1) * n;
        let threads = par.thread_count();
        let seeds = SeedSequence::new(seed);
        let (buckets, samples, sampled) =
            Self::hfs_stage_seeded(g, model, dendro, lca, theta, seeds, threads, cancel, true)?;
        let ranks = Self::merge_stage(dendro, buckets.clone(), threads, cancel)?;
        let build_stats = BuildStats {
            rr_graphs: sampled.graphs,
            rr_edges: sampled.edges,
            bucket_merges: (dendro.num_vertices() - n) as u64,
        };
        let index = Self {
            ranks: RankTable::from_nested(ranks),
            theta,
            build_stats,
        };
        let state = HimorPatchState {
            seeds,
            theta,
            theta_per_node: theta_per_node.max(1),
            samples,
            buckets,
        };
        Some((index, state))
    }

    /// Stage 1: HFS over the community tree, producing one bucket of
    /// appearance counts per internal vertex.
    fn hfs_stage<R: Rng>(
        g: &Csr,
        model: Model,
        dendro: &Dendrogram,
        lca: &LcaIndex,
        theta: usize,
        rng: &mut R,
    ) -> (Vec<FxHashMap<NodeId, u32>>, SampleStats) {
        let nv = dendro.num_vertices();
        let n = dendro.num_leaves();
        let max_depth = (0..n as NodeId)
            .map(|v| dendro.depth(dendro.leaf(v)))
            .max()
            .unwrap_or(1) as usize;
        let mut buckets: Vec<FxHashMap<NodeId, u32>> = vec![FxHashMap::default(); nv];
        let mut sampler = RrSampler::new(g, model);
        // Per-RR scratch: queues indexed by tag depth, drained deepest-first.
        let mut queues: Vec<Vec<(u32, VertexId)>> = vec![Vec::new(); max_depth + 1];
        let mut explored: Vec<bool> = Vec::new();

        for _ in 0..theta {
            let rr = sampler.sample_uniform(rng);
            Self::hfs_record_tree(dendro, lca, &rr, &mut queues, &mut explored, &mut buckets);
        }
        let sampled = sampler.stats();
        (buckets, sampled)
    }

    /// Stage 1 with per-index seed derivation, sharded over `threads`
    /// contiguous index ranges. Bucket counts are merged by addition, which
    /// commutes, so chunking cannot affect the result. Returns `None` when
    /// `cancel` fired: a partially sampled bucket set must not rank anyone.
    ///
    /// With `keep_samples` set, the drawn RR graphs are also returned, in
    /// index order (shard ranges are contiguous and ascending), so a
    /// [`HimorPatchState`] can later subtract and redraw individual samples.
    #[allow(clippy::too_many_arguments)] // internal stage: build inputs plus the token
    fn hfs_stage_seeded(
        g: &Csr,
        model: Model,
        dendro: &Dendrogram,
        lca: &LcaIndex,
        theta: usize,
        seeds: SeedSequence,
        threads: usize,
        cancel: Option<&CancelToken>,
        keep_samples: bool,
    ) -> Option<HfsStageOutput> {
        let nv = dendro.num_vertices();
        let n = dendro.num_leaves();
        let max_depth = (0..n as NodeId)
            .map(|v| dendro.depth(dendro.leaf(v)))
            .max()
            .unwrap_or(1) as usize;
        let shards = par_ranges(theta, threads, |range| {
            let mut sampler = RrSampler::new(g, model);
            let mut queues: Vec<Vec<(u32, VertexId)>> = vec![Vec::new(); max_depth + 1];
            let mut explored: Vec<bool> = Vec::new();
            let mut buckets: Vec<FxHashMap<NodeId, u32>> = vec![FxHashMap::default(); nv];
            let mut kept: Vec<RrGraph> = Vec::new();
            if keep_samples {
                kept.reserve(range.len());
            }
            let mut charged = sampler.stats();
            for (off, i) in range.enumerate() {
                if off % CHECK_EVERY == 0 {
                    failpoint::hit(failpoint::Site::SampleBatch, cancel);
                    if let Some(tok) = cancel {
                        let now = sampler.stats();
                        tok.charge_rr_edges(now.delta_since(charged).edges);
                        charged = now;
                        if tok.should_stop() {
                            break;
                        }
                    }
                }
                let mut rng = seeds.rng_for(i as u64);
                let rr = sampler.sample_uniform(&mut rng);
                Self::hfs_record_tree(dendro, lca, &rr, &mut queues, &mut explored, &mut buckets);
                if keep_samples {
                    kept.push(rr);
                }
            }
            (buckets, kept, sampler.stats())
        });
        let mut sampled = SampleStats::default();
        let mut merged: Vec<FxHashMap<NodeId, u32>> = vec![FxHashMap::default(); nv];
        let mut samples: Vec<RrGraph> = Vec::new();
        if keep_samples {
            samples.reserve(theta);
        }
        for (shard, kept, stats) in shards {
            sampled = sampled.merged(stats);
            for (slot, bucket) in merged.iter_mut().zip(shard) {
                for (v, c) in bucket {
                    *slot.entry(v).or_insert(0) += c;
                }
            }
            samples.extend(kept);
        }
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return None;
        }
        Some((merged, samples, sampled))
    }

    /// Records one RR graph into the per-vertex buckets: every RR node goes
    /// to the bucket of the smallest community containing a path from the
    /// source (tagged via O(1) `lca`), drained deepest-first. Leaves
    /// `queues` empty for reuse.
    fn hfs_record_tree(
        dendro: &Dendrogram,
        lca: &LcaIndex,
        rr: &RrGraph,
        queues: &mut [Vec<(u32, VertexId)>],
        explored: &mut Vec<bool>,
        buckets: &mut [FxHashMap<NodeId, u32>],
    ) {
        Self::hfs_visit_tree(dendro, lca, rr, queues, explored, |tag, node| {
            *buckets[tag as usize].entry(node).or_insert(0) += 1;
        });
    }

    /// The HFS tree traversal of one RR graph, factored out so the
    /// incremental patch can *subtract* a sample's contributions with the
    /// same closure shape the build uses to add them. `visit(tag, node)`
    /// fires exactly once per explored RR node, with `tag` the smallest
    /// community containing a source path to it.
    fn hfs_visit_tree(
        dendro: &Dendrogram,
        lca: &LcaIndex,
        rr: &RrGraph,
        queues: &mut [Vec<(u32, VertexId)>],
        explored: &mut Vec<bool>,
        mut visit: impl FnMut(VertexId, NodeId),
    ) {
        let s = rr.source();
        let s_leaf = dendro.leaf(s);
        if s_leaf == dendro.root() {
            return; // single-node graph: nothing to index
        }
        let tag0 = dendro.parent(s_leaf);
        let d0 = dendro.depth(tag0) as usize;
        explored.clear();
        explored.resize(rr.len(), false);
        queues[d0].push((0, tag0));
        for d in (1..=d0).rev() {
            while let Some((v, tag)) = queues[d].pop() {
                if explored[v as usize] {
                    continue;
                }
                explored[v as usize] = true;
                visit(tag, rr.node(v));
                for &u in rr.out_neighbors(v) {
                    if explored[u as usize] {
                        continue;
                    }
                    // Smallest community containing a path from s to u:
                    // the lca of u's leaf with the current tag.
                    let tu = lca.lca(dendro.leaf(rr.node(u)), tag);
                    queues[dendro.depth(tu) as usize].push((u, tu));
                }
            }
        }
    }

    /// Stage 2: bottom-up bucket merge producing per-node rank vectors.
    ///
    /// With `threads > 1`, each equal-depth wave of the post-order is
    /// processed in parallel: same-depth vertices root disjoint subtrees,
    /// so their buckets, child lists, and rank rows never overlap, and
    /// every worker reads the accumulator state frozen before its wave —
    /// exactly what the serial order would have shown it. Results are
    /// applied in the fixed post-order, so the output is identical for
    /// every thread count.
    ///
    /// Polls `cancel` once per depth wave; a fired token abandons the
    /// half-merged state and returns `None`.
    fn merge_stage(
        dendro: &Dendrogram,
        mut buckets: Vec<FxHashMap<NodeId, u32>>,
        threads: usize,
        cancel: Option<&CancelToken>,
    ) -> Option<Vec<Vec<u32>>> {
        let n = dendro.num_leaves();
        let nv = dendro.num_vertices();
        // acc[v] = accumulated count of v over the already-folded buckets on
        // its root path (exact count within the vertex being processed).
        let mut acc = vec![0u32; n];
        let mut ranks: Vec<Vec<u32>> = (0..n as NodeId)
            .map(|v| vec![0; dendro.root_path(v).len()])
            .collect();
        // Sorted count lists (count desc, id asc), one per live vertex.
        let mut lists: Vec<Option<Vec<(u32, NodeId)>>> = (0..nv).map(|_| None).collect();
        for (v, slot) in lists.iter_mut().enumerate().take(n) {
            *slot = Some(vec![(0, v as NodeId)]);
        }

        // Post-order over internal vertices: children have smaller subtree
        // intervals and strictly larger depth; process by depth descending,
        // ties broken arbitrarily (children always deeper than parents).
        let mut order: Vec<VertexId> = (n as VertexId..nv as VertexId).collect();
        order.sort_unstable_by_key(|&v| std::cmp::Reverse(dendro.depth(v)));

        let mut wave_start = 0;
        while wave_start < order.len() {
            failpoint::hit(failpoint::Site::MergeWave, cancel);
            if let Some(tok) = cancel {
                if tok.should_stop() {
                    return None;
                }
            }
            let depth = dendro.depth(order[wave_start]);
            let mut wave_end = wave_start + 1;
            while wave_end < order.len() && dendro.depth(order[wave_end]) == depth {
                wave_end += 1;
            }
            let wave = &order[wave_start..wave_end];
            // Detach each wave vertex's inputs (bucket + child lists) ...
            let items: Vec<MergeItem> = wave
                .iter()
                .map(|&i| {
                    let bucket = std::mem::take(&mut buckets[i as usize]);
                    let [a, b] = dendro.children(i);
                    let (Some(left), Some(right)) =
                        (lists[a as usize].take(), lists[b as usize].take())
                    else {
                        unreachable!("children are processed before parents in depth order")
                    };
                    MergeItem {
                        vertex: i,
                        bucket,
                        left,
                        right,
                    }
                })
                .collect();
            // ... compute every merge of the wave against the pre-wave
            // accumulator (same-depth subtrees are disjoint, so no item can
            // observe another's updates even serially) ...
            let outputs = par_ranges(items.len(), threads, |range| {
                range
                    .map(|idx| Self::merge_one(dendro, &items[idx], &acc))
                    .collect::<Vec<MergeOutput>>()
            });
            // ... and apply the results in the fixed post-order.
            for (item, out) in items.iter().zip(outputs.into_iter().flatten()) {
                for &(v, c) in &out.acc_updates {
                    acc[v as usize] = c;
                }
                for &(v, j, r) in &out.rank_updates {
                    ranks[v as usize][j as usize] = r;
                }
                lists[item.vertex as usize] = Some(out.merged);
            }
            wave_start = wave_end;
        }
        Some(ranks)
    }

    /// Folds one internal vertex's bucket into its children's sorted count
    /// lists, returning the merged list plus the accumulator and rank
    /// assignments to apply. Pure in `acc` — the caller applies updates
    /// after the whole wave is computed.
    fn merge_one(dendro: &Dendrogram, item: &MergeItem, acc: &[u32]) -> MergeOutput {
        let bucket = &item.bucket;
        // New accumulated counts for nodes recorded in this bucket.
        let mut acc_updates: Vec<(NodeId, u32)> = bucket
            .iter()
            .map(|(&v, &c)| (v, acc[v as usize] + c))
            .collect();
        acc_updates.sort_unstable_by_key(|&(v, _)| v);
        let mut updated: Vec<(u32, NodeId)> = acc_updates.iter().map(|&(v, c)| (c, v)).collect();
        updated.sort_unstable_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
        // Three-way merge, skipping stale child entries.
        let mut merged = Vec::with_capacity(item.left.len() + item.right.len());
        let stale = |v: NodeId| bucket.contains_key(&v);
        let mut ia = item.left.iter().filter(|e| !stale(e.1)).peekable();
        let mut ib = item.right.iter().filter(|e| !stale(e.1)).peekable();
        let mut iu = updated.iter().peekable();
        loop {
            // Pick the largest head among the three runs.
            let best = [ia.peek().copied(), ib.peek().copied(), iu.peek().copied()]
                .into_iter()
                .enumerate()
                .filter_map(|(idx, e)| e.map(|e| (idx, *e)))
                .max_by(|(_, x), (_, y)| x.0.cmp(&y.0).then(y.1.cmp(&x.1)));
            match best {
                None => break,
                Some((0, e)) => {
                    ia.next();
                    merged.push(e);
                }
                Some((1, e)) => {
                    ib.next();
                    merged.push(e);
                }
                Some((_, e)) => {
                    iu.next();
                    merged.push(e);
                }
            }
        }
        // Assign ranks: ties share the rank of their first position.
        let depth_i = dendro.depth(item.vertex);
        let mut rank_updates = Vec::with_capacity(merged.len());
        let mut rank_of_count = 1u32;
        let mut prev_count = u32::MAX;
        for (pos, &(c, v)) in merged.iter().enumerate() {
            if c != prev_count {
                rank_of_count = pos as u32 + 1;
                prev_count = c;
            }
            let j = dendro.depth(dendro.leaf(v)) - 1 - depth_i;
            rank_updates.push((v, j, rank_of_count));
        }
        MergeOutput {
            merged,
            acc_updates,
            rank_updates,
        }
    }

    /// Reassembles an index from stored parts (see [`crate::persist`]).
    /// `ranks[v]` must align with the root path of `v` in the hierarchy the
    /// index will be queried against.
    pub fn from_raw(ranks: Vec<Vec<u32>>, theta: usize) -> Self {
        Self::from_table(RankTable::from_nested(ranks), theta)
    }

    /// Reassembles an index from a prebuilt (possibly memory-mapped) rank
    /// table — the CODX v3 zero-copy load path.
    pub fn from_table(ranks: RankTable, theta: usize) -> Self {
        Self {
            ranks,
            theta,
            build_stats: BuildStats::default(),
        }
    }

    /// The rank table (for persistence).
    pub fn rank_table(&self) -> &RankTable {
        &self.ranks
    }

    /// Construction-effort counters ([`BuildStats`]); all zero for an index
    /// reloaded via [`HimorIndex::from_raw`].
    pub fn build_stats(&self) -> BuildStats {
        self.build_stats
    }

    /// Number of indexed nodes.
    pub fn num_nodes(&self) -> usize {
        self.ranks.num_nodes()
    }

    /// Number of RR graphs used for construction.
    pub fn theta(&self) -> usize {
        self.theta
    }

    /// The stored rank vector of `v`, aligned with
    /// [`Dendrogram::root_path`] (index 0 = deepest community).
    pub fn ranks_of(&self, v: NodeId) -> &[u32] {
        self.ranks.of(v)
    }

    /// Algorithm 3, lines 1–2: the *largest* community on `q`'s root path
    /// that contains `floor` (an ancestor-or-self of `floor`) in which `q`
    /// ranks top-k. `floor = None` scans the whole path.
    pub fn largest_top_k(
        &self,
        dendro: &Dendrogram,
        q: NodeId,
        floor: Option<VertexId>,
        k: usize,
    ) -> Option<VertexId> {
        let path = dendro.root_path(q);
        let ranks = self.ranks_of(q);
        debug_assert_eq!(path.len(), ranks.len());
        for j in (0..path.len()).rev() {
            // Stop below the floor community.
            if let Some(f) = floor {
                if !dendro.is_descendant(f, path[j]) {
                    return None;
                }
            }
            if ranks[j] as usize <= k {
                return Some(path[j]);
            }
        }
        None
    }

    /// Approximate index memory in bytes (rank entries only) — the
    /// Table II "index size" metric.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self.ranks.raw_values())
            + std::mem::size_of_val(self.ranks.raw_offsets())
    }
}

/// Effort counters of one incremental HIMOR patch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PatchStats {
    /// RR samples subtracted and redrawn (their node sets touched the
    /// mutation's footprint).
    pub samples_redrawn: u64,
    /// Total retained samples (`Θ`): the denominator of the redraw rate.
    pub samples_total: u64,
    /// Old-tree buckets re-keyed onto surviving communities unchanged.
    pub buckets_rekeyed: u64,
}

/// Retained construction state of a [`HimorIndex::build_seeded_patchable`]
/// build: the `Θ` drawn RR graphs plus the master per-vertex buckets, both
/// keyed to the hierarchy the index was last built against.
///
/// After a graph mutation repairs the dendrogram, [`HimorPatchState::patch`]
/// produces the index a full `build_seeded` on the new graph would produce —
/// bit-identically, because sample `i` is a pure function of
/// `(graph, model, seed, i)` and only samples whose node set touches the
/// mutation footprint can change. Everything else keeps its old draw, and
/// its bucket contributions are re-keyed through the old→new community
/// matching of [`cod_hierarchy::repair::match_vertices`].
#[derive(Clone, Debug)]
pub struct HimorPatchState {
    seeds: SeedSequence,
    theta: usize,
    theta_per_node: usize,
    /// Sample `i` as last drawn (index-aligned with the seed sequence).
    samples: Vec<RrGraph>,
    /// Master buckets of the current tree (vertex id space of the
    /// hierarchy the last build/patch ran against).
    buckets: Vec<FxHashMap<NodeId, u32>>,
}

impl HimorPatchState {
    /// Total retained RR graphs (`Θ`).
    pub fn theta(&self) -> usize {
        self.theta
    }

    /// The per-node sampling density the state was built with.
    pub fn theta_per_node(&self) -> usize {
        self.theta_per_node
    }

    /// Heap bytes retained by the samples and master buckets — what keeping
    /// the index patchable costs over a plain build.
    pub fn memory_bytes(&self) -> usize {
        let samples: usize = self.samples.iter().map(RrGraph::memory_bytes).sum();
        let buckets: usize = self
            .buckets
            .iter()
            .map(|b| b.capacity() * (std::mem::size_of::<NodeId>() + std::mem::size_of::<u32>()))
            .sum();
        samples + buckets
    }

    /// Patches the retained state across a mutation: `g` is the new
    /// topology, `old_*` the hierarchy the state is keyed to, `new_*` the
    /// repaired hierarchy, `diff` their structural matching, and `edited`
    /// the nodes whose adjacency changed. Returns the index a fresh
    /// [`HimorIndex::build_seeded`] on `(g, new_dendro)` with the same seed
    /// would return, bit for bit, plus patch-effort counters.
    ///
    /// Only RR samples whose node set intersects the footprint (disturbed
    /// leaves ∪ edited nodes) are subtracted and redrawn; the redraw loop
    /// polls `cancel` (and the `himor_patch` failpoint) every
    /// `CHECK_EVERY` samples. On cancellation — or on an internal
    /// inconsistency — the state is left **unmodified** and `None` is
    /// returned, so the caller can retry or fall back to a full rebuild.
    #[allow(clippy::too_many_arguments)] // two hierarchies plus the token
    pub fn patch(
        &mut self,
        g: &Csr,
        model: Model,
        old_dendro: &Dendrogram,
        old_lca: &LcaIndex,
        new_dendro: &Dendrogram,
        new_lca: &LcaIndex,
        diff: &TreeDiff,
        edited: &[NodeId],
        par: Parallelism,
        cancel: Option<&CancelToken>,
    ) -> Option<(HimorIndex, PatchStats)> {
        let n = new_dendro.num_leaves();
        assert_eq!(g.num_nodes(), n, "patch cannot grow nodes");
        assert_eq!(old_dendro.num_leaves(), n);
        debug_assert_eq!(self.buckets.len(), old_dendro.num_vertices());

        // Footprint: a sample must be redrawn iff its node set touches a
        // disturbed leaf (ancestor chain changed in either tree) or an
        // edited node (its own adjacency draws change).
        let mut hot = vec![false; n];
        for (v, slot) in hot.iter_mut().enumerate() {
            *slot = diff.disturbed[v];
        }
        for &v in edited {
            hot[v as usize] = true;
        }
        let affected: Vec<u32> = self
            .samples
            .iter()
            .enumerate()
            .filter(|(_, rr)| rr.nodes().iter().any(|&u| hot[u as usize]))
            .map(|(i, _)| i as u32)
            .collect();

        // Shared traversal scratch sized for both trees.
        let max_depth = (0..n as NodeId)
            .map(|v| {
                old_dendro
                    .depth(old_dendro.leaf(v))
                    .max(new_dendro.depth(new_dendro.leaf(v)))
            })
            .max()
            .unwrap_or(1) as usize;
        let mut queues: Vec<Vec<(u32, VertexId)>> = vec![Vec::new(); max_depth + 1];
        let mut explored: Vec<bool> = Vec::new();

        // Subtract the affected samples' contributions under the old tree.
        let mut tmp = self.buckets.clone();
        let mut underflow = false;
        for &i in &affected {
            HimorIndex::hfs_visit_tree(
                old_dendro,
                old_lca,
                &self.samples[i as usize],
                &mut queues,
                &mut explored,
                |tag, node| {
                    let bucket = &mut tmp[tag as usize];
                    match bucket.get_mut(&node) {
                        Some(c) if *c > 1 => *c -= 1,
                        Some(_) => {
                            bucket.remove(&node);
                        }
                        None => underflow = true,
                    }
                },
            );
        }
        if underflow {
            debug_assert!(false, "patch subtraction underflow: state out of sync");
            return None;
        }

        // Re-key the surviving buckets into the new tree's vertex space.
        // Every unmatched old community must have been emptied by the
        // subtraction (a sample tagging it necessarily contains a node
        // under it, which the footprint marks disturbed).
        let mut buckets: Vec<FxHashMap<NodeId, u32>> =
            vec![FxHashMap::default(); new_dendro.num_vertices()];
        let mut rekeyed = 0u64;
        for (v, bucket) in tmp.into_iter().enumerate().skip(n) {
            if bucket.is_empty() {
                continue;
            }
            match diff.old_to_new[v] {
                Some(w) => {
                    buckets[w as usize] = bucket;
                    rekeyed += 1;
                }
                None => {
                    debug_assert!(false, "nonempty bucket on unmatched vertex {v}");
                    return None;
                }
            }
        }

        // Redraw the affected samples on the new topology with their
        // original per-index seeds, recording against the new tree.
        let mut sampler = RrSampler::new(g, model);
        let mut charged = sampler.stats();
        let mut redrawn: Vec<(u32, RrGraph)> = Vec::with_capacity(affected.len());
        for (off, &i) in affected.iter().enumerate() {
            if off % CHECK_EVERY == 0 {
                failpoint::hit(failpoint::Site::HimorPatch, cancel);
                if let Some(tok) = cancel {
                    let now = sampler.stats();
                    tok.charge_rr_edges(now.delta_since(charged).edges);
                    charged = now;
                    if tok.should_stop() {
                        return None;
                    }
                }
            }
            let mut rng = self.seeds.rng_for(u64::from(i));
            let rr = sampler.sample_uniform(&mut rng);
            HimorIndex::hfs_visit_tree(
                new_dendro,
                new_lca,
                &rr,
                &mut queues,
                &mut explored,
                |tag, node| {
                    *buckets[tag as usize].entry(node).or_insert(0) += 1;
                },
            );
            redrawn.push((i, rr));
        }
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return None;
        }

        // Rank merge over a copy, keeping the master buckets for the next
        // patch. Commit only once the whole pipeline succeeded.
        let ranks =
            HimorIndex::merge_stage(new_dendro, buckets.clone(), par.thread_count(), cancel)?;
        for (i, rr) in redrawn {
            self.samples[i as usize] = rr;
        }
        self.buckets = buckets;
        let stats = PatchStats {
            samples_redrawn: affected.len() as u64,
            samples_total: self.theta as u64,
            buckets_rekeyed: rekeyed,
        };
        let sampled = sampler.stats();
        let index = HimorIndex {
            ranks: RankTable::from_nested(ranks),
            theta: self.theta,
            build_stats: BuildStats {
                rr_graphs: sampled.graphs,
                rr_edges: sampled.edges,
                bucket_merges: (new_dendro.num_vertices() - n) as u64,
            },
        };
        Some((index, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::GraphBuilder;
    use cod_hierarchy::{cluster_unweighted, Linkage};
    use cod_influence::InfluenceEstimate;

    fn two_stars() -> Csr {
        let mut b = GraphBuilder::new(10);
        for v in 1..6 {
            b.add_edge(0, v);
        }
        for v in 7..10 {
            b.add_edge(6, v);
        }
        b.add_edge(5, 6);
        b.build()
    }

    fn setup(g: &Csr) -> (Dendrogram, LcaIndex) {
        let merges = cluster_unweighted(g, Linkage::Average);
        let d = Dendrogram::from_merges(g.num_nodes(), &merges);
        let lca = LcaIndex::new(&d);
        (d, lca)
    }

    #[test]
    fn hub_ranks_first_everywhere() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let mut rng = SmallRng::seed_from_u64(21);
        let idx = HimorIndex::build(&g, Model::WeightedCascade, &d, &lca, 300, &mut rng);
        // Node 0 (big hub) must rank 1 in every community on its path.
        for &r in idx.ranks_of(0) {
            assert_eq!(r, 1);
        }
        assert_eq!(
            idx.largest_top_k(&d, 0, None, 1),
            Some(*d.root_path(0).last().unwrap())
        );
    }

    #[test]
    fn ranks_agree_with_direct_community_estimation() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let mut rng = SmallRng::seed_from_u64(22);
        let idx = HimorIndex::build(&g, Model::WeightedCascade, &d, &lca, 800, &mut rng);
        // For every node and every path community, the indexed rank must
        // match an independent high-θ estimate up to tie noise; check the
        // unambiguous hub/leaf relations instead of exact equality.
        let mut est_rng = SmallRng::seed_from_u64(23);
        for q in [0u32, 6, 9] {
            let path = d.root_path(q);
            for (j, &c) in path.iter().enumerate() {
                let members = d.members_sorted(c);
                let est = InfluenceEstimate::on_community(
                    &g,
                    Model::WeightedCascade,
                    &members,
                    400 * members.len(),
                    &mut est_rng,
                );
                let direct = est.rank(q, &members);
                let stored = idx.ranks_of(q)[j] as usize;
                assert!(
                    stored.abs_diff(direct) <= 1,
                    "q={q} level {j}: stored {stored} vs direct {direct}"
                );
            }
        }
    }

    #[test]
    fn floor_limits_the_scan() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let mut rng = SmallRng::seed_from_u64(24);
        let idx = HimorIndex::build(&g, Model::WeightedCascade, &d, &lca, 300, &mut rng);
        // Query node 9 (a periphery leaf of the small star): with floor at
        // the root, only the root is scanned, and node 9 is not top-1 there.
        let root = d.root();
        assert_eq!(idx.largest_top_k(&d, 9, Some(root), 1), None);
        // With a generous k the root itself qualifies.
        assert_eq!(idx.largest_top_k(&d, 9, Some(root), 10), Some(root));
    }

    #[test]
    fn parallel_build_is_deterministic_and_consistent() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let a = HimorIndex::build_parallel(&g, Model::WeightedCascade, &d, &lca, 200, 77, 4);
        let b = HimorIndex::build_parallel(&g, Model::WeightedCascade, &d, &lca, 200, 77, 4);
        for v in 0..10u32 {
            assert_eq!(a.ranks_of(v), b.ranks_of(v), "same seed => same index");
        }
        // Structural agreement with a sequential build: the hub must rank
        // first everywhere under both.
        let mut rng = SmallRng::seed_from_u64(78);
        let seq = HimorIndex::build(&g, Model::WeightedCascade, &d, &lca, 200, &mut rng);
        for &r in a.ranks_of(0) {
            assert_eq!(r, 1);
        }
        for &r in seq.ranks_of(0) {
            assert_eq!(r, 1);
        }
        assert_eq!(a.theta(), seq.theta());
    }

    #[test]
    fn seeded_build_is_thread_count_invariant() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let base = HimorIndex::build_seeded(
            &g,
            Model::WeightedCascade,
            &d,
            &lca,
            150,
            1234,
            Parallelism::Threads(1),
        );
        for t in [2usize, 3, 8] {
            let idx = HimorIndex::build_seeded(
                &g,
                Model::WeightedCascade,
                &d,
                &lca,
                150,
                1234,
                Parallelism::Threads(t),
            );
            for v in 0..10u32 {
                assert_eq!(base.ranks_of(v), idx.ranks_of(v), "threads {t}, node {v}");
            }
            assert_eq!(base.theta(), idx.theta());
        }
    }

    #[test]
    fn parallel_build_with_one_thread_works() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let a = HimorIndex::build_parallel(&g, Model::WeightedCascade, &d, &lca, 50, 5, 1);
        assert_eq!(a.num_nodes(), 10);
    }

    #[test]
    fn build_stats_reflect_construction_effort() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let mut rng = SmallRng::seed_from_u64(31);
        let idx = HimorIndex::build(&g, Model::WeightedCascade, &d, &lca, 10, &mut rng);
        let s = idx.build_stats();
        // Every one of the Θ = θ·|V| uniform draws generates an RR graph,
        // and stage 2 merges one bucket per internal vertex.
        assert_eq!(s.rr_graphs, 100);
        assert!(s.rr_edges > 0);
        assert_eq!(s.bucket_merges, (d.num_vertices() - 10) as u64);
        let seeded = HimorIndex::build_seeded(
            &g,
            Model::WeightedCascade,
            &d,
            &lca,
            10,
            9,
            Parallelism::Threads(4),
        );
        assert_eq!(seeded.build_stats().rr_graphs, 100);
        assert_eq!(seeded.build_stats().bucket_merges, s.bucket_merges);
        // A reloaded index carries no provenance.
        let raw = HimorIndex::from_raw(vec![vec![1]], 5);
        assert_eq!(raw.build_stats(), BuildStats::default());
    }

    #[test]
    fn patchable_build_matches_plain_seeded_build() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let plain = HimorIndex::build_seeded(
            &g,
            Model::WeightedCascade,
            &d,
            &lca,
            100,
            42,
            Parallelism::Threads(3),
        );
        let (patchable, state) = HimorIndex::build_seeded_patchable(
            &g,
            Model::WeightedCascade,
            &d,
            &lca,
            100,
            42,
            Parallelism::Threads(3),
            None,
        )
        .unwrap();
        for v in 0..10u32 {
            assert_eq!(plain.ranks_of(v), patchable.ranks_of(v), "node {v}");
        }
        assert_eq!(state.theta(), plain.theta());
        assert!(state.memory_bytes() > 0);
    }

    #[test]
    fn patch_reproduces_a_from_scratch_rebuild() {
        use cod_hierarchy::{match_vertices, repair_merges};

        let mut rng = SmallRng::seed_from_u64(99);
        for trial in 0..12 {
            // Random sparse graph, then flip one random edge.
            let n = 12usize;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in u + 1..n as u32 {
                    if rng.random_bool(0.28) {
                        edges.push((u, v));
                    }
                }
            }
            edges.push((0, 1));
            edges.sort_unstable();
            edges.dedup();
            let mut b = GraphBuilder::new(n);
            for &(u, v) in &edges {
                b.add_edge(u, v);
            }
            let g0 = b.build();
            let (d0, lca0) = setup(&g0);
            let (_, mut state) = HimorIndex::build_seeded_patchable(
                &g0,
                Model::WeightedCascade,
                &d0,
                &lca0,
                20,
                7 + trial,
                Parallelism::Threads(2),
                None,
            )
            .unwrap();

            let u = rng.random_range(0..n as u32);
            let v = (u + 1 + rng.random_range(0..(n as u32 - 1))) % n as u32;
            let (u, v) = (u.min(v), u.max(v));
            let mut e1: Vec<_> = edges.iter().copied().filter(|&e| e != (u, v)).collect();
            if e1.len() == edges.len() {
                e1.push((u, v));
                e1.sort_unstable();
            }
            if e1.is_empty() {
                continue;
            }
            let mut b1 = GraphBuilder::new(n);
            for &(x, y) in &e1 {
                b1.add_edge(x, y);
            }
            let g1 = b1.build();
            let repair = repair_merges(&d0, &g1, &[u, v], Linkage::Average, true);
            let d1 = Dendrogram::from_merges(n, &repair.merges);
            let lca1 = LcaIndex::new(&d1);
            let diff = match_vertices(&d0, &d1);
            let (patched, stats) = state
                .patch(
                    &g1,
                    Model::WeightedCascade,
                    &d0,
                    &lca0,
                    &d1,
                    &lca1,
                    &diff,
                    &[u, v],
                    Parallelism::Threads(2),
                    None,
                )
                .unwrap();
            let scratch = HimorIndex::build_seeded(
                &g1,
                Model::WeightedCascade,
                &d1,
                &lca1,
                20,
                7 + trial,
                Parallelism::Threads(2),
            );
            for q in 0..n as u32 {
                assert_eq!(
                    patched.ranks_of(q),
                    scratch.ranks_of(q),
                    "trial {trial} node {q}: patched index must equal scratch build"
                );
            }
            assert!(stats.samples_redrawn <= stats.samples_total);
        }
    }

    #[test]
    fn memory_reflects_total_depth() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let mut rng = SmallRng::seed_from_u64(25);
        let idx = HimorIndex::build(&g, Model::WeightedCascade, &d, &lca, 10, &mut rng);
        let entries: usize = (0..10u32).map(|v| d.root_path(v).len()).sum();
        assert!(idx.memory_bytes() >= entries * 4);
    }
}
