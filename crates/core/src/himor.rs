//! The HIMOR index (§IV-B): precomputed influence ranks of every node in
//! every community of the non-attributed hierarchy `T`.
//!
//! **Compressed construction** extends Algorithm 1 in two ways: HFS runs
//! over the *tree-structured* buckets of `T` (one bucket per community,
//! tagged via O(1) `lca`), and the second stage computes *all* node ranks
//! per community instead of a top-k. Buckets are folded bottom-up: child
//! counts accumulate into an ancestor accumulator, each bucket is sorted
//! once, and child rank lists are merge-sorted with updated entries
//! replacing stale ones (Example 7). Cost
//! `O(Θ·ω + |R|·log|V| + Σ_v dep(v))` (Theorem 6).
//!
//! **Queries** (Algorithm 3): for a query `q` and LORE's choice `C_ℓ`, the
//! largest ancestor of `C_ℓ` on `q`'s root path where `q`'s stored rank is
//! `≤ k` is returned directly; only if none exists does CODL fall back to
//! compressed evaluation inside the reclustered `C_ℓ`.

use cod_graph::{Csr, FxHashMap, NodeId};
use cod_hierarchy::{Dendrogram, LcaIndex, VertexId};
use cod_influence::{
    par_ranges, CancelToken, Model, Parallelism, RrGraph, RrSampler, SampleStats, SeedSequence,
};
use rand::prelude::*;

use crate::failpoint;

/// Draws between governance checkpoints of the seeded HFS stage (matches
/// the compressed-evaluation cadence).
const CHECK_EVERY: usize = 64;

/// Influence ranks of every node along its root path in `T`.
#[derive(Clone, Debug)]
pub struct HimorIndex {
    /// `ranks[v][j]` = 1-based estimated influence rank of node `v` in its
    /// `j`-th root-path community (0 = the deepest, its leaf's parent).
    ranks: Vec<Vec<u32>>,
    /// Total RR graphs used.
    theta: usize,
    /// Construction-effort counters recorded while building.
    build_stats: BuildStats,
}

/// Effort counters of one HIMOR construction, mirroring Theorem 6's cost
/// terms: `Θ·ω` (graphs × edges sampled) plus one bucket merge per internal
/// vertex of `T`. All zero for an index reloaded from disk
/// ([`HimorIndex::from_raw`]) — persistence stores ranks, not provenance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// RR graphs generated during stage 1.
    pub rr_graphs: u64,
    /// Activated edges recorded across those RR graphs.
    pub rr_edges: u64,
    /// Bottom-up bucket merges performed in stage 2 (one per internal
    /// vertex).
    pub bucket_merges: u64,
}

/// Detached inputs of one vertex's bucket merge (stage 2).
struct MergeItem {
    vertex: VertexId,
    bucket: FxHashMap<NodeId, u32>,
    left: Vec<(u32, NodeId)>,
    right: Vec<(u32, NodeId)>,
}

/// The deferred effects of one vertex's bucket merge: applied by the caller
/// in post-order once the whole wave is computed.
struct MergeOutput {
    /// Sorted count list (count desc, id asc) of the merged community.
    merged: Vec<(u32, NodeId)>,
    /// `(node, new accumulated count)` — assignments, not deltas.
    acc_updates: Vec<(NodeId, u32)>,
    /// `(node, root-path index, rank)` assignments.
    rank_updates: Vec<(NodeId, u32, u32)>,
}

impl HimorIndex {
    /// Builds the index with `Θ = θ·|V|` RR graphs (compressed
    /// construction).
    pub fn build<R: Rng>(
        g: &Csr,
        model: Model,
        dendro: &Dendrogram,
        lca: &LcaIndex,
        theta_per_node: usize,
        rng: &mut R,
    ) -> Self {
        let n = dendro.num_leaves();
        assert_eq!(g.num_nodes(), n);
        let theta = theta_per_node.max(1) * n;
        let (buckets, sampled) = Self::hfs_stage(g, model, dendro, lca, theta, rng);
        let Some(ranks) = Self::merge_stage(dendro, buckets, 1, None) else {
            unreachable!("an ungoverned build has no token to cancel it")
        };
        let build_stats = BuildStats {
            rr_graphs: sampled.graphs,
            rr_edges: sampled.edges,
            bucket_merges: (dendro.num_vertices() - n) as u64,
        };
        Self {
            ranks,
            theta,
            build_stats,
        }
    }

    /// Builds the index with `Θ = θ·|V|` RR graphs using per-index seed
    /// derivation: sample `i` is drawn entirely from the RNG
    /// [`SeedSequence::rng_for`] derives for index `i`, so the index is a
    /// pure function of `(g, model, T, θ, seed)` — bit-identical for every
    /// thread count and across repeated runs. Both the sampling/HFS stage
    /// and the bottom-up bucket merge (parallelized over same-depth tree
    /// waves, whose vertices have disjoint member sets) run on `par`.
    pub fn build_seeded(
        g: &Csr,
        model: Model,
        dendro: &Dendrogram,
        lca: &LcaIndex,
        theta_per_node: usize,
        seed: u64,
        par: Parallelism,
    ) -> Self {
        match Self::build_seeded_governed(g, model, dendro, lca, theta_per_node, seed, par, None) {
            Some(idx) => idx,
            None => unreachable!("an ungoverned build has no token to cancel it"),
        }
    }

    /// [`HimorIndex::build_seeded`] under cooperative governance: the HFS
    /// stage polls `cancel` every `CHECK_EVERY` draws (charging traversed
    /// RR edges against the token's cap) and the merge stage polls it once
    /// per depth wave. A fired token aborts the build and returns `None` —
    /// a half-built index is never observable. `cancel: None` is exactly
    /// [`HimorIndex::build_seeded`]; checkpoints never touch the RNG, so a
    /// token that does not fire leaves the index bit-identical.
    #[allow(clippy::too_many_arguments)] // the build signature plus the token
    pub fn build_seeded_governed(
        g: &Csr,
        model: Model,
        dendro: &Dendrogram,
        lca: &LcaIndex,
        theta_per_node: usize,
        seed: u64,
        par: Parallelism,
        cancel: Option<&CancelToken>,
    ) -> Option<Self> {
        let n = dendro.num_leaves();
        assert_eq!(g.num_nodes(), n);
        let theta = theta_per_node.max(1) * n;
        let threads = par.thread_count();
        let (buckets, sampled) = Self::hfs_stage_seeded(
            g,
            model,
            dendro,
            lca,
            theta,
            SeedSequence::new(seed),
            threads,
            cancel,
        )?;
        let ranks = Self::merge_stage(dendro, buckets, threads, cancel)?;
        let build_stats = BuildStats {
            rr_graphs: sampled.graphs,
            rr_edges: sampled.edges,
            bucket_merges: (dendro.num_vertices() - n) as u64,
        };
        Some(Self {
            ranks,
            theta,
            build_stats,
        })
    }

    /// Builds the index with `Θ = θ·|V|` RR graphs over `num_threads` OS
    /// threads. A thin wrapper over [`HimorIndex::build_seeded`], kept for
    /// callers that count threads directly: the result depends only on
    /// `seed`, never on `num_threads`.
    pub fn build_parallel(
        g: &Csr,
        model: Model,
        dendro: &Dendrogram,
        lca: &LcaIndex,
        theta_per_node: usize,
        seed: u64,
        num_threads: usize,
    ) -> Self {
        Self::build_seeded(
            g,
            model,
            dendro,
            lca,
            theta_per_node,
            seed,
            Parallelism::Threads(num_threads),
        )
    }

    /// Stage 1: HFS over the community tree, producing one bucket of
    /// appearance counts per internal vertex.
    fn hfs_stage<R: Rng>(
        g: &Csr,
        model: Model,
        dendro: &Dendrogram,
        lca: &LcaIndex,
        theta: usize,
        rng: &mut R,
    ) -> (Vec<FxHashMap<NodeId, u32>>, SampleStats) {
        let nv = dendro.num_vertices();
        let n = dendro.num_leaves();
        let max_depth = (0..n as NodeId)
            .map(|v| dendro.depth(dendro.leaf(v)))
            .max()
            .unwrap_or(1) as usize;
        let mut buckets: Vec<FxHashMap<NodeId, u32>> = vec![FxHashMap::default(); nv];
        let mut sampler = RrSampler::new(g, model);
        // Per-RR scratch: queues indexed by tag depth, drained deepest-first.
        let mut queues: Vec<Vec<(u32, VertexId)>> = vec![Vec::new(); max_depth + 1];
        let mut explored: Vec<bool> = Vec::new();

        for _ in 0..theta {
            let rr = sampler.sample_uniform(rng);
            Self::hfs_record_tree(dendro, lca, &rr, &mut queues, &mut explored, &mut buckets);
        }
        let sampled = sampler.stats();
        (buckets, sampled)
    }

    /// Stage 1 with per-index seed derivation, sharded over `threads`
    /// contiguous index ranges. Bucket counts are merged by addition, which
    /// commutes, so chunking cannot affect the result. Returns `None` when
    /// `cancel` fired: a partially sampled bucket set must not rank anyone.
    #[allow(clippy::too_many_arguments)] // internal stage: build inputs plus the token
    fn hfs_stage_seeded(
        g: &Csr,
        model: Model,
        dendro: &Dendrogram,
        lca: &LcaIndex,
        theta: usize,
        seeds: SeedSequence,
        threads: usize,
        cancel: Option<&CancelToken>,
    ) -> Option<(Vec<FxHashMap<NodeId, u32>>, SampleStats)> {
        let nv = dendro.num_vertices();
        let n = dendro.num_leaves();
        let max_depth = (0..n as NodeId)
            .map(|v| dendro.depth(dendro.leaf(v)))
            .max()
            .unwrap_or(1) as usize;
        let shards = par_ranges(theta, threads, |range| {
            let mut sampler = RrSampler::new(g, model);
            let mut queues: Vec<Vec<(u32, VertexId)>> = vec![Vec::new(); max_depth + 1];
            let mut explored: Vec<bool> = Vec::new();
            let mut buckets: Vec<FxHashMap<NodeId, u32>> = vec![FxHashMap::default(); nv];
            let mut charged = sampler.stats();
            for (off, i) in range.enumerate() {
                if off % CHECK_EVERY == 0 {
                    failpoint::hit(failpoint::Site::SampleBatch, cancel);
                    if let Some(tok) = cancel {
                        let now = sampler.stats();
                        tok.charge_rr_edges(now.delta_since(charged).edges);
                        charged = now;
                        if tok.should_stop() {
                            break;
                        }
                    }
                }
                let mut rng = seeds.rng_for(i as u64);
                let rr = sampler.sample_uniform(&mut rng);
                Self::hfs_record_tree(dendro, lca, &rr, &mut queues, &mut explored, &mut buckets);
            }
            (buckets, sampler.stats())
        });
        let mut sampled = SampleStats::default();
        let mut merged: Vec<FxHashMap<NodeId, u32>> = vec![FxHashMap::default(); nv];
        for (shard, stats) in shards {
            sampled = sampled.merged(stats);
            for (slot, bucket) in merged.iter_mut().zip(shard) {
                for (v, c) in bucket {
                    *slot.entry(v).or_insert(0) += c;
                }
            }
        }
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return None;
        }
        Some((merged, sampled))
    }

    /// Records one RR graph into the per-vertex buckets: every RR node goes
    /// to the bucket of the smallest community containing a path from the
    /// source (tagged via O(1) `lca`), drained deepest-first. Leaves
    /// `queues` empty for reuse.
    fn hfs_record_tree(
        dendro: &Dendrogram,
        lca: &LcaIndex,
        rr: &RrGraph,
        queues: &mut [Vec<(u32, VertexId)>],
        explored: &mut Vec<bool>,
        buckets: &mut [FxHashMap<NodeId, u32>],
    ) {
        let s = rr.source();
        let s_leaf = dendro.leaf(s);
        if s_leaf == dendro.root() {
            return; // single-node graph: nothing to index
        }
        let tag0 = dendro.parent(s_leaf);
        let d0 = dendro.depth(tag0) as usize;
        explored.clear();
        explored.resize(rr.len(), false);
        queues[d0].push((0, tag0));
        for d in (1..=d0).rev() {
            while let Some((v, tag)) = queues[d].pop() {
                if explored[v as usize] {
                    continue;
                }
                explored[v as usize] = true;
                *buckets[tag as usize].entry(rr.node(v)).or_insert(0) += 1;
                for &u in rr.out_neighbors(v) {
                    if explored[u as usize] {
                        continue;
                    }
                    // Smallest community containing a path from s to u:
                    // the lca of u's leaf with the current tag.
                    let tu = lca.lca(dendro.leaf(rr.node(u)), tag);
                    queues[dendro.depth(tu) as usize].push((u, tu));
                }
            }
        }
    }

    /// Stage 2: bottom-up bucket merge producing per-node rank vectors.
    ///
    /// With `threads > 1`, each equal-depth wave of the post-order is
    /// processed in parallel: same-depth vertices root disjoint subtrees,
    /// so their buckets, child lists, and rank rows never overlap, and
    /// every worker reads the accumulator state frozen before its wave —
    /// exactly what the serial order would have shown it. Results are
    /// applied in the fixed post-order, so the output is identical for
    /// every thread count.
    ///
    /// Polls `cancel` once per depth wave; a fired token abandons the
    /// half-merged state and returns `None`.
    fn merge_stage(
        dendro: &Dendrogram,
        mut buckets: Vec<FxHashMap<NodeId, u32>>,
        threads: usize,
        cancel: Option<&CancelToken>,
    ) -> Option<Vec<Vec<u32>>> {
        let n = dendro.num_leaves();
        let nv = dendro.num_vertices();
        // acc[v] = accumulated count of v over the already-folded buckets on
        // its root path (exact count within the vertex being processed).
        let mut acc = vec![0u32; n];
        let mut ranks: Vec<Vec<u32>> = (0..n as NodeId)
            .map(|v| vec![0; dendro.root_path(v).len()])
            .collect();
        // Sorted count lists (count desc, id asc), one per live vertex.
        let mut lists: Vec<Option<Vec<(u32, NodeId)>>> = (0..nv).map(|_| None).collect();
        for (v, slot) in lists.iter_mut().enumerate().take(n) {
            *slot = Some(vec![(0, v as NodeId)]);
        }

        // Post-order over internal vertices: children have smaller subtree
        // intervals and strictly larger depth; process by depth descending,
        // ties broken arbitrarily (children always deeper than parents).
        let mut order: Vec<VertexId> = (n as VertexId..nv as VertexId).collect();
        order.sort_unstable_by_key(|&v| std::cmp::Reverse(dendro.depth(v)));

        let mut wave_start = 0;
        while wave_start < order.len() {
            failpoint::hit(failpoint::Site::MergeWave, cancel);
            if let Some(tok) = cancel {
                if tok.should_stop() {
                    return None;
                }
            }
            let depth = dendro.depth(order[wave_start]);
            let mut wave_end = wave_start + 1;
            while wave_end < order.len() && dendro.depth(order[wave_end]) == depth {
                wave_end += 1;
            }
            let wave = &order[wave_start..wave_end];
            // Detach each wave vertex's inputs (bucket + child lists) ...
            let items: Vec<MergeItem> = wave
                .iter()
                .map(|&i| {
                    let bucket = std::mem::take(&mut buckets[i as usize]);
                    let [a, b] = dendro.children(i);
                    let (Some(left), Some(right)) =
                        (lists[a as usize].take(), lists[b as usize].take())
                    else {
                        unreachable!("children are processed before parents in depth order")
                    };
                    MergeItem {
                        vertex: i,
                        bucket,
                        left,
                        right,
                    }
                })
                .collect();
            // ... compute every merge of the wave against the pre-wave
            // accumulator (same-depth subtrees are disjoint, so no item can
            // observe another's updates even serially) ...
            let outputs = par_ranges(items.len(), threads, |range| {
                range
                    .map(|idx| Self::merge_one(dendro, &items[idx], &acc))
                    .collect::<Vec<MergeOutput>>()
            });
            // ... and apply the results in the fixed post-order.
            for (item, out) in items.iter().zip(outputs.into_iter().flatten()) {
                for &(v, c) in &out.acc_updates {
                    acc[v as usize] = c;
                }
                for &(v, j, r) in &out.rank_updates {
                    ranks[v as usize][j as usize] = r;
                }
                lists[item.vertex as usize] = Some(out.merged);
            }
            wave_start = wave_end;
        }
        Some(ranks)
    }

    /// Folds one internal vertex's bucket into its children's sorted count
    /// lists, returning the merged list plus the accumulator and rank
    /// assignments to apply. Pure in `acc` — the caller applies updates
    /// after the whole wave is computed.
    fn merge_one(dendro: &Dendrogram, item: &MergeItem, acc: &[u32]) -> MergeOutput {
        let bucket = &item.bucket;
        // New accumulated counts for nodes recorded in this bucket.
        let mut acc_updates: Vec<(NodeId, u32)> = bucket
            .iter()
            .map(|(&v, &c)| (v, acc[v as usize] + c))
            .collect();
        acc_updates.sort_unstable_by_key(|&(v, _)| v);
        let mut updated: Vec<(u32, NodeId)> = acc_updates.iter().map(|&(v, c)| (c, v)).collect();
        updated.sort_unstable_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
        // Three-way merge, skipping stale child entries.
        let mut merged = Vec::with_capacity(item.left.len() + item.right.len());
        let stale = |v: NodeId| bucket.contains_key(&v);
        let mut ia = item.left.iter().filter(|e| !stale(e.1)).peekable();
        let mut ib = item.right.iter().filter(|e| !stale(e.1)).peekable();
        let mut iu = updated.iter().peekable();
        loop {
            // Pick the largest head among the three runs.
            let best = [ia.peek().copied(), ib.peek().copied(), iu.peek().copied()]
                .into_iter()
                .enumerate()
                .filter_map(|(idx, e)| e.map(|e| (idx, *e)))
                .max_by(|(_, x), (_, y)| x.0.cmp(&y.0).then(y.1.cmp(&x.1)));
            match best {
                None => break,
                Some((0, e)) => {
                    ia.next();
                    merged.push(e);
                }
                Some((1, e)) => {
                    ib.next();
                    merged.push(e);
                }
                Some((_, e)) => {
                    iu.next();
                    merged.push(e);
                }
            }
        }
        // Assign ranks: ties share the rank of their first position.
        let depth_i = dendro.depth(item.vertex);
        let mut rank_updates = Vec::with_capacity(merged.len());
        let mut rank_of_count = 1u32;
        let mut prev_count = u32::MAX;
        for (pos, &(c, v)) in merged.iter().enumerate() {
            if c != prev_count {
                rank_of_count = pos as u32 + 1;
                prev_count = c;
            }
            let j = dendro.depth(dendro.leaf(v)) - 1 - depth_i;
            rank_updates.push((v, j, rank_of_count));
        }
        MergeOutput {
            merged,
            acc_updates,
            rank_updates,
        }
    }

    /// Reassembles an index from stored parts (see [`crate::persist`]).
    /// `ranks[v]` must align with the root path of `v` in the hierarchy the
    /// index will be queried against.
    pub fn from_raw(ranks: Vec<Vec<u32>>, theta: usize) -> Self {
        Self {
            ranks,
            theta,
            build_stats: BuildStats::default(),
        }
    }

    /// Construction-effort counters ([`BuildStats`]); all zero for an index
    /// reloaded via [`HimorIndex::from_raw`].
    pub fn build_stats(&self) -> BuildStats {
        self.build_stats
    }

    /// Number of indexed nodes.
    pub fn num_nodes(&self) -> usize {
        self.ranks.len()
    }

    /// Number of RR graphs used for construction.
    pub fn theta(&self) -> usize {
        self.theta
    }

    /// The stored rank vector of `v`, aligned with
    /// [`Dendrogram::root_path`] (index 0 = deepest community).
    pub fn ranks_of(&self, v: NodeId) -> &[u32] {
        &self.ranks[v as usize]
    }

    /// Algorithm 3, lines 1–2: the *largest* community on `q`'s root path
    /// that contains `floor` (an ancestor-or-self of `floor`) in which `q`
    /// ranks top-k. `floor = None` scans the whole path.
    pub fn largest_top_k(
        &self,
        dendro: &Dendrogram,
        q: NodeId,
        floor: Option<VertexId>,
        k: usize,
    ) -> Option<VertexId> {
        let path = dendro.root_path(q);
        let ranks = self.ranks_of(q);
        debug_assert_eq!(path.len(), ranks.len());
        for j in (0..path.len()).rev() {
            // Stop below the floor community.
            if let Some(f) = floor {
                if !dendro.is_descendant(f, path[j]) {
                    return None;
                }
            }
            if ranks[j] as usize <= k {
                return Some(path[j]);
            }
        }
        None
    }

    /// Approximate index memory in bytes (rank entries only) — the
    /// Table II "index size" metric.
    pub fn memory_bytes(&self) -> usize {
        self.ranks
            .iter()
            .map(|r| r.len() * std::mem::size_of::<u32>() + std::mem::size_of::<Vec<u32>>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::GraphBuilder;
    use cod_hierarchy::{cluster_unweighted, Linkage};
    use cod_influence::InfluenceEstimate;

    fn two_stars() -> Csr {
        let mut b = GraphBuilder::new(10);
        for v in 1..6 {
            b.add_edge(0, v);
        }
        for v in 7..10 {
            b.add_edge(6, v);
        }
        b.add_edge(5, 6);
        b.build()
    }

    fn setup(g: &Csr) -> (Dendrogram, LcaIndex) {
        let merges = cluster_unweighted(g, Linkage::Average);
        let d = Dendrogram::from_merges(g.num_nodes(), &merges);
        let lca = LcaIndex::new(&d);
        (d, lca)
    }

    #[test]
    fn hub_ranks_first_everywhere() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let mut rng = SmallRng::seed_from_u64(21);
        let idx = HimorIndex::build(&g, Model::WeightedCascade, &d, &lca, 300, &mut rng);
        // Node 0 (big hub) must rank 1 in every community on its path.
        for &r in idx.ranks_of(0) {
            assert_eq!(r, 1);
        }
        assert_eq!(
            idx.largest_top_k(&d, 0, None, 1),
            Some(*d.root_path(0).last().unwrap())
        );
    }

    #[test]
    fn ranks_agree_with_direct_community_estimation() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let mut rng = SmallRng::seed_from_u64(22);
        let idx = HimorIndex::build(&g, Model::WeightedCascade, &d, &lca, 800, &mut rng);
        // For every node and every path community, the indexed rank must
        // match an independent high-θ estimate up to tie noise; check the
        // unambiguous hub/leaf relations instead of exact equality.
        let mut est_rng = SmallRng::seed_from_u64(23);
        for q in [0u32, 6, 9] {
            let path = d.root_path(q);
            for (j, &c) in path.iter().enumerate() {
                let members = d.members_sorted(c);
                let est = InfluenceEstimate::on_community(
                    &g,
                    Model::WeightedCascade,
                    &members,
                    400 * members.len(),
                    &mut est_rng,
                );
                let direct = est.rank(q, &members);
                let stored = idx.ranks_of(q)[j] as usize;
                assert!(
                    stored.abs_diff(direct) <= 1,
                    "q={q} level {j}: stored {stored} vs direct {direct}"
                );
            }
        }
    }

    #[test]
    fn floor_limits_the_scan() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let mut rng = SmallRng::seed_from_u64(24);
        let idx = HimorIndex::build(&g, Model::WeightedCascade, &d, &lca, 300, &mut rng);
        // Query node 9 (a periphery leaf of the small star): with floor at
        // the root, only the root is scanned, and node 9 is not top-1 there.
        let root = d.root();
        assert_eq!(idx.largest_top_k(&d, 9, Some(root), 1), None);
        // With a generous k the root itself qualifies.
        assert_eq!(idx.largest_top_k(&d, 9, Some(root), 10), Some(root));
    }

    #[test]
    fn parallel_build_is_deterministic_and_consistent() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let a = HimorIndex::build_parallel(&g, Model::WeightedCascade, &d, &lca, 200, 77, 4);
        let b = HimorIndex::build_parallel(&g, Model::WeightedCascade, &d, &lca, 200, 77, 4);
        for v in 0..10u32 {
            assert_eq!(a.ranks_of(v), b.ranks_of(v), "same seed => same index");
        }
        // Structural agreement with a sequential build: the hub must rank
        // first everywhere under both.
        let mut rng = SmallRng::seed_from_u64(78);
        let seq = HimorIndex::build(&g, Model::WeightedCascade, &d, &lca, 200, &mut rng);
        for &r in a.ranks_of(0) {
            assert_eq!(r, 1);
        }
        for &r in seq.ranks_of(0) {
            assert_eq!(r, 1);
        }
        assert_eq!(a.theta(), seq.theta());
    }

    #[test]
    fn seeded_build_is_thread_count_invariant() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let base = HimorIndex::build_seeded(
            &g,
            Model::WeightedCascade,
            &d,
            &lca,
            150,
            1234,
            Parallelism::Threads(1),
        );
        for t in [2usize, 3, 8] {
            let idx = HimorIndex::build_seeded(
                &g,
                Model::WeightedCascade,
                &d,
                &lca,
                150,
                1234,
                Parallelism::Threads(t),
            );
            for v in 0..10u32 {
                assert_eq!(base.ranks_of(v), idx.ranks_of(v), "threads {t}, node {v}");
            }
            assert_eq!(base.theta(), idx.theta());
        }
    }

    #[test]
    fn parallel_build_with_one_thread_works() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let a = HimorIndex::build_parallel(&g, Model::WeightedCascade, &d, &lca, 50, 5, 1);
        assert_eq!(a.num_nodes(), 10);
    }

    #[test]
    fn build_stats_reflect_construction_effort() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let mut rng = SmallRng::seed_from_u64(31);
        let idx = HimorIndex::build(&g, Model::WeightedCascade, &d, &lca, 10, &mut rng);
        let s = idx.build_stats();
        // Every one of the Θ = θ·|V| uniform draws generates an RR graph,
        // and stage 2 merges one bucket per internal vertex.
        assert_eq!(s.rr_graphs, 100);
        assert!(s.rr_edges > 0);
        assert_eq!(s.bucket_merges, (d.num_vertices() - 10) as u64);
        let seeded = HimorIndex::build_seeded(
            &g,
            Model::WeightedCascade,
            &d,
            &lca,
            10,
            9,
            Parallelism::Threads(4),
        );
        assert_eq!(seeded.build_stats().rr_graphs, 100);
        assert_eq!(seeded.build_stats().bucket_merges, s.bucket_merges);
        // A reloaded index carries no provenance.
        let raw = HimorIndex::from_raw(vec![vec![1]], 5);
        assert_eq!(raw.build_stats(), BuildStats::default());
    }

    #[test]
    fn memory_reflects_total_depth() {
        let g = two_stars();
        let (d, lca) = setup(&g);
        let mut rng = SmallRng::seed_from_u64(25);
        let idx = HimorIndex::build(&g, Model::WeightedCascade, &d, &lca, 10, &mut rng);
        let entries: usize = (0..10u32).map(|v| d.root_path(v).len()).sum();
        assert!(idx.memory_bytes() >= entries * 4);
    }
}
