//! Multi-shard query serving: one [`CodEngine`] per connected-component
//! shard over a single set of shared (possibly memory-mapped) artifacts.
//!
//! The shard map comes from [`cod_graph::partition::partition_components`]:
//! connected components are packed onto `num_shards` shards by
//! longest-processing-time scheduling, so every component — and therefore
//! every community a query can ever return — lives wholly inside one
//! shard. Routing is by the seed node's shard; a batch is scattered into
//! per-shard sub-batches, evaluated concurrently, and gathered back into
//! the caller's order.
//!
//! # Determinism contract
//!
//! A sharded batch answers **bit-identically** to the same batch on a
//! single engine over the same artifacts, for every shard count and every
//! thread count. The mechanism is positional seed derivation
//! ([`CodEngine::query_batch_seeded`]): the batch draws *one* master
//! `u64` from the caller's RNG, expands it into a
//! [`SeedSequence`], and query `i` — by its position in the caller's
//! batch, not its position in any shard's sub-batch — evaluates on
//! `seq.seed_for(i + 1)`. Each evaluation is a pure function of its
//! master seed, so neither the scatter split nor the gather interleaving
//! can shift an answer. Artifacts are prebuilt and shared behind `Arc`,
//! so no shard ever consumes build RNG mid-batch.
//!
//! Caches stay **per-shard** (recluster cache, RR-pool cache, scratch
//! pool): a shard only ever sees queries whose artifacts live in its
//! components, so there is no cross-shard cache churn — and cache state
//! never affects answers, only speed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cod_graph::partition::{partition_components, Partition};
use cod_graph::{AttributedGraph, NodeId};
use cod_hierarchy::Hierarchy;
use cod_influence::{par_ranges, SeedSequence};
use rand::prelude::*;

use crate::codx::MappedArtifacts;
use crate::engine::{CodEngine, Query};
use crate::error::CodResult;
use crate::failpoint;
use crate::himor::HimorIndex;
use crate::pipeline::{CodAnswer, CodConfig, QueryLimits};
use crate::telemetry::MetricsSnapshot;

/// A fleet of per-shard [`CodEngine`]s behind one batch API.
///
/// See the module docs for the routing and determinism contract. The
/// public surface mirrors [`CodEngine`] closely enough that the serve
/// tier can front either interchangeably.
pub struct ShardedEngine {
    engines: Vec<CodEngine>,
    partition: Partition,
    g: Arc<AttributedGraph>,
    /// Queries routed to each shard (exported as
    /// `cod_shard_queries_total{shard="i"}`).
    shard_queries: Vec<AtomicU64>,
    /// Batch calls served (`cod_shard_batches_total`).
    batches: AtomicU64,
    /// Batch calls whose scatter touched more than one shard
    /// (`cod_shard_fanout_total`).
    fanouts: AtomicU64,
}

impl ShardedEngine {
    /// A sharded engine over shared prebuilt artifacts. `num_shards` is
    /// clamped to at least 1; shards beyond the component count stay
    /// empty (and idle).
    pub fn from_shared_parts(
        g: Arc<AttributedGraph>,
        cfg: CodConfig,
        base: Arc<Hierarchy>,
        index: Arc<HimorIndex>,
        num_shards: usize,
    ) -> Self {
        let partition = partition_components(g.csr(), num_shards.max(1));
        let engines: Vec<CodEngine> = (0..partition.num_shards())
            .map(|_| {
                CodEngine::from_shared_parts(
                    Arc::clone(&g),
                    cfg,
                    Arc::clone(&base),
                    Arc::clone(&index),
                )
            })
            .collect();
        let shard_queries = (0..engines.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            engines,
            partition,
            g,
            shard_queries,
            batches: AtomicU64::new(0),
            fanouts: AtomicU64::new(0),
        }
    }

    /// A sharded engine over the artifacts persisted in a CODX v3 file:
    /// every shard serves zero-copy views of the same mapping.
    pub fn from_mapped(
        arts: &MappedArtifacts,
        cfg: CodConfig,
        num_shards: usize,
    ) -> CodResult<Self> {
        let g = arts.graph()?;
        let base = arts.hierarchy()?;
        let index = arts.himor()?;
        Ok(Self::from_shared_parts(g, cfg, base, index, num_shards))
    }

    /// A sharded engine that builds the base hierarchy and HIMOR index
    /// eagerly (consuming `rng` exactly as [`CodEngine::ensure_himor`]
    /// would) and shares them across shards.
    pub fn build<R: Rng>(
        g: Arc<AttributedGraph>,
        cfg: CodConfig,
        num_shards: usize,
        rng: &mut R,
    ) -> Self {
        let builder = CodEngine::from_shared(Arc::clone(&g), cfg);
        let base = builder.base_hierarchy();
        let index = builder.ensure_himor(rng);
        Self::from_shared_parts(g, cfg, base, index, num_shards)
    }

    /// The graph being served.
    pub fn graph(&self) -> &AttributedGraph {
        &self.g
    }

    /// The shared configuration.
    pub fn config(&self) -> &CodConfig {
        self.engines[0].config()
    }

    /// The number of shards (≥ 1; trailing shards may be empty).
    pub fn num_shards(&self) -> usize {
        self.engines.len()
    }

    /// The component partition backing the routing table.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The shard serving `v`, or `None` when `v` is out of range.
    pub fn shard_of(&self, v: NodeId) -> Option<u32> {
        self.partition.shard_of_checked(v)
    }

    /// The per-shard engine (tests and diagnostics).
    pub fn shard_engine(&self, s: usize) -> &CodEngine {
        &self.engines[s]
    }

    /// Routes one query to its shard. Equivalent to a batch of one.
    pub fn query<R: Rng>(&self, query: Query, rng: &mut R) -> CodResult<Option<CodAnswer>> {
        let limits = self.config().limits;
        self.query_with_limits(query, &limits, rng)
    }

    /// [`ShardedEngine::query`] under per-request limits.
    pub fn query_with_limits<R: Rng>(
        &self,
        query: Query,
        limits: &QueryLimits,
        rng: &mut R,
    ) -> CodResult<Option<CodAnswer>> {
        match self
            .query_batch_with_limits(std::slice::from_ref(&query), limits, rng)
            .pop()
        {
            Some(result) => result,
            None => unreachable!("a batch of one yields one result"),
        }
    }

    /// Scatter-gather batch evaluation under the configured limits.
    pub fn query_batch<R: Rng>(
        &self,
        queries: &[Query],
        rng: &mut R,
    ) -> Vec<CodResult<Option<CodAnswer>>> {
        let limits = self.config().limits;
        self.query_batch_with_limits(queries, &limits, rng)
    }

    /// Scatter-gather batch evaluation: draws one master `u64` from
    /// `rng`, derives per-query seeds by the caller's batch position,
    /// scatters per-shard sub-batches (evaluated concurrently under the
    /// configured parallelism), and gathers results back into batch
    /// order. Admission control is **per shard**: an overloaded shard
    /// sheds only the queries routed to it, with the usual retriable
    /// [`crate::CodError::Overloaded`].
    ///
    /// Bit-identical to [`CodEngine::query_batch_seeded`] on a single
    /// engine over the same artifacts with the same master seed, for
    /// every shard count and thread count.
    pub fn query_batch_with_limits<R: Rng>(
        &self,
        queries: &[Query],
        limits: &QueryLimits,
        rng: &mut R,
    ) -> Vec<CodResult<Option<CodAnswer>>> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let seq = SeedSequence::new(rng.next_u64());
        if queries.is_empty() {
            return Vec::new();
        }

        // Scatter: per-shard lists of *global* indices, in batch order.
        // Out-of-range seed nodes route to shard 0, whose engine turns
        // them into the same `InvalidQuery` a single engine would.
        let mut groups: Vec<(u32, Vec<usize>)> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            let s = self.partition.shard_of_checked(q.node).unwrap_or(0);
            match groups.iter_mut().find(|(shard, _)| *shard == s) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((s, vec![i])),
            }
        }
        if groups.len() > 1 {
            self.fanouts.fetch_add(1, Ordering::Relaxed);
        }
        for (s, idxs) in &groups {
            self.shard_queries[*s as usize].fetch_add(idxs.len() as u64, Ordering::Relaxed);
        }

        // Evaluate each shard's sub-batch. A single-shard batch runs
        // inline; otherwise shards fan out under the configured thread
        // count (each evaluation is a pure function of its positional
        // seed, so the split cannot affect answers).
        let run_shard = |&(s, ref idxs): &(u32, Vec<usize>)| {
            let qs: Vec<Query> = idxs.iter().map(|&i| queries[i]).collect();
            let seeds: Vec<u64> = idxs.iter().map(|&i| seq.seed_for(i as u64 + 1)).collect();
            failpoint::hit(failpoint::Site::ShardGather, None);
            self.engines[s as usize].query_batch_derived(&qs, &seeds, &seq, limits)
        };
        let mut out: Vec<Option<CodResult<Option<CodAnswer>>>> =
            (0..queries.len()).map(|_| None).collect();
        if groups.len() == 1 {
            for (&i, r) in groups[0].1.iter().zip(run_shard(&groups[0])) {
                out[i] = Some(r);
            }
        } else {
            let threads = self.config().parallelism.thread_count();
            let gathered = par_ranges(groups.len(), threads, |range| {
                range
                    .map(|gi| (gi, run_shard(&groups[gi])))
                    .collect::<Vec<_>>()
            });
            for (gi, results) in gathered.into_iter().flatten() {
                for (&i, r) in groups[gi].1.iter().zip(results) {
                    out[i] = Some(r);
                }
            }
        }
        out.into_iter()
            .map(|r| match r {
                Some(r) => r,
                None => unreachable!("every query was routed to exactly one shard"),
            })
            .collect()
    }

    /// Forwards footprint-scoped invalidation to every shard engine (each
    /// keeps its own recluster and RR-pool caches). Returns the summed
    /// `(recluster entries dropped, pools dropped, pool bytes dropped)`.
    pub fn invalidate_scoped(&self, footprint: &crate::mutation::Footprint) -> (usize, usize, u64) {
        let mut total = (0usize, 0usize, 0u64);
        for e in &self.engines {
            let (entries, pools, bytes) = e.invalidate_scoped(footprint);
            total.0 += entries;
            total.1 += pools;
            total.2 += bytes;
        }
        total
    }

    /// Drops every shard's cached artifacts and shared RR pools.
    pub fn clear_cache(&self) {
        for e in &self.engines {
            e.clear_cache();
        }
    }

    /// Initiates drain on every shard engine.
    pub fn begin_drain(&self) {
        for e in &self.engines {
            e.begin_drain();
        }
    }

    /// Fires every shard's kill switch (see
    /// [`CodEngine::cancel_inflight`]).
    pub fn cancel_inflight(&self) {
        for e in &self.engines {
            e.cancel_inflight();
        }
    }

    /// The largest retry-after hint across shards — the bound a caller
    /// should wait before retrying a shed batch.
    pub fn retry_after_hint(&self) -> Duration {
        self.engines
            .iter()
            .map(|e| e.retry_after_hint())
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// One snapshot aggregating every shard's engine metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.engines[0].metrics();
        for e in &self.engines[1..] {
            snap = snap.merged(&e.metrics());
        }
        snap
    }

    /// The Prometheus exposition: the aggregated engine metrics plus the
    /// shard tier's own series (`cod_shard_count`,
    /// `cod_shard_queries_total{shard=...}`, `cod_shard_batches_total`,
    /// `cod_shard_fanout_total`).
    pub fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let cache = self
            .engines
            .iter()
            .map(|e| e.cache_stats())
            .reduce(|a, b| crate::cache::CacheStats {
                hits: a.hits + b.hits,
                misses: a.misses + b.misses,
                len: a.len + b.len,
                capacity: a.capacity + b.capacity,
            })
            .unwrap_or_default();
        let pool = self
            .engines
            .iter()
            .map(|e| e.pool_stats())
            .reduce(|a, b| crate::pool::PoolCacheStats {
                pools: a.pools + b.pools,
                resident_bytes: a.resident_bytes + b.resident_bytes,
                budget_bytes: a.budget_bytes + b.budget_bytes,
                epoch: a.epoch.max(b.epoch),
            })
            .unwrap_or_default();
        let mut out = self.metrics().render_prometheus(&cache, &pool);
        let _ = writeln!(out, "# HELP cod_shard_count shards serving this engine");
        let _ = writeln!(out, "# TYPE cod_shard_count gauge");
        let _ = writeln!(out, "cod_shard_count {}", self.engines.len());
        let _ = writeln!(
            out,
            "# HELP cod_shard_queries_total queries routed to each shard"
        );
        let _ = writeln!(out, "# TYPE cod_shard_queries_total counter");
        for (s, n) in self.shard_queries.iter().enumerate() {
            let _ = writeln!(
                out,
                "cod_shard_queries_total{{shard=\"{s}\"}} {}",
                n.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "# HELP cod_shard_batches_total scatter-gather batch calls served"
        );
        let _ = writeln!(out, "# TYPE cod_shard_batches_total counter");
        let _ = writeln!(
            out,
            "cod_shard_batches_total {}",
            self.batches.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# HELP cod_shard_fanout_total batches whose scatter touched more than one shard"
        );
        let _ = writeln!(out, "# TYPE cod_shard_fanout_total counter");
        let _ = writeln!(
            out,
            "cod_shard_fanout_total {}",
            self.fanouts.load(Ordering::Relaxed)
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Method;
    use cod_graph::{AttrInterner, AttrTable, GraphBuilder};

    fn two_component_graph() -> AttributedGraph {
        let mut b = GraphBuilder::new(9);
        // Component A: a 5-node path with a triangle at one end.
        // Component B: a 4-cycle.
        for (u, v) in [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (0, 2),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 5),
        ] {
            b.add_edge(u, v);
        }
        let mut i = AttrInterner::new();
        let left = i.intern("left");
        let right = i.intern("right");
        let lists = (0..9)
            .map(|v| vec![if v < 5 { left } else { right }])
            .collect();
        AttributedGraph::from_parts(b.build(), AttrTable::from_lists(lists), i)
    }

    fn cfg() -> CodConfig {
        CodConfig {
            k: 2,
            theta: 60,
            ..CodConfig::default()
        }
    }

    fn all_queries(g: &AttributedGraph) -> Vec<Query> {
        let mut qs = Vec::new();
        for v in 0..g.num_nodes() as NodeId {
            qs.push(Query::codu(v));
            let attr = g.attrs().of(v).first().copied();
            for m in [Method::Codr, Method::CodlMinus, Method::Codl] {
                qs.push(Query {
                    node: v,
                    attr,
                    method: m,
                });
            }
        }
        qs
    }

    /// Everything observable about an answer, for bit-identity asserts.
    #[allow(clippy::type_complexity)]
    fn canon(
        r: &CodResult<Option<CodAnswer>>,
    ) -> Result<Option<(Vec<NodeId>, usize, crate::pipeline::AnswerSource, bool)>, String> {
        match r {
            Ok(Some(a)) => Ok(Some((a.members.clone(), a.rank, a.source, a.uncertain))),
            Ok(None) => Ok(None),
            Err(e) => Err(e.to_string()),
        }
    }

    /// An RNG whose first `next_u64` is a fixed master seed — pins the
    /// one draw a sharded batch makes so both sides of an identity test
    /// share the seed sequence.
    struct FixedMaster(u64);
    impl rand::RngCore for FixedMaster {
        fn next_u64(&mut self) -> u64 {
            self.0
        }
    }

    #[test]
    fn sharded_batch_matches_single_engine_seeded() {
        let g = Arc::new(two_component_graph());
        let mut build_rng = SmallRng::seed_from_u64(7);
        let single = CodEngine::from_shared(Arc::clone(&g), cfg());
        let base = single.base_hierarchy();
        let index = single.ensure_himor(&mut build_rng);
        let queries = all_queries(&g);
        let limits = cfg().limits;
        let master = 0xC0D_u64;
        let want = single.query_batch_seeded(&queries, &SeedSequence::new(master), 0, &limits);
        for shards in [1usize, 2, 4] {
            let sharded = ShardedEngine::from_shared_parts(
                Arc::clone(&g),
                cfg(),
                Arc::clone(&base),
                Arc::clone(&index),
                shards,
            );
            let got = sharded.query_batch_with_limits(&queries, &limits, &mut FixedMaster(master));
            assert_eq!(want.len(), got.len());
            for (i, (w, g_)) in want.iter().zip(got.iter()).enumerate() {
                assert_eq!(canon(w), canon(g_), "query {i} diverged at {shards} shards");
            }
        }
    }

    #[test]
    fn routing_respects_components() {
        let g = Arc::new(two_component_graph());
        let mut rng = SmallRng::seed_from_u64(1);
        let sharded = ShardedEngine::build(Arc::clone(&g), cfg(), 2, &mut rng);
        assert_eq!(sharded.num_shards(), 2);
        let s0 = sharded.shard_of(0).expect("node 0 in range");
        for v in 1..5 {
            assert_eq!(sharded.shard_of(v), Some(s0), "component A is one shard");
        }
        let s1 = sharded.shard_of(5).expect("node 5 in range");
        assert_ne!(s0, s1, "two components spread over two shards");
        assert_eq!(sharded.shard_of(100), None);
    }

    #[test]
    fn metrics_text_exports_shard_series() {
        let g = Arc::new(two_component_graph());
        let mut rng = SmallRng::seed_from_u64(2);
        let sharded = ShardedEngine::build(Arc::clone(&g), cfg(), 2, &mut rng);
        let queries = all_queries(&g);
        let _ = sharded.query_batch(&queries, &mut rng);
        let text = sharded.metrics_text();
        assert!(text.contains("cod_shard_count 2"));
        assert!(text.contains("cod_shard_queries_total{shard=\"0\"}"));
        assert!(text.contains("cod_shard_queries_total{shard=\"1\"}"));
        assert!(text.contains("cod_shard_batches_total 1"));
        assert!(text.contains("cod_shard_fanout_total 1"));
        assert!(text.contains("cod_queries_total"));
    }

    #[test]
    fn out_of_range_node_is_invalid_not_panic() {
        let g = Arc::new(two_component_graph());
        let mut rng = SmallRng::seed_from_u64(3);
        let sharded = ShardedEngine::build(Arc::clone(&g), cfg(), 2, &mut rng);
        let result = sharded.query(Query::codu(1_000), &mut rng);
        assert!(matches!(result, Err(crate::CodError::InvalidQuery(_))));
    }
}
