//! Deterministic failpoint harness for governance tests.
//!
//! A failpoint is a named checkpoint on the serving path ([`Site`]) that
//! tests can arm with an [`Action`]: panic (exercising panic isolation),
//! delay (widening race windows for the stress tests), or forced
//! cancellation (firing the query's `CancelToken` as if a limit tripped).
//!
//! **Compiled out in release builds**: with `debug_assertions` off,
//! [`hit`] is an empty inline function and [`arm`]/[`disarm_all`] are
//! no-ops, so production binaries carry zero overhead and zero attack
//! surface. In debug builds the disarmed fast path is a single relaxed
//! atomic load.
//!
//! Arming happens through the API ([`arm`]) or the `COD_FAILPOINTS`
//! environment variable, read once per process:
//!
//! ```text
//! COD_FAILPOINTS=all                         # 1ms delay at every site
//! COD_FAILPOINTS=sample_batch=panic          # one site, one action
//! COD_FAILPOINTS=hfs_level=delay:5,merge_wave=cancel
//! ```
//!
//! `all` injects only delays — answers must stay bit-identical, so a full
//! test run under `COD_FAILPOINTS=all` proves every checkpoint is
//! draw-order-neutral. [`disarm_all`] resets to the env baseline, so tests
//! that arm sites programmatically can restore whatever the harness
//! configured. Tests arming failpoints share process-global state and must
//! serialize behind a lock (see `tests/governance.rs`).

use cod_influence::CancelToken;

/// A named checkpoint on the serving path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Site {
    /// Per RR-sample batch inside compressed evaluation and HIMOR's HFS
    /// stage (every `CHECK_EVERY` draws).
    SampleBatch,
    /// Per HFS level while recording one RR graph into the buckets.
    HfsLevel,
    /// Per depth wave of HIMOR's bucket merge stage.
    MergeWave,
    /// Every 256 merges of an attribute-aware linkage (re)clustering.
    LinkageRound,
    /// At the top of each per-query evaluation worker.
    EvalWorker,
    /// Before a recluster-cache or index build closure runs.
    CacheBuild,
    /// Serve tier: after a connection is accepted, before it is handed to
    /// a worker.
    Accept,
    /// Serve tier: before the HTTP request parser runs on a connection.
    Parse,
    /// Serve tier: after routing, immediately before the engine call.
    PreEval,
    /// Serve tier: before the response bytes are written back.
    RespWrite,
    /// Shared RR-pool cache: per sample batch while growing a pooled
    /// generation (every `CHECK_EVERY` draws).
    PoolGrow,
    /// Shared RR-pool cache: per sample batch while folding pooled RR
    /// graphs into a query's HFS buckets.
    PoolFold,
    /// Mutation pipeline: before the localized dendrogram repair of a
    /// flush runs.
    DendroRepair,
    /// Mutation pipeline: per redraw batch while patching the HIMOR index
    /// after a repair (every `CHECK_EVERY` redraws).
    HimorPatch,
    /// Out-of-core artifacts: before a mapped CODX v3 section's lazy CRC
    /// verification runs (first access of that section).
    MmapSection,
    /// Sharded engine: per shard, after its slice of a scattered batch
    /// completes and before results are gathered into global order.
    ShardGather,
    /// Durability: after a WAL record's bytes reach the file, before the
    /// fsync-policy decision (a crash here leaves an un-fsynced tail).
    WalAppend,
    /// Durability: immediately before the WAL `sync_data` call (a crash
    /// here loses the whole unsynced group).
    WalFsync,
    /// Durability: after the checkpoint snapshot + fresh WAL are written,
    /// before the manifest swap begins (a crash here leaves unreferenced
    /// files for GC).
    CheckpointCommit,
    /// Durability: immediately before the manifest's atomic rename (a
    /// crash here must leave the *old* manifest authoritative).
    ManifestSwap,
}

/// Every *engine* site, for tests that iterate the engine query surface
/// (each of these is reachable from a plain `query_batch` workload).
pub const SITES: [Site; 6] = [
    Site::SampleBatch,
    Site::HfsLevel,
    Site::MergeWave,
    Site::LinkageRound,
    Site::EvalWorker,
    Site::CacheBuild,
];

/// The serve-tier sites, reachable only through `cod-serve`'s request
/// path. Kept out of [`SITES`] so engine-only chaos sweeps don't arm
/// checkpoints their workload can never hit.
pub const SERVE_SITES: [Site; 4] = [Site::Accept, Site::Parse, Site::PreEval, Site::RespWrite];

/// The shared RR-pool cache sites, reachable only when `CodConfig::pool`
/// is enabled. Kept out of [`SITES`] for the same reason as the serve
/// tier: the engine chaos sweeps run pool-disabled workloads that could
/// never hit these checkpoints.
pub const POOL_SITES: [Site; 2] = [Site::PoolGrow, Site::PoolFold];

/// The mutation-pipeline sites, reachable only through `DynamicCod`'s
/// flush path (repair + HIMOR patch). Kept out of [`SITES`] so engine
/// chaos sweeps over frozen graphs don't arm unreachable checkpoints.
pub const MUTATION_SITES: [Site; 2] = [Site::DendroRepair, Site::HimorPatch];

/// The out-of-core + sharded sites, reachable only through mapped CODX v3
/// artifacts ([`crate::codx::MappedArtifacts`]) and the
/// [`crate::shard::ShardedEngine`] scatter-gather path. Kept out of
/// [`SITES`] so single-engine in-RAM chaos sweeps don't arm checkpoints
/// their workload can never hit.
pub const OOC_SITES: [Site; 2] = [Site::MmapSection, Site::ShardGather];

/// The durability sites, reachable only through the write-ahead log and
/// checkpoint path ([`crate::wal`] / [`crate::recovery`]). Kept out of
/// [`SITES`] so engine chaos sweeps over frozen graphs don't arm
/// checkpoints their workload can never hit.
pub const DURABILITY_SITES: [Site; 4] = [
    Site::WalAppend,
    Site::WalFsync,
    Site::CheckpointCommit,
    Site::ManifestSwap,
];

impl Site {
    // Only the debug-build registry parses `COD_FAILPOINTS`; release
    // builds compile the sites out and never name them.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn parse(name: &str) -> Option<Site> {
        match name {
            "sample_batch" => Some(Site::SampleBatch),
            "hfs_level" => Some(Site::HfsLevel),
            "merge_wave" => Some(Site::MergeWave),
            "linkage_round" => Some(Site::LinkageRound),
            "eval_worker" => Some(Site::EvalWorker),
            "cache_build" => Some(Site::CacheBuild),
            "accept" => Some(Site::Accept),
            "parse" => Some(Site::Parse),
            "pre_eval" => Some(Site::PreEval),
            "resp_write" => Some(Site::RespWrite),
            "pool_grow" => Some(Site::PoolGrow),
            "pool_fold" => Some(Site::PoolFold),
            "dendro_repair" => Some(Site::DendroRepair),
            "himor_patch" => Some(Site::HimorPatch),
            "mmap_section" => Some(Site::MmapSection),
            "shard_gather" => Some(Site::ShardGather),
            "wal_append" => Some(Site::WalAppend),
            "wal_fsync" => Some(Site::WalFsync),
            "checkpoint_commit" => Some(Site::CheckpointCommit),
            "manifest_swap" => Some(Site::ManifestSwap),
            _ => None,
        }
    }
}

/// What an armed failpoint does when hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Panic with a recognizable message (tests panic isolation).
    Panic,
    /// Sleep for the given duration (widens race windows).
    Delay(std::time::Duration),
    /// Fire the query's [`CancelToken`], as if a limit tripped here.
    Cancel,
}

#[cfg(debug_assertions)]
mod imp {
    use super::{Action, Site, SITES};
    use cod_influence::CancelToken;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// Fast-path guard: true iff any site is armed.
    static ARMED: AtomicBool = AtomicBool::new(false);
    static REGISTRY: Mutex<Option<HashMap<Site, Action>>> = Mutex::new(None);

    /// The baseline parsed from `COD_FAILPOINTS`, read once per process.
    fn env_baseline() -> &'static HashMap<Site, Action> {
        static BASELINE: OnceLock<HashMap<Site, Action>> = OnceLock::new();
        BASELINE.get_or_init(|| {
            let Ok(spec) = std::env::var("COD_FAILPOINTS") else {
                return HashMap::new();
            };
            parse_spec(&spec)
        })
    }

    fn parse_spec(spec: &str) -> HashMap<Site, Action> {
        let mut map = HashMap::new();
        if spec.trim() == "all" {
            for site in SITES
                .into_iter()
                .chain(super::SERVE_SITES)
                .chain(super::POOL_SITES)
                .chain(super::MUTATION_SITES)
                .chain(super::OOC_SITES)
                .chain(super::DURABILITY_SITES)
            {
                map.insert(site, Action::Delay(std::time::Duration::from_millis(1)));
            }
            return map;
        }
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some((site, action)) = part.split_once('=') else {
                eprintln!("warning: COD_FAILPOINTS entry {part:?} lacks '='; ignored");
                continue;
            };
            let Some(site) = Site::parse(site.trim()) else {
                eprintln!("warning: COD_FAILPOINTS names unknown site {site:?}; ignored");
                continue;
            };
            let action = match action.trim() {
                "panic" => Action::Panic,
                "cancel" => Action::Cancel,
                a => {
                    if let Some(ms) = a.strip_prefix("delay:").and_then(|m| m.parse().ok()) {
                        Action::Delay(std::time::Duration::from_millis(ms))
                    } else {
                        eprintln!("warning: COD_FAILPOINTS action {a:?} unknown; ignored");
                        continue;
                    }
                }
            };
            map.insert(site, action);
        }
        map
    }

    fn with_registry<T>(f: impl FnOnce(&mut HashMap<Site, Action>) -> T) -> T {
        let mut guard = match REGISTRY.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let map = guard.get_or_insert_with(|| env_baseline().clone());
        let out = f(map);
        ARMED.store(!map.is_empty(), Ordering::Relaxed);
        out
    }

    pub fn arm(site: Site, action: Action) {
        with_registry(|map| {
            map.insert(site, action);
        });
    }

    pub fn disarm_all() {
        with_registry(|map| {
            *map = env_baseline().clone();
        });
    }

    /// True once the env baseline has been folded into `ARMED`, so the
    /// disarmed steady state is two relaxed loads.
    static ENV_LATCHED: AtomicBool = AtomicBool::new(false);

    #[inline]
    pub fn hit(site: Site, cancel: Option<&CancelToken>) {
        if !ARMED.load(Ordering::Relaxed) {
            if ENV_LATCHED.load(Ordering::Relaxed) {
                return;
            }
            // First hit after startup: latch the env baseline in, so an
            // env-armed process trips without any API call.
            with_registry(|_| {});
            ENV_LATCHED.store(true, Ordering::Relaxed);
            if !ARMED.load(Ordering::Relaxed) {
                return;
            }
        }
        hit_slow(site, cancel);
    }

    #[cold]
    fn hit_slow(site: Site, cancel: Option<&CancelToken>) {
        let action = with_registry(|map| map.get(&site).copied());
        match action {
            None => {}
            Some(Action::Panic) => panic!("failpoint {site:?} armed to panic"),
            Some(Action::Delay(d)) => std::thread::sleep(d),
            Some(Action::Cancel) => {
                if let Some(token) = cancel {
                    token.cancel();
                }
            }
        }
    }
}

#[cfg(not(debug_assertions))]
mod imp {
    use super::{Action, Site};
    use cod_influence::CancelToken;

    pub fn arm(_site: Site, _action: Action) {}
    pub fn disarm_all() {}

    #[inline(always)]
    pub fn hit(_site: Site, _cancel: Option<&CancelToken>) {}
}

/// Arms `site` with `action` for the whole process (debug builds only; a
/// no-op in release).
pub fn arm(site: Site, action: Action) {
    imp::arm(site, action);
}

/// Resets every site to the `COD_FAILPOINTS` environment baseline (debug
/// builds only; a no-op in release).
pub fn disarm_all() {
    imp::disarm_all();
}

/// Checkpoint: does nothing unless `site` is armed. `cancel` is the query's
/// token, handed to [`Action::Cancel`] injections.
#[inline]
pub fn hit(site: Site, cancel: Option<&CancelToken>) {
    imp::hit(site, cancel);
}

/// Whether failpoints are compiled into this build (true in debug builds).
/// Tests use this to skip injection scenarios in release runs.
pub const fn compiled_in() -> bool {
    cfg!(debug_assertions)
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Failpoint state is process-global: serialize these tests.
    static LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn disarmed_hit_is_a_no_op() {
        let _g = guard();
        disarm_all();
        hit(Site::SampleBatch, None); // must not panic or hang
    }

    #[test]
    fn cancel_action_fires_the_token() {
        let _g = guard();
        arm(Site::MergeWave, Action::Cancel);
        let token = cod_influence::CancelToken::unlimited();
        hit(Site::MergeWave, Some(&token));
        assert!(token.is_cancelled());
        // Other sites stay disarmed.
        let other = cod_influence::CancelToken::unlimited();
        hit(Site::HfsLevel, Some(&other));
        assert!(!other.is_cancelled());
        disarm_all();
    }

    #[test]
    #[should_panic(expected = "failpoint EvalWorker armed to panic")]
    fn panic_action_panics() {
        let _g = guard();
        arm(Site::EvalWorker, Action::Panic);
        let out = std::panic::catch_unwind(|| hit(Site::EvalWorker, None));
        disarm_all();
        drop(_g);
        // Re-raise outside the guard so cleanup always ran.
        if let Err(payload) = out {
            std::panic::resume_unwind(payload);
        }
    }
}
