//! Crash recovery: the checkpoint manifest and the durable mutation
//! engine that ties the WAL, checkpoints and replay together.
//!
//! # The durability protocol
//!
//! A durable directory holds exactly three kinds of files:
//!
//! * `snap-N.codx` — a CODX v3 artifact snapshot (graph + hierarchy +
//!   HIMOR) taken at checkpoint `N`;
//! * `wal-N.codw` — the write-ahead log of every mutation applied *after*
//!   checkpoint `N`;
//! * `MANIFEST` — a tiny CRC-guarded record naming the live
//!   `(snapshot, wal, offset)` triple plus the pinned HIMOR seed.
//!
//! Every state transition preserves one invariant: **at any crash
//! instant, the manifest on disk names a snapshot and a WAL that together
//! reproduce the engine.** Appends go to the WAL (fsync'd per policy)
//! *before* the in-memory apply. A checkpoint writes the new snapshot and
//! a fresh WAL first, then atomically swaps the manifest
//! (temp+fsync+rename), and only then garbage-collects the files the old
//! manifest referenced — so a crash before the swap leaves the old triple
//! authoritative and the half-written new files are mere garbage, while a
//! crash after the swap leaves the new triple live and the old files
//! garbage. [`DurableCod::open`] sweeps both kinds of leftovers.
//!
//! # Recovery ≡ never crashing
//!
//! Recovery loads the manifest's snapshot, rehydrates a [`DynamicCod`]
//! from it ([`DynamicCod::from_artifacts`]), truncates the WAL's torn
//! tail, and replays the record suffix past the manifest offset through
//! the ordinary mutation pipeline. Because every rebuild/repair derives
//! from the pinned HIMOR seed (PR 8's determinism contract), the
//! recovered artifacts are **bit-identical** to those of a process that
//! never crashed and applied the same durable prefix — at any thread
//! count. `tests/durability.rs` proves this by byte-comparing
//! [`DurableCod::snapshot_bytes`] against a clean replay at 1/2/8
//! threads, with crashes injected at every WAL/checkpoint failpoint site.
//!
//! # MANIFEST format, version 1
//!
//! ```text
//! header:  magic "CODF" | version u32 = 1
//! body:    payload_len u64 | payload | crc32 u32
//!          payload = seed u64 | events_covered u64 | wal_offset u64
//!                  | snapshot name: len u32 + bytes
//!                  | wal name:      len u32 + bytes
//! footer:  total_len u64   (must equal the file's byte length)
//! ```

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use cod_graph::AttributedGraph;
use rand::prelude::*;

use crate::codx::{save_artifacts, serialize_artifacts, MappedArtifacts};
use crate::dynamic::{DynamicCod, MutationFlushReport};
use crate::error::{CodError, CodResult};
use crate::failpoint::{self, Site};
use crate::mutation::Mutation;
use crate::persist::{self, crc32};
use crate::pipeline::{CodAnswer, CodConfig};
use crate::telemetry::MetricsSnapshot;
use crate::wal::{self, FsyncPolicy, TornTail, WalWriter, WAL_HEADER_LEN};

/// The manifest's file name inside a durable directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

const MANIFEST_MAGIC: &[u8; 4] = b"CODF";
const MANIFEST_VERSION: u32 = 1;

/// Knobs of the durability subsystem.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityConfig {
    /// When appended WAL records are forced to stable storage.
    pub fsync: FsyncPolicy,
    /// Applied events since the last checkpoint that trigger the next one.
    pub checkpoint_every_events: u64,
    /// WAL length in bytes that triggers a checkpoint regardless of the
    /// event count.
    pub checkpoint_wal_bytes: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            fsync: FsyncPolicy::default(),
            checkpoint_every_events: 4096,
            checkpoint_wal_bytes: 16 << 20,
        }
    }
}

/// What [`DurableCod::open`] observed while recovering.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryReport {
    /// Events the manifest's snapshot already covered.
    pub checkpoint_events: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed: u64,
    /// The torn tail truncated off the WAL, if any.
    pub torn_tail: Option<TornTail>,
    /// Stale atomic-save temp files swept from the directory.
    pub swept_temps: usize,
    /// Wall-clock time of the whole recovery (load + replay + flush).
    pub wall_time: Duration,
}

/// The CRC-guarded checkpoint manifest: which snapshot and WAL are live.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// The pinned HIMOR seed of the engine that wrote the checkpoint.
    pub seed: u64,
    /// Total mutation events the snapshot has absorbed.
    pub events_covered: u64,
    /// WAL byte offset the snapshot covers; replay starts here.
    pub wal_offset: u64,
    /// File name of the live snapshot (relative to the directory).
    pub snapshot: String,
    /// File name of the live WAL (relative to the directory).
    pub wal: String,
}

impl Manifest {
    /// Serializes into a complete CODF v1 byte image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(32 + self.snapshot.len() + self.wal.len());
        payload.extend_from_slice(&self.seed.to_le_bytes());
        payload.extend_from_slice(&self.events_covered.to_le_bytes());
        payload.extend_from_slice(&self.wal_offset.to_le_bytes());
        for name in [&self.snapshot, &self.wal] {
            payload.extend_from_slice(&(name.len() as u32).to_le_bytes());
            payload.extend_from_slice(name.as_bytes());
        }
        let total = 4 + 4 + 8 + payload.len() + 4 + 8;
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&(total as u64).to_le_bytes());
        debug_assert_eq!(out.len(), total);
        out
    }

    /// Parses a CODF image; every failure is [`CodError::IndexCorrupt`].
    pub fn from_bytes(bytes: &[u8]) -> CodResult<Self> {
        let corrupt = |msg: String| CodError::IndexCorrupt(format!("manifest: {msg}"));
        if bytes.len() < 4 + 4 + 8 + 4 + 8 {
            return Err(corrupt(format!("too short: {} bytes", bytes.len())));
        }
        if &bytes[..4] != MANIFEST_MAGIC {
            return Err(corrupt("bad magic; not a COD manifest".into()));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap_or([0; 4]));
        if version != MANIFEST_VERSION {
            return Err(corrupt(format!(
                "unsupported version {version} (expected {MANIFEST_VERSION})"
            )));
        }
        let total = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap_or([0; 8]));
        if total != bytes.len() as u64 {
            return Err(corrupt(format!(
                "total-length footer says {total} bytes but the file has {}",
                bytes.len()
            )));
        }
        let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap_or([0; 8]));
        if 16 + len as usize + 4 + 8 != bytes.len() {
            return Err(corrupt(format!(
                "payload length {len} inconsistent with file size {}",
                bytes.len()
            )));
        }
        let payload = &bytes[16..16 + len as usize];
        let stored = u32::from_le_bytes(
            bytes[16 + len as usize..16 + len as usize + 4]
                .try_into()
                .unwrap_or([0; 4]),
        );
        let actual = crc32(payload);
        if stored != actual {
            return Err(corrupt(format!(
                "checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
            )));
        }
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize, what: &str| -> CodResult<&[u8]> {
            if *pos + n > payload.len() {
                return Err(CodError::IndexCorrupt(format!(
                    "manifest: truncated while reading {what}"
                )));
            }
            let s = &payload[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let read_u64 = |pos: &mut usize, what: &str| -> CodResult<u64> {
            Ok(u64::from_le_bytes(
                take(pos, 8, what)?.try_into().unwrap_or([0; 8]),
            ))
        };
        let seed = read_u64(&mut pos, "seed")?;
        let events_covered = read_u64(&mut pos, "events covered")?;
        let wal_offset = read_u64(&mut pos, "wal offset")?;
        let mut read_name = |what: &str| -> CodResult<String> {
            let n =
                u32::from_le_bytes(take(&mut pos, 4, what)?.try_into().unwrap_or([0; 4])) as usize;
            let s = take(&mut pos, n, what)?;
            let name = std::str::from_utf8(s)
                .map_err(|_| CodError::IndexCorrupt(format!("manifest: {what} is not UTF-8")))?;
            if name.is_empty() || name.contains('/') || name.contains('\\') || name.contains("..") {
                return Err(CodError::IndexCorrupt(format!(
                    "manifest: {what} {name:?} is not a plain file name"
                )));
            }
            Ok(name.to_owned())
        };
        let snapshot = read_name("snapshot name")?;
        let walname = read_name("wal name")?;
        if pos != payload.len() {
            return Err(corrupt(format!(
                "{} trailing payload bytes",
                payload.len() - pos
            )));
        }
        Ok(Manifest {
            seed,
            events_covered,
            wal_offset,
            snapshot,
            wal: walname,
        })
    }

    /// Reads the manifest of a durable directory.
    pub fn load(dir: &Path) -> CodResult<Self> {
        let bytes = std::fs::read(dir.join(MANIFEST_NAME))?;
        Self::from_bytes(&bytes)
    }

    /// Atomically replaces the directory's manifest (temp+fsync+rename).
    fn store(&self, dir: &Path) -> CodResult<()> {
        persist::write_atomically(&dir.join(MANIFEST_NAME), &self.to_bytes())
    }
}

/// A [`DynamicCod`] whose every mutation is durably logged, checkpointed
/// and recoverable.
///
/// The wrapper owns the application order: [`DurableCod::apply`] appends
/// to the WAL **first**, then applies in memory, then (past the
/// configured thresholds) takes a checkpoint. Queries and flushes pass
/// through to the inner engine unchanged.
pub struct DurableCod {
    inner: DynamicCod,
    wal: WalWriter,
    dir: PathBuf,
    dcfg: DurabilityConfig,
    manifest: Manifest,
    /// Monotone checkpoint counter (parsed back from the snapshot name on
    /// open, so restarts keep ascending).
    checkpoint_id: u64,
    /// Total events ever applied: `manifest.events_covered` + WAL records.
    events_total: u64,
}

impl DurableCod {
    /// Creates a fresh durable directory around `g`: builds the engine,
    /// writes checkpoint 0 (snapshot + empty WAL + manifest) and returns
    /// the handle. Fails if `dir` already holds a manifest — recover that
    /// with [`DurableCod::open`] instead of silently discarding it.
    pub fn create(
        dir: &Path,
        g: &AttributedGraph,
        cfg: CodConfig,
        seed: u64,
        dcfg: DurabilityConfig,
    ) -> CodResult<Self> {
        if !cfg.parallelism.is_seeded() {
            return Err(CodError::InvalidQuery(
                "durable mode requires seeded parallelism (serial builds cannot replay)".into(),
            ));
        }
        std::fs::create_dir_all(dir)?;
        if dir.join(MANIFEST_NAME).exists() {
            return Err(CodError::InvalidQuery(format!(
                "{} already holds a durable state; open it instead of re-creating",
                dir.display()
            )));
        }
        let _ = persist::sweep_temp_files(dir);
        let inner = DynamicCod::with_seed(g, cfg, seed);
        let mut me = DurableCod {
            inner,
            // Placeholder writer; `checkpoint_to` swaps in wal-0.
            wal: WalWriter::open(&dir.join(".bootstrap.codw"), dcfg.fsync)?.0,
            dir: dir.to_path_buf(),
            dcfg,
            manifest: Manifest {
                seed,
                events_covered: 0,
                wal_offset: WAL_HEADER_LEN,
                snapshot: String::new(),
                wal: String::new(),
            },
            checkpoint_id: 0,
            events_total: 0,
        };
        me.checkpoint_to(0)?;
        let _ = std::fs::remove_file(dir.join(".bootstrap.codw"));
        Ok(me)
    }

    /// Opens (recovers) a durable directory: sweep stale temp files, load
    /// the manifest's snapshot, truncate the WAL's torn tail, replay the
    /// suffix, flush, and GC unreferenced files. Returns the handle plus
    /// a [`RecoveryReport`] of what recovery observed.
    pub fn open(
        dir: &Path,
        cfg: CodConfig,
        dcfg: DurabilityConfig,
    ) -> CodResult<(Self, RecoveryReport)> {
        let t0 = Instant::now();
        if !cfg.parallelism.is_seeded() {
            return Err(CodError::InvalidQuery(
                "durable mode requires seeded parallelism (serial builds cannot replay)".into(),
            ));
        }
        let swept = persist::sweep_temp_files(dir)?;
        let manifest = Manifest::load(dir)?;
        let mapped = MappedArtifacts::open_eager(&dir.join(&manifest.snapshot))?;
        let graph = mapped.graph()?;
        let hier = mapped.hierarchy()?;
        let index = mapped.himor()?;
        let mut inner = DynamicCod::from_artifacts(
            &graph,
            hier.dendro.clone(),
            (*index).clone(),
            cfg,
            manifest.seed,
        )?;
        drop(mapped);
        let (wal, torn) = WalWriter::open(&dir.join(&manifest.wal), dcfg.fsync)?;
        let records = wal::read_records(wal.path(), manifest.wal_offset)?;
        let mut applied = 0usize;
        for (i, m) in records.iter().enumerate() {
            match inner.apply(m) {
                Ok(_) => applied += 1,
                Err(e) => {
                    return Err(CodError::ReplayHalted {
                        applied,
                        failed_event: i + 1,
                        cause: Box::new(e),
                    });
                }
            }
        }
        // One flush brings the artifacts current (rebuild or repair); the
        // recovered state is now query-ready.
        inner.artifacts()?;
        let checkpoint_id = parse_checkpoint_id(&manifest.snapshot);
        let me = DurableCod {
            events_total: manifest.events_covered + records.len() as u64,
            inner,
            wal,
            dir: dir.to_path_buf(),
            dcfg,
            manifest,
            checkpoint_id,
        };
        me.gc();
        let report = RecoveryReport {
            checkpoint_events: me.manifest.events_covered,
            replayed: records.len() as u64,
            torn_tail: torn,
            swept_temps: swept,
            wall_time: t0.elapsed(),
        };
        me.inner
            .metrics_registry()
            .record_recovery(report.replayed, report.wall_time.as_nanos() as u64);
        Ok((me, report))
    }

    /// Whether `dir` holds a durable state (a manifest).
    pub fn exists(dir: &Path) -> bool {
        dir.join(MANIFEST_NAME).exists()
    }

    /// Applies one mutation durably: WAL append (fsync per policy) first,
    /// in-memory apply second, checkpoint third when thresholds trip.
    /// Returns whether the event changed anything (no-ops are still
    /// logged — replay must walk the identical event sequence).
    pub fn apply(&mut self, m: &Mutation) -> CodResult<bool> {
        let before = self.wal.offset();
        let receipt = self.wal.append(m)?;
        let reg = self.inner.metrics_registry();
        reg.record_wal_append();
        if receipt.synced {
            reg.record_wal_fsync();
        }
        let changed = match self.inner.apply(m) {
            Ok(changed) => changed,
            Err(e) => {
                // The event was rejected (e.g. out-of-range set_attrs):
                // drop its record so replay never trips over it.
                self.wal.rollback_last(before)?;
                return Err(e);
            }
        };
        self.events_total += 1;
        self.maybe_checkpoint()?;
        Ok(changed)
    }

    /// Forces every appended record to stable storage now.
    pub fn flush_wal(&mut self) -> CodResult<()> {
        if self.wal.flush_sync()? {
            self.inner.metrics_registry().record_wal_fsync();
        }
        Ok(())
    }

    /// Takes a checkpoint now: snapshot the flushed artifacts, start a
    /// fresh WAL, swap the manifest, GC the superseded files.
    pub fn checkpoint(&mut self) -> CodResult<()> {
        self.checkpoint_to(self.checkpoint_id + 1)
    }

    fn maybe_checkpoint(&mut self) -> CodResult<()> {
        let since = self.events_total - self.manifest.events_covered;
        if since >= self.dcfg.checkpoint_every_events
            || self.wal.offset() >= self.dcfg.checkpoint_wal_bytes
        {
            self.checkpoint()?;
        }
        Ok(())
    }

    fn checkpoint_to(&mut self, id: u64) -> CodResult<()> {
        // Flush first: the snapshot must embody every applied event.
        let (g, dendro, index) = self.inner.artifacts()?;
        failpoint::hit(Site::CheckpointCommit, None);
        let snap = format!("snap-{id}.codx");
        let walname = format!("wal-{id}.codw");
        save_artifacts(&self.dir.join(&snap), g, dendro, index)?;
        let (new_wal, _torn) = WalWriter::open(&self.dir.join(&walname), self.dcfg.fsync)?;
        let manifest = Manifest {
            seed: self.inner.himor_seed(),
            events_covered: self.events_total,
            wal_offset: new_wal.offset(),
            snapshot: snap,
            wal: walname,
        };
        failpoint::hit(Site::ManifestSwap, None);
        manifest.store(&self.dir)?;
        // The swap committed: the new triple is authoritative.
        self.wal = new_wal;
        self.manifest = manifest;
        self.checkpoint_id = id;
        self.gc();
        Ok(())
    }

    /// Removes `snap-*.codx` / `wal-*.codw` files the live manifest does
    /// not reference. Best-effort: a file that cannot be removed is left
    /// for the next sweep.
    fn gc(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let is_artifact = (name.starts_with("snap-") && name.ends_with(".codx"))
                || (name.starts_with("wal-") && name.ends_with(".codw"));
            if is_artifact && name != self.manifest.snapshot && name != self.manifest.wal {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    /// The directory this engine persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The live manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Total mutation events ever applied (checkpointed + WAL).
    pub fn events_total(&self) -> u64 {
        self.events_total
    }

    /// Records in the live WAL (events since the last checkpoint).
    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }

    /// Read access to the wrapped engine.
    pub fn engine(&self) -> &DynamicCod {
        &self.inner
    }

    /// Passthrough: toggle the inner engine's repair self-verification
    /// (off is the production streaming configuration; see
    /// [`DynamicCod::set_repair_verification`]).
    pub fn set_repair_verification(&mut self, on: bool) {
        self.inner.set_repair_verification(on);
    }

    /// Answers a COD query on the current graph (flushing first).
    pub fn query<R: Rng>(
        &mut self,
        q: cod_graph::NodeId,
        attr: cod_graph::AttrId,
        rng: &mut R,
    ) -> CodResult<Option<CodAnswer>> {
        self.inner.query(q, attr, rng)
    }

    /// Flushes pending mutations through the repair pipeline.
    pub fn flush(&mut self) -> CodResult<MutationFlushReport> {
        let mut rng = SmallRng::seed_from_u64(self.inner.himor_seed());
        self.inner.flush(&mut rng)
    }

    /// A point-in-time snapshot of the engine + durability telemetry.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.metrics_snapshot()
    }

    /// The current artifacts as one canonical CODX v3 byte image — the
    /// bit-identity witness the durability tests compare across
    /// crash/recover/thread-count variations.
    pub fn snapshot_bytes(&mut self) -> CodResult<Vec<u8>> {
        let (g, dendro, index) = self.inner.artifacts()?;
        serialize_artifacts(g, dendro, index)
    }
}

/// `snap-N.codx` → `N`; unknown shapes restart the counter high enough to
/// never collide (0 is only produced by `create`).
fn parse_checkpoint_id(snapshot: &str) -> u64 {
    snapshot
        .strip_prefix("snap-")
        .and_then(|s| s.strip_suffix(".codx"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::{AttrInterner, AttrTable, GraphBuilder};
    use cod_influence::Model;

    fn star_graph() -> AttributedGraph {
        let mut b = GraphBuilder::new(8);
        for v in 1..6 {
            b.add_edge(0, v);
        }
        b.add_edge(5, 6);
        b.add_edge(6, 7);
        let attrs = AttrTable::from_lists(vec![vec![0]; 8]);
        let mut interner = AttrInterner::new();
        interner.intern("A");
        AttributedGraph::from_parts(b.build(), attrs, interner)
    }

    fn seeded_cfg() -> CodConfig {
        CodConfig {
            k: 2,
            theta: 60,
            model: Model::WeightedCascade,
            parallelism: cod_influence::Parallelism::Threads(1),
            ..CodConfig::default()
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("cod_rec_{tag}_{}_{seq}", std::process::id()))
    }

    #[test]
    fn manifest_round_trip_and_corruption() {
        let m = Manifest {
            seed: 42,
            events_covered: 17,
            wal_offset: 8,
            snapshot: "snap-3.codx".into(),
            wal: "wal-3.codw".into(),
        };
        let bytes = m.to_bytes();
        assert_eq!(Manifest::from_bytes(&bytes).unwrap(), m);
        // Any single-bit flip is detected.
        for byte in 0..bytes.len() {
            let mut b = bytes.clone();
            b[byte] ^= 0x01;
            assert!(
                Manifest::from_bytes(&b).is_err(),
                "flip at byte {byte} must be detected"
            );
        }
        // Truncations never panic.
        for keep in 0..bytes.len() {
            assert!(Manifest::from_bytes(&bytes[..keep]).is_err());
        }
    }

    #[test]
    fn manifest_rejects_path_traversal_names() {
        let m = Manifest {
            seed: 1,
            events_covered: 0,
            wal_offset: 8,
            snapshot: "../evil.codx".into(),
            wal: "wal-0.codw".into(),
        };
        let err = Manifest::from_bytes(&m.to_bytes()).unwrap_err();
        assert!(matches!(err, CodError::IndexCorrupt(_)), "{err}");
    }

    #[test]
    fn create_apply_reopen_is_bit_identical() {
        let dir = tmp_dir("roundtrip");
        let g = star_graph();
        let mut d =
            DurableCod::create(&dir, &g, seeded_cfg(), 77, DurabilityConfig::default()).unwrap();
        assert!(DurableCod::exists(&dir));
        d.apply(&Mutation::InsertEdge { u: 1, v: 2 }).unwrap();
        d.apply(&Mutation::RemoveEdge { u: 5, v: 6 }).unwrap();
        d.apply(&Mutation::SetAttrs {
            node: 3,
            attrs: vec![0],
        })
        .unwrap();
        let live = d.snapshot_bytes().unwrap();
        assert_eq!(d.events_total(), 3);
        drop(d);

        let (mut back, report) =
            DurableCod::open(&dir, seeded_cfg(), DurabilityConfig::default()).unwrap();
        assert_eq!(report.replayed, 3);
        assert_eq!(report.checkpoint_events, 0);
        assert!(report.torn_tail.is_none());
        assert_eq!(back.events_total(), 3);
        assert_eq!(back.snapshot_bytes().unwrap(), live, "recovered ≡ live");
        let snap = back.metrics_snapshot();
        assert_eq!(snap.recovery_replayed_records, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_rotates_and_gcs() {
        let dir = tmp_dir("rotate");
        let g = star_graph();
        let mut d =
            DurableCod::create(&dir, &g, seeded_cfg(), 5, DurabilityConfig::default()).unwrap();
        d.apply(&Mutation::InsertEdge { u: 2, v: 4 }).unwrap();
        assert_eq!(d.wal_records(), 1);
        d.checkpoint().unwrap();
        assert_eq!(d.wal_records(), 0, "fresh WAL after checkpoint");
        assert_eq!(d.manifest().events_covered, 1);
        assert_eq!(d.manifest().snapshot, "snap-1.codx");
        // Superseded checkpoint-0 files are gone.
        assert!(!dir.join("snap-0.codx").exists());
        assert!(!dir.join("wal-0.codw").exists());
        // Reopen sees the checkpointed state with nothing to replay.
        let live = d.snapshot_bytes().unwrap();
        drop(d);
        let (mut back, report) =
            DurableCod::open(&dir, seeded_cfg(), DurabilityConfig::default()).unwrap();
        assert_eq!(report.replayed, 0);
        assert_eq!(report.checkpoint_events, 1);
        assert_eq!(back.snapshot_bytes().unwrap(), live);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn event_threshold_triggers_automatic_checkpoint() {
        let dir = tmp_dir("auto");
        let g = star_graph();
        let dcfg = DurabilityConfig {
            checkpoint_every_events: 2,
            ..DurabilityConfig::default()
        };
        let mut d = DurableCod::create(&dir, &g, seeded_cfg(), 5, dcfg).unwrap();
        d.apply(&Mutation::InsertEdge { u: 2, v: 4 }).unwrap();
        assert_eq!(d.manifest().events_covered, 0);
        d.apply(&Mutation::InsertEdge { u: 3, v: 7 }).unwrap();
        assert_eq!(d.manifest().events_covered, 2, "second event checkpoints");
        assert_eq!(d.wal_records(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejected_event_is_rolled_back_from_the_wal() {
        let dir = tmp_dir("rollback");
        let g = star_graph();
        let mut d =
            DurableCod::create(&dir, &g, seeded_cfg(), 5, DurabilityConfig::default()).unwrap();
        let err = d
            .apply(&Mutation::SetAttrs {
                node: 999,
                attrs: vec![0],
            })
            .unwrap_err();
        assert!(matches!(err, CodError::InvalidQuery(_)), "{err}");
        assert_eq!(d.wal_records(), 0, "rejected event left no WAL record");
        assert_eq!(d.events_total(), 0);
        // The directory still recovers cleanly.
        drop(d);
        let (_, report) =
            DurableCod::open(&dir, seeded_cfg(), DurabilityConfig::default()).unwrap();
        assert_eq!(report.replayed, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_to_clobber_existing_state() {
        let dir = tmp_dir("clobber");
        let g = star_graph();
        let d = DurableCod::create(&dir, &g, seeded_cfg(), 5, DurabilityConfig::default()).unwrap();
        drop(d);
        let err = match DurableCod::create(&dir, &g, seeded_cfg(), 5, DurabilityConfig::default()) {
            Err(e) => e,
            Ok(_) => panic!("re-create over live state must fail"),
        };
        assert!(matches!(err, CodError::InvalidQuery(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serial_parallelism_is_rejected() {
        let dir = tmp_dir("serial");
        let g = star_graph();
        let cfg = CodConfig {
            parallelism: cod_influence::Parallelism::Serial,
            ..seeded_cfg()
        };
        assert!(DurableCod::create(&dir, &g, cfg, 5, DurabilityConfig::default()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
