//! The typed error taxonomy for the COD query engine.
//!
//! Every externally reachable failure — bad query parameters, malformed
//! graph data, a corrupt persisted index, plain I/O trouble, or an
//! exhausted sampling budget — maps to one [`CodError`] variant, so callers
//! (the `cod` CLI, servers embedding the crate) can match on the *kind* of
//! failure and react: reject the request, rebuild the index, or surface a
//! one-line diagnostic. Internal invariants keep using `assert!`/
//! `unreachable!`; anything a user can trigger returns `Err` instead of
//! panicking (see `DESIGN.md`).

use cod_hierarchy::DendrogramError;

/// Convenience alias used across the query surface.
pub type CodResult<T> = Result<T, CodError>;

/// Every way a COD operation can fail.
#[derive(Debug)]
pub enum CodError {
    /// The query parameters fail validation (node id out of range, unknown
    /// attribute, `k == 0`, `theta == 0`, …). Raised at the API boundary
    /// before any work happens.
    InvalidQuery(String),
    /// Input graph or hierarchy data is structurally malformed.
    GraphFormat(String),
    /// A persisted index failed validation: bad magic, unsupported or
    /// inconsistent header fields, checksum mismatch, truncation — anything
    /// that means the bytes cannot be trusted.
    IndexCorrupt(String),
    /// An underlying I/O operation failed (file missing, permissions,
    /// disk full, …).
    Io(std::io::Error),
    /// The configured sample budget is too small to draw even one RR
    /// sample, so no best-effort answer exists.
    BudgetExhausted {
        /// The configured total-sample budget.
        budget: usize,
        /// Samples a full evaluation of this query draws: `θ` per node of
        /// the chain universe (the chain-wide total, not the per-node θ).
        required: usize,
    },
    /// The query's deadline (or another [`QueryLimits`] cap) expired and no
    /// rung of the degradation ladder could produce even a best-effort
    /// answer in the time left.
    ///
    /// [`QueryLimits`]: crate::pipeline::QueryLimits
    DeadlineExceeded,
    /// The engine's in-flight admission cap was reached and this query was
    /// shed instead of queued. Retriable: admitted work keeps draining, so
    /// resubmitting after a backoff will eventually be admitted.
    Overloaded {
        /// The `max_inflight` cap that was hit.
        max_inflight: usize,
        /// How long the engine suggests waiting before a retry, derived
        /// from how persistently the cap has been saturated (consecutive
        /// sheds double it, a successful admission resets it). HTTP
        /// callers surface it as `Retry-After`; CLI callers print it.
        retry_after: std::time::Duration,
    },
    /// A panic escaped a query worker or a build closure and was contained
    /// at the engine boundary. The engine itself stays serviceable; the
    /// payload is the panic message.
    Internal(String),
    /// A mutation replay (`cod mutate --log`, WAL recovery) stopped partway:
    /// `applied` events landed before 1-based event `failed_event` raised
    /// `cause`. Everything before the failure is applied and durable, so an
    /// operator can fix the offending record and resume from it.
    ReplayHalted {
        /// Events successfully applied before the failure.
        applied: usize,
        /// 1-based index of the event that failed.
        failed_event: usize,
        /// The underlying failure.
        cause: Box<CodError>,
    },
}

impl CodError {
    /// Whether resubmitting the same request later can reasonably succeed
    /// without any change on the caller's side. Only load shedding
    /// qualifies: every other variant reflects the request or the data.
    pub fn is_retriable(&self) -> bool {
        matches!(self, CodError::Overloaded { .. })
    }
}

impl std::fmt::Display for CodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            CodError::GraphFormat(m) => write!(f, "malformed graph data: {m}"),
            CodError::IndexCorrupt(m) => write!(f, "corrupt index: {m}"),
            CodError::Io(e) => write!(f, "i/o error: {e}"),
            CodError::BudgetExhausted { budget, required } => write!(
                f,
                "sample budget exhausted: {budget} samples allowed but the query needs at least {required}"
            ),
            CodError::DeadlineExceeded => write!(
                f,
                "deadline exceeded: no degradation-ladder rung produced an answer in time"
            ),
            CodError::Overloaded {
                max_inflight,
                retry_after,
            } => write!(
                f,
                "engine overloaded: {max_inflight} queries already in flight \
                 (retriable; suggest waiting {}ms)",
                retry_after.as_millis()
            ),
            CodError::Internal(m) => write!(f, "internal error: {m}"),
            CodError::ReplayHalted {
                applied,
                failed_event,
                cause,
            } => write!(
                f,
                "replay halted at event {failed_event}: {applied} event(s) applied; {cause}"
            ),
        }
    }
}

impl std::error::Error for CodError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodError {
    fn from(e: std::io::Error) -> Self {
        CodError::Io(e)
    }
}

impl From<DendrogramError> for CodError {
    fn from(e: DendrogramError) -> Self {
        CodError::GraphFormat(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_line_and_prefixed() {
        let cases: Vec<CodError> = vec![
            CodError::InvalidQuery("node 99 out of range".into()),
            CodError::GraphFormat("dangling edge".into()),
            CodError::IndexCorrupt("section crc mismatch".into()),
            CodError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone")),
            CodError::BudgetExhausted {
                budget: 0,
                required: 10,
            },
            CodError::DeadlineExceeded,
            CodError::Overloaded {
                max_inflight: 4,
                retry_after: std::time::Duration::from_millis(25),
            },
            CodError::Internal("worker panicked: boom".into()),
            CodError::ReplayHalted {
                applied: 3,
                failed_event: 4,
                cause: Box::new(CodError::InvalidQuery("node 99 out of range".into())),
            },
        ];
        for e in cases {
            let s = e.to_string();
            assert!(!s.contains('\n'), "{s:?}");
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn only_overload_is_retriable() {
        assert!(CodError::Overloaded {
            max_inflight: 1,
            retry_after: std::time::Duration::from_millis(25),
        }
        .is_retriable());
        assert!(!CodError::DeadlineExceeded.is_retriable());
        assert!(!CodError::Internal("x".into()).is_retriable());
        assert!(!CodError::InvalidQuery("x".into()).is_retriable());
        assert!(!CodError::ReplayHalted {
            applied: 0,
            failed_event: 1,
            cause: Box::new(CodError::DeadlineExceeded),
        }
        .is_retriable());
    }

    #[test]
    fn dendrogram_errors_convert_to_graph_format() {
        let e: CodError = DendrogramError::NoLeaves.into();
        assert!(matches!(e, CodError::GraphFormat(_)));
        assert!(e.to_string().contains("at least one leaf"));
    }
}
