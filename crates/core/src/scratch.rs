//! Reusable per-query workspaces.
//!
//! One compressed COD evaluation allocates sampler stamp arrays, HFS
//! queues, per-level count buckets and top-k candidate vectors — all of
//! which have the same shape on the next query. [`QueryScratch`] owns the
//! lot so a serving layer can run thousands of queries with amortized-zero
//! allocation, the same trick [`cod_influence::RrSampler`] already plays
//! with its stamp arrays, generalized to the whole pipeline.
//!
//! **Determinism invariant:** scratch reuse must never change an answer.
//! Every structure here is either fully reset per query (queues, candidate
//! vectors, count maps via `clear()`) or epoch-stamped
//! ([`cod_influence::SamplerScratch`]). Hash-map *iteration order* can
//! differ between a recycled map and a fresh one (retained capacity), so
//! the evaluation stages only ever fold map contents through commutative
//! addition or sort materialized keys — both order-independent. The
//! seed-replay suite asserts the resulting bit-identity.

use cod_graph::{FxHashMap, NodeId};
use cod_influence::SamplerScratch;

use crate::telemetry::{QueryTrace, TraceSink};

/// Per-RR scratch for the HFS stage, reused across samples.
#[derive(Default, Debug)]
pub(crate) struct HfsScratch {
    pub(crate) queues: Vec<Vec<u32>>,
    pub(crate) explored: Vec<bool>,
    pub(crate) level_cache: Vec<usize>,
    /// Dense per-query `node → chain level` table for pooled folds
    /// (`u32::MAX` = prune): one `level_of` sweep per query instead of one
    /// per RR-graph node, which is what makes a warm fold cheap.
    pub(crate) levels: Vec<u32>,
}

impl HfsScratch {
    pub(crate) fn new(m: usize) -> Self {
        Self {
            queues: vec![Vec::new(); m],
            explored: Vec::new(),
            level_cache: Vec::new(),
            levels: Vec::new(),
        }
    }

    /// Readies the scratch for a chain of `m` levels. Queues are already
    /// drained by `hfs_record`; only the level count needs adjusting.
    pub(crate) fn prepare(&mut self, m: usize) {
        debug_assert!(self.queues.iter().all(Vec::is_empty));
        self.queues.truncate(m);
        self.queues.resize_with(m, Vec::new);
    }
}

/// Scratch for the incremental top-k scan (stage 2 of Algorithm 1).
#[derive(Default, Debug)]
pub(crate) struct TopKScratch {
    pub(crate) tau: FxHashMap<NodeId, u32>,
    pub(crate) pool: Vec<NodeId>,
    pub(crate) candidates: Vec<NodeId>,
    pub(crate) taus: Vec<u32>,
}

impl TopKScratch {
    pub(crate) fn prepare(&mut self) {
        self.tau.clear();
        self.pool.clear();
        self.candidates.clear();
        self.taus.clear();
    }
}

/// A reusable workspace for one in-flight COD query.
///
/// Holds every transient buffer the compressed evaluation path needs:
/// RR-sampler stamps, HFS queues, per-level buckets and top-k vectors.
/// Create one per worker (it is `Send` but deliberately not shared), hand
/// it to `compressed_cod_with` via `Some(&mut ws)`, and reuse it for the
/// next query. Passing a recycled workspace never changes an answer; it
/// only removes allocations.
#[derive(Default, Debug)]
pub struct QueryScratch {
    pub(crate) sampler: SamplerScratch,
    pub(crate) hfs: HfsScratch,
    pub(crate) buckets: Vec<FxHashMap<NodeId, u32>>,
    pub(crate) topk: TopKScratch,
    /// Telemetry accumulator for the evaluation running in this workspace.
    /// Evaluation *adds to* it; owners that want per-query numbers reset it
    /// beforehand (see [`TraceSink::reset`]) and take the trace afterwards.
    pub(crate) sink: TraceSink,
}

impl QueryScratch {
    /// A fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears accumulated telemetry and arms (`timing: true`) or disarms
    /// the phase timers for the next evaluation run in this workspace.
    pub fn reset_telemetry(&mut self, timing: bool) {
        self.sink.reset(timing);
    }

    /// Returns the telemetry accumulated since the last reset and clears
    /// the sink (retaining its timing mode).
    pub fn take_trace(&mut self) -> QueryTrace {
        self.sink.take()
    }

    /// Clears and resizes the bucket vector for an `m`-level chain,
    /// retaining map capacity from earlier queries.
    pub(crate) fn prepare_buckets(&mut self, m: usize) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.buckets.truncate(m);
        self.buckets.resize_with(m, FxHashMap::default);
        self.hfs.prepare(m);
        self.topk.prepare();
    }

    /// Approximate bytes retained by the workspace (sampler stamps plus
    /// vector capacities; map capacity is not observable and excluded).
    pub fn memory_bytes(&self) -> usize {
        let hfs = self.hfs.queues.iter().map(Vec::capacity).sum::<usize>()
            * std::mem::size_of::<u32>()
            + self.hfs.explored.capacity()
            + self.hfs.level_cache.capacity() * std::mem::size_of::<usize>()
            + self.hfs.levels.capacity() * std::mem::size_of::<u32>();
        let topk = (self.topk.pool.capacity() + self.topk.candidates.capacity())
            * std::mem::size_of::<NodeId>()
            + self.topk.taus.capacity() * std::mem::size_of::<u32>();
        self.sampler.memory_bytes() + hfs + topk
    }
}
