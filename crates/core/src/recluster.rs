//! Attribute-aware edge weighting and hierarchy (re)construction (§IV).
//!
//! The transform to the weighted graph `g_ℓ` follows the paper's CODR
//! description ("placing additional weights for query attributed edges"):
//! an edge whose endpoints both carry the query attribute gets weight
//! `1 + β`, every other edge weight `1`. The transform scheme is declared
//! orthogonal to the contribution (§V-A); `β` defaults to 1 and is swept in
//! the ablation benches.

use cod_graph::subgraph::Subgraph;
use cod_graph::{AttrId, AttributedGraph, Csr, NodeId};
use cod_hierarchy::{cluster_governed, cluster_unweighted, Dendrogram, Linkage};
use cod_influence::CancelToken;

use crate::failpoint;

/// Merges between governance polls of a governed (re)clustering. The first
/// merge also polls, so short clusterings still observe an armed token.
const LINKAGE_CHECK_EVERY: usize = 256;

/// The per-merge callback a governed clustering hands to
/// [`cluster_governed`]: every [`LINKAGE_CHECK_EVERY`] merges (and on the
/// first) it hits the `LinkageRound` failpoint and polls the token.
fn linkage_keep_going(cancel: Option<&CancelToken>) -> impl FnMut(usize) -> bool + '_ {
    move |done| {
        if done != 1 && done % LINKAGE_CHECK_EVERY != 0 {
            return true;
        }
        failpoint::hit(failpoint::Site::LinkageRound, cancel);
        match cancel {
            Some(tok) => !tok.should_stop(),
            None => true,
        }
    }
}

/// Default additional weight `β` for query-attributed edges.
pub const DEFAULT_BETA: f64 = 1.0;

/// How edge weights of `g_ℓ` are derived from attributes. The paper's CODR
/// only requires "additional weights for query attributed edges" and cites
/// more elaborate attributed-clustering schemes \[25, 26\] as orthogonal;
/// all three flavours below are accepted everywhere a `β` is.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightScheme {
    /// `w = 1 + β` when both endpoints carry the query attribute, else 1 —
    /// the default transform used throughout the experiments.
    QueryBoost(f64),
    /// `w = 1 + β·J(A(u), A(v))` with an extra `+β` when both endpoints
    /// carry the query attribute: blends overall attribute similarity
    /// (Jaccard) with query relevance, in the spirit of \[26\].
    JaccardBlend(f64),
    /// `w = (1 + β·[query-attributed]) / sqrt(deg(u)·deg(v))`:
    /// degree-normalized boost, damping hub domination (§IV's skew
    /// discussion).
    DegreeNormalized(f64),
}

impl WeightScheme {
    /// Weight of the edge `{u, v}`.
    pub fn weight(&self, g: &AttributedGraph, u: NodeId, v: NodeId, attr: AttrId) -> f64 {
        let attributed = g.edge_is_attributed(u, v, attr);
        match *self {
            WeightScheme::QueryBoost(beta) => {
                if attributed {
                    1.0 + beta
                } else {
                    1.0
                }
            }
            WeightScheme::JaccardBlend(beta) => {
                let a = g.node_attrs(u);
                let b = g.node_attrs(v);
                let inter = a.iter().filter(|x| b.binary_search(x).is_ok()).count();
                let union = a.len() + b.len() - inter;
                let j = if union == 0 {
                    0.0
                } else {
                    inter as f64 / union as f64
                };
                1.0 + beta * j + if attributed { beta } else { 0.0 }
            }
            WeightScheme::DegreeNormalized(beta) => {
                let boost = if attributed { 1.0 + beta } else { 1.0 };
                boost / ((g.degree(u) as f64) * (g.degree(v) as f64)).sqrt()
            }
        }
    }
}

/// Per-half-edge weights of `g_ℓ` for query attribute `attr` (the default
/// [`WeightScheme::QueryBoost`] transform).
pub fn attribute_weights(g: &AttributedGraph, attr: AttrId, beta: f64) -> Vec<f64> {
    attribute_weights_with(g, attr, WeightScheme::QueryBoost(beta))
}

/// Per-half-edge weights of `g_ℓ` under an arbitrary [`WeightScheme`].
pub fn attribute_weights_with(g: &AttributedGraph, attr: AttrId, scheme: WeightScheme) -> Vec<f64> {
    let csr = g.csr();
    let mut w = vec![1.0; csr.num_half_edges()];
    for u in 0..g.num_nodes() as NodeId {
        for (idx, &v) in csr.neighbor_range(u).zip(csr.neighbors(u)) {
            w[idx] = scheme.weight(g, u, v, attr);
        }
    }
    w
}

/// The non-attributed hierarchy `T` (CODU's hierarchy, LORE's reference).
pub fn build_hierarchy(g: &Csr, linkage: Linkage) -> Dendrogram {
    Dendrogram::from_merges(g.num_nodes(), &cluster_unweighted(g, linkage))
}

/// CODR's global reclustering: hierarchical clustering of `g_ℓ` from
/// scratch.
pub fn global_recluster(
    g: &AttributedGraph,
    attr: AttrId,
    beta: f64,
    linkage: Linkage,
) -> Dendrogram {
    match global_recluster_governed(g, attr, beta, linkage, None) {
        Some(d) => d,
        None => unreachable!("an ungoverned reclustering has no token to cancel it"),
    }
}

/// [`global_recluster`] under cooperative governance: polls `cancel` every
/// `LINKAGE_CHECK_EVERY` merges and returns `None` when it fired — a
/// half-clustered hierarchy is never observable. The poll cannot change the
/// merge order, so `cancel: None` (or a token that never fires) reproduces
/// [`global_recluster`] exactly.
pub fn global_recluster_governed(
    g: &AttributedGraph,
    attr: AttrId,
    beta: f64,
    linkage: Linkage,
    cancel: Option<&CancelToken>,
) -> Option<Dendrogram> {
    let w = attribute_weights(g, attr, beta);
    let merges = cluster_governed(g.csr(), &w, linkage, linkage_keep_going(cancel))?;
    Some(Dendrogram::from_merges(g.num_nodes(), &merges))
}

/// LORE's local reclustering: extracts the subgraph induced by `members`
/// (the chosen `C_ℓ`) and clusters it with attribute-aware weights
/// (Algorithm 2, lines 2–3). Returns the subgraph (with its node mapping)
/// and the dendrogram over *local* ids.
pub fn local_recluster(
    g: &AttributedGraph,
    members: &[NodeId],
    attr: AttrId,
    beta: f64,
    linkage: Linkage,
) -> (Subgraph, Dendrogram) {
    match local_recluster_governed(g, members, attr, beta, linkage, None) {
        Some(out) => out,
        None => unreachable!("an ungoverned reclustering has no token to cancel it"),
    }
}

/// [`local_recluster`] under cooperative governance (see
/// [`global_recluster_governed`] for the contract).
pub fn local_recluster_governed(
    g: &AttributedGraph,
    members: &[NodeId],
    attr: AttrId,
    beta: f64,
    linkage: Linkage,
    cancel: Option<&CancelToken>,
) -> Option<(Subgraph, Dendrogram)> {
    let sub = Subgraph::induced(g.csr(), members);
    let mut w = vec![1.0; sub.csr.num_half_edges()];
    for lu in 0..sub.len() as NodeId {
        let gu = sub.parent(lu);
        if !g.has_attr(gu, attr) {
            continue;
        }
        for (idx, &lv) in sub.csr.neighbor_range(lu).zip(sub.csr.neighbors(lu)) {
            if g.has_attr(sub.parent(lv), attr) {
                w[idx] = 1.0 + beta;
            }
        }
    }
    let merges = cluster_governed(&sub.csr, &w, linkage, linkage_keep_going(cancel))?;
    let dendro = Dendrogram::from_merges(sub.len(), &merges);
    Some((sub, dendro))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::{AttrInterner, AttrTable, GraphBuilder};

    /// Path 0-1-2-3 where {0,1} carry attribute 0.
    fn attributed_path() -> AttributedGraph {
        let mut b = GraphBuilder::new(4);
        for v in 0..3 {
            b.add_edge(v, v + 1);
        }
        let attrs = AttrTable::from_lists(vec![vec![0], vec![0], vec![], vec![]]);
        AttributedGraph::from_parts(b.build(), attrs, AttrInterner::new())
    }

    #[test]
    fn attributed_edges_get_boosted() {
        let g = attributed_path();
        let w = attribute_weights(&g, 0, 1.0);
        // Edge (0,1) is attributed: both half-edges weigh 2; others 1.
        let mut boosted = 0;
        for x in &w {
            if (*x - 2.0).abs() < 1e-12 {
                boosted += 1;
            } else {
                assert!((*x - 1.0).abs() < 1e-12);
            }
        }
        assert_eq!(boosted, 2);
    }

    #[test]
    fn global_recluster_prefers_attributed_edge() {
        // Path 0-1-2: unweighted ties; with attribute on {1,2} the first
        // merge must be {1,2}.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let attrs = AttrTable::from_lists(vec![vec![], vec![0], vec![0]]);
        let g = AttributedGraph::from_parts(b.build(), attrs, AttrInterner::new());
        let d = global_recluster(&g, 0, 1.0, Linkage::Average);
        // First merge vertex (id 3) must be {1,2}.
        assert_eq!(d.members_sorted(3), vec![1, 2]);
    }

    #[test]
    fn local_recluster_stays_inside_members() {
        let g = attributed_path();
        let (sub, d) = local_recluster(&g, &[1, 2, 3], 0, 1.0, Linkage::Average);
        assert_eq!(sub.len(), 3);
        assert_eq!(d.num_leaves(), 3);
        assert_eq!(d.size(d.root()), 3);
    }

    #[test]
    fn jaccard_blend_rewards_shared_attributes() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let attrs = AttrTable::from_lists(vec![vec![0, 1], vec![0, 1], vec![2]]);
        let g = AttributedGraph::from_parts(b.build(), attrs, AttrInterner::new());
        let s = WeightScheme::JaccardBlend(2.0);
        // (0,1): full Jaccard (1.0) and query-attributed for attr 0.
        let w01 = s.weight(&g, 0, 1, 0);
        assert!((w01 - (1.0 + 2.0 + 2.0)).abs() < 1e-12);
        // (1,2): no shared attributes.
        let w12 = s.weight(&g, 1, 2, 0);
        assert!((w12 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degree_normalized_damps_hubs() {
        let mut b = GraphBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v);
        }
        b.add_edge(1, 2);
        let g = AttributedGraph::unattributed(b.build());
        let s = WeightScheme::DegreeNormalized(0.0);
        // Hub edge (0,1): deg 4·2; peripheral edge (1,2): deg 2·2.
        assert!(s.weight(&g, 0, 1, 0) < s.weight(&g, 1, 2, 0));
    }

    #[test]
    fn query_boost_matches_legacy_weights() {
        let g = attributed_path();
        let a = attribute_weights(&g, 0, 1.5);
        let b = attribute_weights_with(&g, 0, WeightScheme::QueryBoost(1.5));
        assert_eq!(a, b);
    }

    #[test]
    fn build_hierarchy_covers_graph() {
        let g = attributed_path();
        let d = build_hierarchy(g.csr(), Linkage::Average);
        assert_eq!(d.size(d.root()), 4);
    }
}
