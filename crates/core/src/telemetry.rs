//! Query observability: per-phase timers, event counters, per-query traces
//! and the engine-level metrics registry.
//!
//! The paper's cost claims are *per-phase* claims — compressed evaluation
//! replaces per-community sampling with one shared `Θ·ω` pass, LORE
//! replaces a global recluster with a local one, HIMOR replaces evaluation
//! with a lookup. This module makes each of those costs visible at query
//! time without disturbing them:
//!
//! * [`Counter`] — the closed set of event counters (RR graphs sampled, RR
//!   edges traversed, HFS visits/prunes, top-k ops, recluster builds, HIMOR
//!   merges, cache hits/misses, index hits);
//! * [`Phase`] — the closed set of query phases (plan, recluster, HIMOR
//!   build, sample generation + HFS, incremental top-k);
//! * [`TraceSink`] — a plain-integer accumulator threaded through one
//!   query's evaluation (it lives inside `QueryScratch`, so the hot path
//!   bumps local `u64`s, never shared atomics);
//! * [`QueryTrace`] — the finalized per-query snapshot surfaced in
//!   [`crate::pipeline::CodAnswer::trace`];
//! * [`MetricsRegistry`] — engine-lifetime atomic aggregates (counter
//!   totals, per-phase nanos, a query-latency histogram) with
//!   Prometheus-style text exposition.
//!
//! # Determinism and overhead contract
//!
//! Telemetry must never change an answer. Counters touch no RNG and are
//! collected unconditionally (plain `u64` adds at per-sample granularity —
//! noise next to the sampling work they count). Phase *timers* call
//! [`Instant::now`] and are gated by [`crate::CodConfig::trace`]; with
//! tracing off a query performs zero clock reads on the evaluation path.
//! Either way the RNG draw order is untouched, which the seed-replay suite
//! (`tests/telemetry.rs`) asserts bit-for-bit at 1/2/8 threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Event counters, one per cost term the paper's analysis names.
///
/// See `DESIGN.md` §10 for the exact semantics of each counter and how it
/// maps onto the paper's `Θ·ω` and `|H(q)|` terms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// RR graphs actually generated (sources drawn inside the chain).
    RrGraphsSampled,
    /// Activated edges recorded across all generated RR graphs — the `ω`
    /// factor of the paper's `O(Θ·ω)` sampling cost.
    RrEdgesTraversed,
    /// Nodes recorded into a level bucket by hierarchical-first search.
    HfsNodesVisited,
    /// RR nodes pruned by HFS: reachable in the RR graph but outside every
    /// chain community (plus sources drawn outside the chain).
    HfsNodesPruned,
    /// Candidate evaluations in the incremental top-k scan
    /// (`|pool ∪ bucket|` summed over levels — the `|H(q)|`-driven term).
    TopKHeapOps,
    /// Reclustered hierarchies built (global `T_ℓ` + local `C_ℓ`).
    ReclusterBuilds,
    /// HIMOR index constructions.
    HimorBuilds,
    /// Bottom-up bucket merges during HIMOR construction (one per internal
    /// vertex of `T`).
    HimorBucketMerges,
    /// Queries answered straight from the HIMOR index (Algorithm 3 lines
    /// 1–2; no sampling).
    HimorIndexHits,
    /// Recluster-cache hits observed by queries.
    CacheHits,
    /// Recluster-cache misses observed by queries.
    CacheMisses,
    /// Shared RR-pool cache lookups that found a pool for the query's
    /// `(attr, universe)` key.
    PoolHits,
    /// Shared RR-pool cache lookups that had to create a fresh pool.
    PoolMisses,
    /// Incremental pool growths (a query needed θ′ > θ and topped the
    /// shared pool up in place).
    PoolTopups,
    /// Bytes of pooled RR graphs evicted by the byte-budget LRU, charged
    /// to the query whose insertion forced the eviction.
    PoolEvictedBytes,
}

/// All counters, in `repr` order (the order snapshots iterate in).
pub const COUNTERS: [Counter; NUM_COUNTERS] = [
    Counter::RrGraphsSampled,
    Counter::RrEdgesTraversed,
    Counter::HfsNodesVisited,
    Counter::HfsNodesPruned,
    Counter::TopKHeapOps,
    Counter::ReclusterBuilds,
    Counter::HimorBuilds,
    Counter::HimorBucketMerges,
    Counter::HimorIndexHits,
    Counter::CacheHits,
    Counter::CacheMisses,
    Counter::PoolHits,
    Counter::PoolMisses,
    Counter::PoolTopups,
    Counter::PoolEvictedBytes,
];

/// Number of distinct [`Counter`]s.
pub const NUM_COUNTERS: usize = 15;

impl Counter {
    /// Stable snake_case name (used by the Prometheus exposition and the
    /// bench-report JSON schema — renames break `BENCH_BASELINE.json`).
    pub fn name(self) -> &'static str {
        match self {
            Counter::RrGraphsSampled => "rr_graphs_sampled",
            Counter::RrEdgesTraversed => "rr_edges_traversed",
            Counter::HfsNodesVisited => "hfs_nodes_visited",
            Counter::HfsNodesPruned => "hfs_nodes_pruned",
            Counter::TopKHeapOps => "topk_heap_ops",
            Counter::ReclusterBuilds => "recluster_builds",
            Counter::HimorBuilds => "himor_builds",
            Counter::HimorBucketMerges => "himor_bucket_merges",
            Counter::HimorIndexHits => "himor_index_hits",
            Counter::CacheHits => "recluster_cache_hits",
            Counter::CacheMisses => "recluster_cache_misses",
            Counter::PoolHits => "pool_hits",
            Counter::PoolMisses => "pool_misses",
            Counter::PoolTopups => "pool_topups",
            Counter::PoolEvictedBytes => "pool_evicted_bytes",
        }
    }

    /// One-line help text for the exposition format.
    pub fn help(self) -> &'static str {
        match self {
            Counter::RrGraphsSampled => "RR graphs generated",
            Counter::RrEdgesTraversed => "activated RR edges recorded (the omega in Theta*omega)",
            Counter::HfsNodesVisited => "RR nodes recorded into chain buckets by HFS",
            Counter::HfsNodesPruned => "RR nodes pruned by HFS as outside every chain community",
            Counter::TopKHeapOps => "candidate evaluations in the incremental top-k scan",
            Counter::ReclusterBuilds => "reclustered hierarchies built (global + local)",
            Counter::HimorBuilds => "HIMOR index constructions",
            Counter::HimorBucketMerges => "bucket merges during HIMOR construction",
            Counter::HimorIndexHits => "queries answered from the HIMOR index without sampling",
            Counter::CacheHits => "recluster-cache hits observed by queries",
            Counter::CacheMisses => "recluster-cache misses observed by queries",
            Counter::PoolHits => "shared RR-pool cache hits observed by queries",
            Counter::PoolMisses => "shared RR-pool cache misses observed by queries",
            Counter::PoolTopups => "incremental shared RR-pool growths",
            Counter::PoolEvictedBytes => "pooled RR-graph bytes evicted by the byte-budget LRU",
        }
    }
}

/// Query phases, bounding the intervals the timers measure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Sequential planning: validation, artifact lookup, LORE selection,
    /// HIMOR index probe, master-seed draw.
    Plan,
    /// Building a reclustered hierarchy on a cache miss (global `T_ℓ` or
    /// local `C_ℓ`).
    Recluster,
    /// One-time HIMOR index construction (charged to the triggering query,
    /// exactly like `Codl::new` charges its caller).
    HimorBuild,
    /// Stage 1 of Algorithm 1: shared RR sample generation + HFS.
    Sample,
    /// Stage 2 of Algorithm 1: the incremental top-k scan.
    TopK,
}

/// All phases, in `repr` order.
pub const PHASES: [Phase; NUM_PHASES] = [
    Phase::Plan,
    Phase::Recluster,
    Phase::HimorBuild,
    Phase::Sample,
    Phase::TopK,
];

/// Number of distinct [`Phase`]s.
pub const NUM_PHASES: usize = 5;

impl Phase {
    /// Stable snake_case name for the exposition format.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Plan => "plan",
            Phase::Recluster => "recluster",
            Phase::HimorBuild => "himor_build",
            Phase::Sample => "sample",
            Phase::TopK => "topk",
        }
    }
}

/// An immutable counter snapshot (one value per [`Counter`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot([u64; NUM_COUNTERS]);

impl CounterSnapshot {
    /// The value of one counter.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.0[c as usize]
    }

    /// Iterates `(counter, value)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        COUNTERS.iter().map(move |&c| (c, self.0[c as usize]))
    }

    /// Component-wise sum (used to cross-check per-query traces against
    /// registry aggregates).
    #[must_use]
    pub fn saturating_add(&self, other: &CounterSnapshot) -> CounterSnapshot {
        let mut out = *self;
        for (slot, v) in out.0.iter_mut().zip(other.0) {
            *slot = slot.saturating_add(v);
        }
        out
    }
}

/// Per-phase elapsed nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseNanos([u64; NUM_PHASES]);

impl PhaseNanos {
    /// Elapsed nanoseconds attributed to `phase`.
    #[inline]
    pub fn get(&self, p: Phase) -> u64 {
        self.0[p as usize]
    }

    /// Iterates `(phase, nanos)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        PHASES.iter().map(move |&p| (p, self.0[p as usize]))
    }

    /// Total accounted nanoseconds across all phases.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Component-wise sum (used when aggregating per-shard snapshots).
    #[must_use]
    pub fn saturating_add(&self, other: &PhaseNanos) -> PhaseNanos {
        let mut out = *self;
        for (slot, v) in out.0.iter_mut().zip(other.0) {
            *slot = slot.saturating_add(v);
        }
        out
    }
}

/// One query's finalized telemetry: counter deltas plus per-phase
/// durations. Attached to answers as [`crate::pipeline::CodAnswer::trace`]
/// when [`crate::CodConfig::trace`] is set.
///
/// Durations are only non-zero under tracing; the counters are exact either
/// way. Like the cache diagnostic, traces are excluded from `CodAnswer`
/// equality — a traced answer *is* the untraced answer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// Events this query caused (including any one-time artifact builds it
    /// triggered, which the paper also charges to the triggering query).
    pub counters: CounterSnapshot,
    /// Wall-clock nanoseconds per phase (zero when tracing is disabled).
    pub phases: PhaseNanos,
}

impl QueryTrace {
    /// Total accounted nanoseconds (the sum of the phase durations).
    pub fn total_nanos(&self) -> u64 {
        self.phases.total()
    }

    /// One-line human-readable rendering (the CLI `--trace` output).
    pub fn render_line(&self) -> String {
        let us = |p: Phase| self.phases.get(p) as f64 / 1_000.0;
        format!(
            "trace: plan {:.0}us recluster {:.0}us himor {:.0}us sample {:.0}us topk {:.0}us | \
             rr {} edges {} hfs {}+{} topk-ops {}",
            us(Phase::Plan),
            us(Phase::Recluster),
            us(Phase::HimorBuild),
            us(Phase::Sample),
            us(Phase::TopK),
            self.counters.get(Counter::RrGraphsSampled),
            self.counters.get(Counter::RrEdgesTraversed),
            self.counters.get(Counter::HfsNodesVisited),
            self.counters.get(Counter::HfsNodesPruned),
            self.counters.get(Counter::TopKHeapOps),
        )
    }
}

/// A mutable per-query accumulator of counters and phase durations.
///
/// Lives inside `QueryScratch` (one per worker), so increments on the
/// evaluation hot path are plain integer adds with no sharing. The engine
/// resets it before each evaluation and folds the result into its
/// [`MetricsRegistry`] afterwards.
#[derive(Debug, Default)]
pub struct TraceSink {
    counters: [u64; NUM_COUNTERS],
    phase_nanos: [u64; NUM_PHASES],
    /// Whether phase timers are armed ([`crate::CodConfig::trace`]). Counter
    /// collection is unconditional.
    timing: bool,
}

impl TraceSink {
    /// A fresh sink; `timing` arms the phase timers.
    pub fn new(timing: bool) -> Self {
        Self {
            timing,
            ..Self::default()
        }
    }

    /// Whether phase timers are armed.
    #[inline]
    pub fn timing(&self) -> bool {
        self.timing
    }

    /// Clears all accumulated values and (re)arms the timers.
    pub fn reset(&mut self, timing: bool) {
        self.counters = [0; NUM_COUNTERS];
        self.phase_nanos = [0; NUM_PHASES];
        self.timing = timing;
    }

    /// Adds `n` events to `counter`.
    #[inline]
    pub fn add(&mut self, counter: Counter, n: u64) {
        self.counters[counter as usize] += n;
    }

    /// Adds one event to `counter`.
    #[inline]
    pub fn incr(&mut self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Runs `f`, attributing its wall-clock time to `phase` when timing is
    /// armed. With timing off this is a direct call — no clock reads.
    #[inline]
    pub fn time<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        if !self.timing {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.phase_nanos[phase as usize] += start.elapsed().as_nanos() as u64;
        out
    }

    /// Adds pre-measured nanoseconds to `phase` (for intervals measured by
    /// the caller, e.g. around a cache-miss build).
    #[inline]
    pub fn add_nanos(&mut self, phase: Phase, nanos: u64) {
        self.phase_nanos[phase as usize] += nanos;
    }

    /// Folds a finalized trace back into this sink (used to combine a
    /// query's plan-pass sink with the trace of its evaluation, which may
    /// have run in a different workspace).
    pub fn absorb(&mut self, t: &QueryTrace) {
        for (c, v) in t.counters.iter() {
            self.add(c, v);
        }
        for (p, n) in t.phases.iter() {
            self.add_nanos(p, n);
        }
    }

    /// Folds another sink's accumulated values into this one (used to
    /// combine a query's plan-pass sink with its evaluation sink).
    pub fn merge(&mut self, other: &TraceSink) {
        for (slot, v) in self.counters.iter_mut().zip(other.counters) {
            *slot += v;
        }
        for (slot, v) in self.phase_nanos.iter_mut().zip(other.phase_nanos) {
            *slot += v;
        }
    }

    /// Snapshots the accumulated values as an immutable [`QueryTrace`].
    pub fn trace(&self) -> QueryTrace {
        QueryTrace {
            counters: CounterSnapshot(self.counters),
            phases: PhaseNanos(self.phase_nanos),
        }
    }

    /// Returns the accumulated trace and clears the sink for reuse
    /// (retaining the timing flag).
    pub fn take(&mut self) -> QueryTrace {
        let out = self.trace();
        let timing = self.timing;
        self.reset(timing);
        out
    }
}

/// Upper bucket bounds (nanoseconds) of the query-latency histogram:
/// 10µs, 100µs, 1ms, 10ms, 100ms, 1s, 10s, then +Inf.
const LATENCY_BUCKETS_NS: [u64; 7] = [
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Engine-lifetime aggregates: counter totals, per-phase nanosecond totals,
/// query outcome tallies and a latency histogram, all relaxed atomics so
/// parallel batch workers can record without coordination.
///
/// Exposed by [`crate::CodEngine::metrics`] (a [`MetricsSnapshot`]) and
/// [`crate::CodEngine::metrics_text`] (Prometheus-style exposition).
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: [AtomicU64; NUM_COUNTERS],
    phase_nanos: [AtomicU64; NUM_PHASES],
    queries: AtomicU64,
    answers_index: AtomicU64,
    answers_compressed: AtomicU64,
    answers_none: AtomicU64,
    errors: AtomicU64,
    answers_degraded: AtomicU64,
    queries_shed: AtomicU64,
    mutations_insert: AtomicU64,
    mutations_remove: AtomicU64,
    mutations_set_attrs: AtomicU64,
    repairs: AtomicU64,
    full_rebuilds: AtomicU64,
    pool_scoped_evictions: AtomicU64,
    wal_appended_records: AtomicU64,
    wal_fsyncs: AtomicU64,
    recovery_replayed_records: AtomicU64,
    recovery_nanos: AtomicU64,
    latency_buckets: [AtomicU64; LATENCY_BUCKETS_NS.len() + 1],
    latency_sum_nanos: AtomicU64,
    /// When this registry was created — the engine's birth, which the
    /// `cod_uptime_seconds` gauge measures from.
    started: Instant,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self {
            counters: Default::default(),
            phase_nanos: Default::default(),
            queries: AtomicU64::new(0),
            answers_index: AtomicU64::new(0),
            answers_compressed: AtomicU64::new(0),
            answers_none: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            answers_degraded: AtomicU64::new(0),
            queries_shed: AtomicU64::new(0),
            mutations_insert: AtomicU64::new(0),
            mutations_remove: AtomicU64::new(0),
            mutations_set_attrs: AtomicU64::new(0),
            repairs: AtomicU64::new(0),
            full_rebuilds: AtomicU64::new(0),
            pool_scoped_evictions: AtomicU64::new(0),
            wal_appended_records: AtomicU64::new(0),
            wal_fsyncs: AtomicU64::new(0),
            recovery_replayed_records: AtomicU64::new(0),
            recovery_nanos: AtomicU64::new(0),
            latency_buckets: Default::default(),
            latency_sum_nanos: AtomicU64::new(0),
            started: Instant::now(),
        }
    }
}

/// How one query concluded, for the registry's outcome tallies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Answered from the HIMOR index.
    AnswerIndex,
    /// Answered by compressed evaluation.
    AnswerCompressed,
    /// No community where the node is top-k.
    NoAnswer,
    /// The query failed validation or evaluation.
    Error,
}

impl MetricsRegistry {
    /// Folds one query's sink into the aggregates and tallies its outcome.
    /// The latency histogram only observes queries with armed timers (an
    /// untraced query has no measured duration to observe).
    pub fn record(&self, sink: &TraceSink, outcome: QueryOutcome) {
        for (slot, v) in self.counters.iter().zip(sink.counters) {
            if v != 0 {
                slot.fetch_add(v, Ordering::Relaxed);
            }
        }
        for (slot, v) in self.phase_nanos.iter().zip(sink.phase_nanos) {
            if v != 0 {
                slot.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        let tally = match outcome {
            QueryOutcome::AnswerIndex => &self.answers_index,
            QueryOutcome::AnswerCompressed => &self.answers_compressed,
            QueryOutcome::NoAnswer => &self.answers_none,
            QueryOutcome::Error => &self.errors,
        };
        tally.fetch_add(1, Ordering::Relaxed);
        if sink.timing {
            let nanos: u64 = sink.phase_nanos.iter().sum();
            let bucket = LATENCY_BUCKETS_NS
                .iter()
                .position(|&le| nanos <= le)
                .unwrap_or(LATENCY_BUCKETS_NS.len());
            self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
            self.latency_sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// Tallies one degraded answer (a query limit fired and a lower rung
    /// of the degradation ladder served the answer). Recorded *in
    /// addition to* the answer's outcome tally — a degraded answer is
    /// still an answer.
    pub fn record_degraded(&self) {
        self.answers_degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Tallies `n` queries shed by admission control. Shed queries never
    /// reach [`MetricsRegistry::record`]; this is their only trace.
    pub fn record_shed(&self, n: u64) {
        self.queries_shed.fetch_add(n, Ordering::Relaxed);
    }

    /// Tallies one applied graph mutation of the given kind.
    pub fn record_mutation(&self, kind: crate::mutation::MutationKind) {
        use crate::mutation::MutationKind::*;
        let tally = match kind {
            InsertEdge => &self.mutations_insert,
            RemoveEdge => &self.mutations_remove,
            SetAttrs => &self.mutations_set_attrs,
        };
        tally.fetch_add(1, Ordering::Relaxed);
    }

    /// Tallies one localized repair (dendrogram splice + HIMOR patch)
    /// absorbing a batch of mutations without a from-scratch rebuild.
    pub fn record_repair(&self) {
        self.repairs.fetch_add(1, Ordering::Relaxed);
    }

    /// Tallies one full from-scratch rebuild (the touched fraction crossed
    /// the rebuild threshold, the node count grew, or no artifacts existed
    /// to repair).
    pub fn record_full_rebuild(&self) {
        self.full_rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// Tallies `n` RR pools dropped by scoped (footprint-driven)
    /// invalidation — pools that survived a mutation are the difference
    /// between this and the mutation count.
    pub fn record_pool_scoped_evictions(&self, n: u64) {
        self.pool_scoped_evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Tallies one record appended to the write-ahead log.
    pub fn record_wal_append(&self) {
        self.wal_appended_records.fetch_add(1, Ordering::Relaxed);
    }

    /// Tallies one WAL fsync (policy-triggered or explicit flush).
    pub fn record_wal_fsync(&self) {
        self.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds a batch of WAL activity observed elsewhere (e.g. before this
    /// registry existed) into the counters.
    pub fn record_wal_activity(&self, appended: u64, fsyncs: u64) {
        self.wal_appended_records
            .fetch_add(appended, Ordering::Relaxed);
        self.wal_fsyncs.fetch_add(fsyncs, Ordering::Relaxed);
    }

    /// Records one completed recovery: how many WAL records were replayed
    /// and the wall-clock nanoseconds the whole recovery took.
    pub fn record_recovery(&self, replayed: u64, nanos: u64) {
        self.recovery_replayed_records
            .fetch_add(replayed, Ordering::Relaxed);
        self.recovery_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot of all aggregates (individual loads are
    /// relaxed; totals lag in-flight queries by at most one update each).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut counters = [0u64; NUM_COUNTERS];
        for (slot, a) in counters.iter_mut().zip(&self.counters) {
            *slot = load(a);
        }
        let mut phase_nanos = [0u64; NUM_PHASES];
        for (slot, a) in phase_nanos.iter_mut().zip(&self.phase_nanos) {
            *slot = load(a);
        }
        let mut latency_buckets = [0u64; LATENCY_BUCKETS_NS.len() + 1];
        for (slot, a) in latency_buckets.iter_mut().zip(&self.latency_buckets) {
            *slot = load(a);
        }
        MetricsSnapshot {
            counters: CounterSnapshot(counters),
            phase_nanos: PhaseNanos(phase_nanos),
            queries: load(&self.queries),
            answers_index: load(&self.answers_index),
            answers_compressed: load(&self.answers_compressed),
            answers_none: load(&self.answers_none),
            errors: load(&self.errors),
            answers_degraded: load(&self.answers_degraded),
            queries_shed: load(&self.queries_shed),
            mutations_insert: load(&self.mutations_insert),
            mutations_remove: load(&self.mutations_remove),
            mutations_set_attrs: load(&self.mutations_set_attrs),
            repairs: load(&self.repairs),
            full_rebuilds: load(&self.full_rebuilds),
            pool_scoped_evictions: load(&self.pool_scoped_evictions),
            wal_appended_records: load(&self.wal_appended_records),
            wal_fsyncs: load(&self.wal_fsyncs),
            recovery_replayed_records: load(&self.recovery_replayed_records),
            recovery_nanos: load(&self.recovery_nanos),
            latency_buckets,
            latency_sum_nanos: load(&self.latency_sum_nanos),
            uptime_nanos: self.started.elapsed().as_nanos() as u64,
        }
    }
}

/// The crate version baked into `cod_build_info`.
pub const BUILD_VERSION: &str = env!("CARGO_PKG_VERSION");

/// The git hash baked into `cod_build_info` — supplied by CI through the
/// `COD_GIT_HASH` env var at compile time, `"unknown"` for local builds.
pub const BUILD_GIT_HASH: &str = match option_env!("COD_GIT_HASH") {
    Some(h) => h,
    None => "unknown",
};

/// A point-in-time copy of a [`MetricsRegistry`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals across all recorded queries.
    pub counters: CounterSnapshot,
    /// Per-phase nanosecond totals (non-zero only for traced queries).
    pub phase_nanos: PhaseNanos,
    /// Queries recorded (answers + empty answers + errors).
    pub queries: u64,
    /// Queries answered from the HIMOR index.
    pub answers_index: u64,
    /// Queries answered by compressed evaluation.
    pub answers_compressed: u64,
    /// Queries with no qualifying community.
    pub answers_none: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Answers served by a lower degradation-ladder rung after a query
    /// limit fired (a subset of the answer tallies above).
    pub answers_degraded: u64,
    /// Queries shed by admission control (not part of `queries`; shed
    /// queries are rejected before planning).
    pub queries_shed: u64,
    /// Edge insertions applied to a dynamic graph.
    pub mutations_insert: u64,
    /// Edge removals applied to a dynamic graph.
    pub mutations_remove: u64,
    /// Attribute replacements applied to a dynamic graph.
    pub mutations_set_attrs: u64,
    /// Mutation batches absorbed by localized repair (dendrogram splice +
    /// HIMOR patch) instead of a from-scratch rebuild.
    pub repairs: u64,
    /// Mutation batches that forced a full from-scratch rebuild.
    pub full_rebuilds: u64,
    /// RR pools dropped by scoped (footprint-driven) invalidation.
    pub pool_scoped_evictions: u64,
    /// Records appended to the write-ahead log.
    pub wal_appended_records: u64,
    /// WAL fsyncs performed (policy-triggered or explicit flush).
    pub wal_fsyncs: u64,
    /// WAL records replayed by crash recovery.
    pub recovery_replayed_records: u64,
    /// Wall-clock nanoseconds spent in crash recovery.
    pub recovery_nanos: u64,
    /// Disjoint latency observations per bucket (traced queries only; the
    /// last bucket is +Inf). The Prometheus rendering cumulates them.
    pub latency_buckets: [u64; LATENCY_BUCKETS_NS.len() + 1],
    /// Sum of observed traced-query durations, in nanoseconds.
    pub latency_sum_nanos: u64,
    /// Nanoseconds since the owning registry (≈ the engine) was created.
    pub uptime_nanos: u64,
}

impl MetricsSnapshot {
    /// Total latency observations (traced queries recorded so far).
    pub fn latency_count(&self) -> u64 {
        self.latency_buckets.iter().sum()
    }

    /// Component-wise sum of two snapshots; uptime keeps the maximum (the
    /// oldest registry). The sharded engine aggregates its per-shard
    /// registries through this before rendering one exposition.
    #[must_use]
    pub fn merged(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = *self;
        out.counters = out.counters.saturating_add(&other.counters);
        out.phase_nanos = out.phase_nanos.saturating_add(&other.phase_nanos);
        out.queries += other.queries;
        out.answers_index += other.answers_index;
        out.answers_compressed += other.answers_compressed;
        out.answers_none += other.answers_none;
        out.errors += other.errors;
        out.answers_degraded += other.answers_degraded;
        out.queries_shed += other.queries_shed;
        out.mutations_insert += other.mutations_insert;
        out.mutations_remove += other.mutations_remove;
        out.mutations_set_attrs += other.mutations_set_attrs;
        out.repairs += other.repairs;
        out.full_rebuilds += other.full_rebuilds;
        out.pool_scoped_evictions += other.pool_scoped_evictions;
        out.wal_appended_records += other.wal_appended_records;
        out.wal_fsyncs += other.wal_fsyncs;
        out.recovery_replayed_records += other.recovery_replayed_records;
        out.recovery_nanos += other.recovery_nanos;
        for (slot, v) in out
            .latency_buckets
            .iter_mut()
            .zip(other.latency_buckets.iter())
        {
            *slot += v;
        }
        out.latency_sum_nanos += other.latency_sum_nanos;
        out.uptime_nanos = out.uptime_nanos.max(other.uptime_nanos);
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// `cache` carries the engine's recluster-cache gauges; `pool` the
    /// shared RR-pool cache gauges.
    pub fn render_prometheus(
        &self,
        cache: &crate::cache::CacheStats,
        pool: &crate::pool::PoolCacheStats,
    ) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP cod_{name} {help}");
            let _ = writeln!(out, "# TYPE cod_{name} counter");
            let _ = writeln!(out, "cod_{name} {value}");
        };
        counter(
            "queries_total",
            "queries served (answers + errors)",
            self.queries,
        );
        counter(
            "errors_total",
            "queries that returned an error",
            self.errors,
        );
        counter(
            "degraded_answers_total",
            "answers served by a lower degradation-ladder rung after a query limit fired",
            self.answers_degraded,
        );
        counter(
            "shed_total",
            "queries shed by admission control before planning",
            self.queries_shed,
        );
        counter(
            "repairs_total",
            "mutation batches absorbed by localized repair (splice + HIMOR patch)",
            self.repairs,
        );
        counter(
            "full_rebuilds_total",
            "mutation batches that forced a full from-scratch rebuild",
            self.full_rebuilds,
        );
        counter(
            "pool_scoped_evictions_total",
            "RR pools dropped by scoped footprint-driven invalidation",
            self.pool_scoped_evictions,
        );
        counter(
            "wal_appended_records_total",
            "mutation records appended to the write-ahead log",
            self.wal_appended_records,
        );
        counter(
            "wal_fsyncs_total",
            "write-ahead log fsyncs (policy-triggered or explicit)",
            self.wal_fsyncs,
        );
        counter(
            "recovery_replayed_records_total",
            "WAL records replayed by crash recovery",
            self.recovery_replayed_records,
        );
        for (c, v) in self.counters.iter() {
            counter(&format!("{}_total", c.name()), c.help(), v);
        }
        let _ = writeln!(
            out,
            "# HELP cod_mutations_total graph mutations applied, by kind"
        );
        let _ = writeln!(out, "# TYPE cod_mutations_total counter");
        for (kind, v) in [
            ("insert", self.mutations_insert),
            ("remove", self.mutations_remove),
            ("set_attrs", self.mutations_set_attrs),
        ] {
            let _ = writeln!(out, "cod_mutations_total{{kind=\"{kind}\"}} {v}");
        }
        let _ = writeln!(out, "# HELP cod_answers_total answers by serving path");
        let _ = writeln!(out, "# TYPE cod_answers_total counter");
        for (source, v) in [
            ("index", self.answers_index),
            ("compressed", self.answers_compressed),
            ("none", self.answers_none),
        ] {
            let _ = writeln!(out, "cod_answers_total{{source=\"{source}\"}} {v}");
        }
        let _ = writeln!(
            out,
            "# HELP cod_phase_seconds_total accounted wall-clock per query phase (traced queries)"
        );
        let _ = writeln!(out, "# TYPE cod_phase_seconds_total counter");
        for (p, nanos) in self.phase_nanos.iter() {
            let _ = writeln!(
                out,
                "cod_phase_seconds_total{{phase=\"{}\"}} {:.9}",
                p.name(),
                nanos as f64 / 1e9
            );
        }
        let _ = writeln!(
            out,
            "# HELP cod_query_seconds latency of traced queries (accounted phase time)"
        );
        let _ = writeln!(out, "# TYPE cod_query_seconds histogram");
        let mut cumulative = 0u64;
        for (i, &count) in self.latency_buckets.iter().enumerate() {
            cumulative += count;
            let le = match LATENCY_BUCKETS_NS.get(i) {
                Some(&ns) => format!("{:.9}", ns as f64 / 1e9),
                None => "+Inf".to_string(),
            };
            let _ = writeln!(out, "cod_query_seconds_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(
            out,
            "cod_query_seconds_sum {:.9}",
            self.latency_sum_nanos as f64 / 1e9
        );
        let _ = writeln!(out, "cod_query_seconds_count {cumulative}");
        let mut gauge = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP cod_{name} {help}");
            let _ = writeln!(out, "# TYPE cod_{name} gauge");
            let _ = writeln!(out, "cod_{name} {value}");
        };
        gauge(
            "recluster_cache_resident",
            "reclustered artifacts currently cached",
            cache.len as u64,
        );
        gauge(
            "recluster_cache_capacity",
            "recluster cache capacity",
            cache.capacity as u64,
        );
        gauge(
            "pool_cache_pools",
            "shared RR pools currently resident",
            pool.pools as u64,
        );
        gauge(
            "pool_cache_resident_bytes",
            "bytes of pooled RR graphs currently resident",
            pool.resident_bytes as u64,
        );
        gauge(
            "pool_cache_budget_bytes",
            "byte budget of the shared RR-pool cache",
            pool.budget_bytes as u64,
        );
        gauge(
            "pool_cache_epoch",
            "invalidation epoch of the shared RR-pool cache",
            pool.epoch,
        );
        let _ = writeln!(
            out,
            "# HELP cod_recovery_seconds wall-clock time crash recovery took at startup"
        );
        let _ = writeln!(out, "# TYPE cod_recovery_seconds gauge");
        let _ = writeln!(
            out,
            "cod_recovery_seconds {:.9}",
            self.recovery_nanos as f64 / 1e9
        );
        let _ = writeln!(
            out,
            "# HELP cod_uptime_seconds seconds since the engine was created"
        );
        let _ = writeln!(out, "# TYPE cod_uptime_seconds gauge");
        let _ = writeln!(
            out,
            "cod_uptime_seconds {:.3}",
            self.uptime_nanos as f64 / 1e9
        );
        let _ = writeln!(
            out,
            "# HELP cod_build_info build metadata as labels (value is always 1)"
        );
        let _ = writeln!(out, "# TYPE cod_build_info gauge");
        let _ = writeln!(
            out,
            "cod_build_info{{version=\"{BUILD_VERSION}\",git_hash=\"{BUILD_GIT_HASH}\"}} 1"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_accumulates_and_takes() {
        let mut sink = TraceSink::new(false);
        sink.add(Counter::RrGraphsSampled, 10);
        sink.incr(Counter::CacheHits);
        sink.incr(Counter::RrGraphsSampled);
        let t = sink.take();
        assert_eq!(t.counters.get(Counter::RrGraphsSampled), 11);
        assert_eq!(t.counters.get(Counter::CacheHits), 1);
        assert_eq!(t.counters.get(Counter::CacheMisses), 0);
        // Taking clears.
        assert_eq!(sink.trace(), QueryTrace::default());
    }

    #[test]
    fn timers_only_fire_when_armed() {
        let mut off = TraceSink::new(false);
        off.time(Phase::Sample, || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        assert_eq!(off.trace().phases.total(), 0);
        let mut on = TraceSink::new(true);
        on.time(Phase::Sample, || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        assert!(on.trace().phases.get(Phase::Sample) >= 1_000_000);
        assert_eq!(on.trace().phases.get(Phase::TopK), 0);
    }

    #[test]
    fn merge_is_component_wise() {
        let mut a = TraceSink::new(true);
        a.add(Counter::TopKHeapOps, 3);
        a.add_nanos(Phase::Plan, 5);
        let mut b = TraceSink::new(true);
        b.add(Counter::TopKHeapOps, 4);
        b.add_nanos(Phase::Plan, 7);
        a.merge(&b);
        let t = a.trace();
        assert_eq!(t.counters.get(Counter::TopKHeapOps), 7);
        assert_eq!(t.phases.get(Phase::Plan), 12);
        assert_eq!(t.total_nanos(), 12);
    }

    #[test]
    fn registry_tallies_outcomes_and_buckets() {
        let reg = MetricsRegistry::default();
        let mut sink = TraceSink::new(true);
        sink.add(Counter::RrGraphsSampled, 5);
        sink.add_nanos(Phase::Sample, 50_000); // lands in the 100us bucket
        reg.record(&sink, QueryOutcome::AnswerCompressed);
        let mut sink2 = TraceSink::new(false);
        sink2.add(Counter::RrGraphsSampled, 2);
        reg.record(&sink2, QueryOutcome::Error);
        let snap = reg.snapshot();
        assert_eq!(snap.queries, 2);
        assert_eq!(snap.answers_compressed, 1);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.counters.get(Counter::RrGraphsSampled), 7);
        // Only the traced query is observed by the histogram.
        assert_eq!(snap.latency_buckets.iter().sum::<u64>(), 1);
        assert_eq!(snap.latency_buckets[1], 1);
        assert_eq!(snap.latency_sum_nanos, 50_000);
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let reg = MetricsRegistry::default();
        let mut sink = TraceSink::new(true);
        sink.add(Counter::RrEdgesTraversed, 9);
        sink.add_nanos(Phase::TopK, 1_000);
        reg.record(&sink, QueryOutcome::AnswerIndex);
        let cache = crate::cache::CacheStats::default();
        let pool = crate::pool::PoolCacheStats::default();
        let text = reg.snapshot().render_prometheus(&cache, &pool);
        assert!(text.contains("cod_queries_total 1"));
        assert!(text.contains("cod_pool_hits_total 0"));
        assert!(text.contains("cod_pool_cache_resident_bytes 0"));
        assert!(text.contains("cod_rr_edges_traversed_total 9"));
        assert!(text.contains("cod_answers_total{source=\"index\"} 1"));
        assert!(text.contains("cod_query_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("cod_query_seconds_count 1"));
        assert!(text.contains("cod_uptime_seconds "));
        assert!(text.contains(&format!(
            "cod_build_info{{version=\"{BUILD_VERSION}\",git_hash=\"{BUILD_GIT_HASH}\"}} 1"
        )));
        // Every HELP line is paired with a TYPE line.
        let helps = text.matches("# HELP").count();
        let types = text.matches("# TYPE").count();
        assert_eq!(helps, types);
    }

    #[test]
    fn mutation_metrics_are_tallied_and_rendered() {
        use crate::mutation::MutationKind;
        let reg = MetricsRegistry::default();
        reg.record_mutation(MutationKind::InsertEdge);
        reg.record_mutation(MutationKind::InsertEdge);
        reg.record_mutation(MutationKind::RemoveEdge);
        reg.record_mutation(MutationKind::SetAttrs);
        reg.record_repair();
        reg.record_full_rebuild();
        reg.record_full_rebuild();
        reg.record_pool_scoped_evictions(3);
        let snap = reg.snapshot();
        assert_eq!(snap.mutations_insert, 2);
        assert_eq!(snap.mutations_remove, 1);
        assert_eq!(snap.mutations_set_attrs, 1);
        assert_eq!(snap.repairs, 1);
        assert_eq!(snap.full_rebuilds, 2);
        assert_eq!(snap.pool_scoped_evictions, 3);
        let cache = crate::cache::CacheStats::default();
        let pool = crate::pool::PoolCacheStats::default();
        let text = snap.render_prometheus(&cache, &pool);
        assert!(text.contains("cod_mutations_total{kind=\"insert\"} 2"));
        assert!(text.contains("cod_mutations_total{kind=\"remove\"} 1"));
        assert!(text.contains("cod_mutations_total{kind=\"set_attrs\"} 1"));
        assert!(text.contains("cod_repairs_total 1"));
        assert!(text.contains("cod_full_rebuilds_total 2"));
        assert!(text.contains("cod_pool_scoped_evictions_total 3"));
        let helps = text.matches("# HELP").count();
        let types = text.matches("# TYPE").count();
        assert_eq!(helps, types);
    }

    #[test]
    fn wal_and_recovery_metrics_are_tallied_and_rendered() {
        let reg = MetricsRegistry::default();
        reg.record_wal_append();
        reg.record_wal_append();
        reg.record_wal_append();
        reg.record_wal_fsync();
        reg.record_recovery(2, 1_500_000_000);
        let snap = reg.snapshot();
        assert_eq!(snap.wal_appended_records, 3);
        assert_eq!(snap.wal_fsyncs, 1);
        assert_eq!(snap.recovery_replayed_records, 2);
        assert_eq!(snap.recovery_nanos, 1_500_000_000);
        let merged = snap.merged(&snap);
        assert_eq!(merged.wal_appended_records, 6);
        assert_eq!(merged.recovery_nanos, 3_000_000_000);
        let cache = crate::cache::CacheStats::default();
        let pool = crate::pool::PoolCacheStats::default();
        let text = snap.render_prometheus(&cache, &pool);
        assert!(text.contains("cod_wal_appended_records_total 3"));
        assert!(text.contains("cod_wal_fsyncs_total 1"));
        assert!(text.contains("cod_recovery_replayed_records_total 2"));
        assert!(text.contains("cod_recovery_seconds 1.500000000"));
        let helps = text.matches("# HELP").count();
        let types = text.matches("# TYPE").count();
        assert_eq!(helps, types);
    }

    #[test]
    fn uptime_is_monotone_across_snapshots() {
        let reg = MetricsRegistry::default();
        let a = reg.snapshot();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = reg.snapshot();
        assert!(b.uptime_nanos > a.uptime_nanos);
        assert!(a.uptime_nanos < 60 * 1_000_000_000, "fresh registry");
    }
}
