//! Cross-query shared RR-pool cache.
//!
//! The paper's core efficiency device — one RR pool shared by every
//! community of the chain `H(q)` (Theorem 2) — stops at the query
//! boundary: each query regenerates its pool from scratch. This module
//! extends the sharing *across* queries: RR graphs sampled over a given
//! `(attribute, universe)` pair are kept in an engine-level cache and
//! re-folded by later queries whose chain spans the same universe, so a
//! warm repeat-attribute workload pays only the HFS + top-k scan, never
//! the `Θ·ω` sampling term.
//!
//! # Determinism contract
//!
//! A pool's sample `i` is a pure function of `(graph, model, pool seed,
//! i)`: it is drawn entirely from `SeedSequence::rng_for(i)`, exactly
//! like the per-index compressed path. The pool seed itself is derived
//! from the cache key (attribute + universe content hash), **not** from
//! any caller RNG — so a warm pool, a cold pool, and a pool grown in
//! several top-ups are all bit-identical prefixes of the same infinite
//! sample sequence, at every thread count. `tests/pool_reuse.rs` enforces
//! this (grown ≡ fresh, warm answers ≡ cold answers).
//!
//! # Growth, truncation, invalidation
//!
//! * **Incremental growth**: a query needing `θ′` samples over a pool
//!   holding `θ` tops it up with samples `θ..θ′` in place; existing
//!   chunks are immutable `Arc`s, so concurrent readers are never
//!   disturbed.
//! * **Cancellation**: growth polls its `CancelToken` every
//!   [`CHECK_EVERY`] draws (with a [`Site::PoolGrow`] failpoint) and, if
//!   it stops early, keeps only the *contiguous* prefix of completed
//!   samples — a later query re-derives the dropped indices from their
//!   seeds, so a truncated pool can never introduce a gap or a duplicate.
//! * **Invalidation**: [`PoolCache::invalidate`] bumps an epoch and drops
//!   every pool. `CodEngine::clear_cache` and every `DynamicCod`
//!   mutation call it; queries already holding an `Arc` to an old pool
//!   finish against the snapshot they started with (the graph they were
//!   planned against), new queries build fresh pools.
//! * **Eviction**: pools are evicted least-recently-used once their
//!   total resident bytes exceed the cache's byte budget; the pool a
//!   query is actively using is never evicted under it.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use cod_graph::{AttrId, Csr, NodeId};
use cod_influence::{
    par_ranges, splitmix64, CancelToken, Model, Parallelism, RrGraph, RrSampler, SeedSequence,
};

use crate::failpoint::{self, Site};

/// Cancellation poll cadence during pool growth and pooled folds, matching
/// the compressed path's per-batch checkpoint granularity.
pub const CHECK_EVERY: usize = 64;

/// Default byte budget of an engine's pool cache (LRU eviction threshold).
pub const DEFAULT_POOL_BUDGET_BYTES: usize = 256 * 1024 * 1024;

/// An immutable snapshot of a pool's sample prefix: the chunks resident
/// when the view was taken. Iterating yields samples in global index
/// order; chunk boundaries are a storage artifact and never observable in
/// the sample stream.
#[derive(Clone)]
pub struct PoolView {
    chunks: Vec<Arc<Vec<RrGraph>>>,
    len: usize,
}

impl PoolView {
    /// Number of samples in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The pooled RR graphs in sample-index order.
    pub fn iter(&self) -> impl Iterator<Item = &RrGraph> {
        self.chunks.iter().flat_map(|c| c.iter())
    }
}

/// What one [`RrPoolEntry::ensure`] call did, for the caller's telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GrowthStats {
    /// RR graphs added to the pool by this call.
    pub graphs: u64,
    /// Activated edges recorded while generating those graphs.
    pub edges: u64,
    /// Heap bytes the added graphs occupy.
    pub bytes: u64,
    /// Whether this call grew a non-empty pool (a top-up, as opposed to
    /// the initial fill or a pure read).
    pub topped_up: bool,
}

/// One shared RR pool: samples over a fixed `(attr, universe)` key, grown
/// on demand, bit-identical to a fresh pool of the same size.
pub struct RrPoolEntry {
    attr: Option<AttrId>,
    universe: Arc<Vec<NodeId>>,
    restricted: bool,
    seeds: SeedSequence,
    /// Serializes growth so concurrent queries never sample overlapping
    /// index ranges; reads proceed under `chunks` alone.
    grow: Mutex<()>,
    chunks: RwLock<Vec<Arc<Vec<RrGraph>>>>,
    samples: AtomicUsize,
    bytes: AtomicUsize,
}

impl RrPoolEntry {
    /// A fresh, empty pool. `universe` must be sorted ascending (the
    /// chain-universe invariant); `restricted` says whether sampling must
    /// stay inside it (`universe` smaller than the whole graph).
    pub fn new(attr: Option<AttrId>, universe: Arc<Vec<NodeId>>, restricted: bool) -> Self {
        debug_assert!(universe.windows(2).all(|w| w[0] < w[1]));
        let seeds = SeedSequence::new(pool_seed(attr, &universe));
        Self {
            attr,
            universe,
            restricted,
            seeds,
            grow: Mutex::new(()),
            chunks: RwLock::new(Vec::new()),
            samples: AtomicUsize::new(0),
            bytes: AtomicUsize::new(0),
        }
    }

    /// The attribute of the cache key.
    pub fn attr(&self) -> Option<AttrId> {
        self.attr
    }

    /// The sorted universe the pool samples over.
    pub fn universe(&self) -> &[NodeId] {
        &self.universe
    }

    /// Whether sampling is restricted to the universe (the universe is a
    /// strict subset of the graph the pool samples).
    pub fn restricted(&self) -> bool {
        self.restricted
    }

    /// Samples currently resident.
    pub fn len(&self) -> usize {
        self.samples.load(Ordering::Acquire)
    }

    /// Whether the pool holds no samples yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes the resident samples occupy.
    pub fn memory_bytes(&self) -> usize {
        self.bytes.load(Ordering::Acquire)
    }

    /// Chunk sizes in append order — exposed so tests can assert that
    /// top-ups tile the index space contiguously (injective, gap-free).
    pub fn chunk_lens(&self) -> Vec<usize> {
        match self.chunks.read() {
            Ok(c) => c.iter().map(|chunk| chunk.len()).collect(),
            Err(p) => p.into_inner().iter().map(|chunk| chunk.len()).collect(),
        }
    }

    /// Grows the pool to at least `theta` samples (if it is smaller and
    /// the token allows) and returns a view of the resident prefix plus
    /// what this call added. The view may hold fewer than `theta` samples
    /// only if growth was cancelled mid-way.
    pub fn ensure(
        &self,
        g: &Csr,
        model: Model,
        theta: usize,
        par: Parallelism,
        cancel: Option<&CancelToken>,
    ) -> (PoolView, GrowthStats) {
        let mut grown = GrowthStats::default();
        if self.len() < theta {
            let _guard = match self.grow.lock() {
                Ok(g) => g,
                // A poisoned growth lock means a grower panicked before
                // appending; the chunk list is still consistent.
                Err(p) => p.into_inner(),
            };
            let have = self.samples.load(Ordering::Acquire);
            if have < theta {
                grown = self.grow_locked(g, model, have, theta, par, cancel);
            }
        }
        let chunks = match self.chunks.read() {
            Ok(c) => c.clone(),
            Err(p) => p.into_inner().clone(),
        };
        let len = chunks.iter().map(|c| c.len()).sum();
        (PoolView { chunks, len }, grown)
    }

    /// Samples indices `have..theta` and appends the contiguous completed
    /// prefix as one immutable chunk. Caller holds the growth lock.
    fn grow_locked(
        &self,
        g: &Csr,
        model: Model,
        have: usize,
        theta: usize,
        par: Parallelism,
        cancel: Option<&CancelToken>,
    ) -> GrowthStats {
        let n = theta - have;
        let shards = par_ranges(n, par.thread_count(), |range| {
            let mut sampler = RrSampler::new(g, model);
            let mut out = Vec::with_capacity(range.len());
            let mut edges = 0u64;
            let mut pending_edges = 0u64;
            let mut complete = true;
            for (j, i) in range.enumerate() {
                if j % CHECK_EVERY == 0 {
                    failpoint::hit(Site::PoolGrow, cancel);
                    if let Some(c) = cancel {
                        c.charge_rr_edges(pending_edges);
                        pending_edges = 0;
                        if c.should_stop() {
                            complete = false;
                            break;
                        }
                    }
                }
                let mut rng = self.seeds.rng_for((have + i) as u64);
                let s = self.universe[rand::Rng::random_range(&mut rng, 0..self.universe.len())];
                let rr = if self.restricted {
                    sampler
                        .sample_restricted(s, &mut rng, |v| self.universe.binary_search(&v).is_ok())
                } else {
                    sampler.sample_from(s, &mut rng)
                };
                edges += rr.num_edges() as u64;
                pending_edges += rr.num_edges() as u64;
                out.push(rr);
            }
            if let Some(c) = cancel {
                c.charge_rr_edges(pending_edges);
            }
            (out, edges, complete)
        });

        // Keep only the contiguous prefix of completed samples: once a
        // shard stopped early, everything after it would leave a gap in
        // the index space, so it is dropped and re-derived later.
        let mut fresh: Vec<RrGraph> = Vec::new();
        let mut edges = 0u64;
        for (shard, shard_edges, complete) in shards {
            edges += shard_edges;
            fresh.extend(shard);
            if !complete {
                break;
            }
        }
        if fresh.is_empty() {
            return GrowthStats::default();
        }
        let bytes: usize = fresh.iter().map(RrGraph::memory_bytes).sum();
        let stats = GrowthStats {
            graphs: fresh.len() as u64,
            edges,
            bytes: bytes as u64,
            topped_up: have > 0,
        };
        if let Some(c) = cancel {
            c.charge_memory(self.bytes.load(Ordering::Acquire) + bytes);
        }
        let chunk = Arc::new(fresh);
        let added = chunk.len();
        let mut w = match self.chunks.write() {
            Ok(w) => w,
            Err(p) => p.into_inner(),
        };
        w.push(chunk);
        self.bytes.fetch_add(bytes, Ordering::AcqRel);
        self.samples.store(have + added, Ordering::Release);
        stats
    }
}

/// What one [`PoolCache::get_or_create`] lookup did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolLookup {
    /// Whether an existing pool matched the key.
    pub hit: bool,
    /// Bytes of pooled samples the lookup's insertion evicted.
    pub evicted_bytes: u64,
}

/// Point-in-time gauges of a [`PoolCache`], for the metrics exposition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolCacheStats {
    /// Pools currently resident.
    pub pools: usize,
    /// Total heap bytes of resident pooled samples.
    pub resident_bytes: usize,
    /// The eviction threshold.
    pub budget_bytes: usize,
    /// Invalidation epoch (bumped by every [`PoolCache::invalidate`]).
    pub epoch: u64,
}

struct Slot {
    entry: Arc<RrPoolEntry>,
    stamp: u64,
}

/// The engine-level cache of shared RR pools: keyed lookup, LRU byte-budget
/// eviction, epoch-based invalidation.
///
/// Mirrors the recluster cache's concurrency discipline: one mutex over
/// `(slots, clock)`, sampling always outside the lock, and a poisoned lock
/// degrades to cache-miss behaviour (a detached pool that is simply never
/// cached) rather than wedging queries.
pub struct PoolCache {
    slots: Mutex<(Vec<Slot>, u64)>,
    budget_bytes: usize,
    epoch: AtomicU64,
}

impl PoolCache {
    /// An empty cache evicting past `budget_bytes` of pooled samples.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            slots: Mutex::new((Vec::new(), 0)),
            budget_bytes,
            epoch: AtomicU64::new(0),
        }
    }

    /// The pool for `(attr, universe)`, creating an empty one on miss.
    /// `restricted` must be `universe.len() < g.num_nodes()` for the graph
    /// the pool will sample. On insertion, least-recently-used pools are
    /// evicted until the byte budget holds again (never the pool being
    /// returned).
    pub fn get_or_create(
        &self,
        attr: Option<AttrId>,
        universe: &[NodeId],
        restricted: bool,
    ) -> (Arc<RrPoolEntry>, PoolLookup) {
        let make = || {
            Arc::new(RrPoolEntry::new(
                attr,
                Arc::new(universe.to_vec()),
                restricted,
            ))
        };
        let Ok(mut guard) = self.slots.lock() else {
            // Poisoned: serve a detached pool; correctness never depends
            // on the cache remembering anything.
            return (make(), PoolLookup::default());
        };
        let (slots, clock) = &mut *guard;
        *clock += 1;
        let stamp = *clock;
        if let Some(slot) = slots
            .iter_mut()
            .find(|s| s.entry.attr == attr && s.entry.universe[..] == *universe)
        {
            slot.stamp = stamp;
            return (
                Arc::clone(&slot.entry),
                PoolLookup {
                    hit: true,
                    evicted_bytes: 0,
                },
            );
        }
        let entry = make();
        slots.push(Slot {
            entry: Arc::clone(&entry),
            stamp,
        });
        let evicted_bytes = evict_over_budget(slots, self.budget_bytes, &entry);
        (
            entry,
            PoolLookup {
                hit: false,
                evicted_bytes,
            },
        )
    }

    /// Re-applies the byte budget after `keep` grew (growth happens
    /// outside the cache lock, so insertion-time eviction can't see it).
    /// Returns the bytes evicted; `keep` itself is never evicted.
    pub fn enforce_budget(&self, keep: &Arc<RrPoolEntry>) -> u64 {
        let Ok(mut guard) = self.slots.lock() else {
            return 0;
        };
        evict_over_budget(&mut guard.0, self.budget_bytes, keep)
    }

    /// Drops every pool and bumps the epoch. Called on `clear_cache` and
    /// on every `DynamicCod` mutation — a pool sampled on the old graph
    /// must never serve a query planned against the new one.
    pub fn invalidate(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
        if let Ok(mut guard) = self.slots.lock() {
            guard.0.clear();
        }
    }

    /// Drops only the pools matching `pred`, leaving the rest resident.
    /// Returns `(pools dropped, bytes dropped)`.
    ///
    /// This is the scoped-invalidation path used by `DynamicCod`: a
    /// mutation's [`Footprint`](crate::mutation::Footprint) translates to a
    /// predicate over `(attr, universe, restricted)`, so a `set_attrs` on
    /// one attribute no longer evicts pools of unrelated attributes. The
    /// epoch is bumped unconditionally — an invalidation event occurred
    /// even when no resident pool matched it.
    pub fn invalidate_scoped(&self, pred: impl Fn(&RrPoolEntry) -> bool) -> (usize, u64) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
        let Ok(mut guard) = self.slots.lock() else {
            return (0, 0);
        };
        let before = guard.0.len();
        let mut bytes = 0u64;
        guard.0.retain(|s| {
            if pred(&s.entry) {
                bytes += s.entry.memory_bytes() as u64;
                false
            } else {
                true
            }
        });
        (before - guard.0.len(), bytes)
    }

    /// The current invalidation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Current gauges.
    pub fn stats(&self) -> PoolCacheStats {
        let (pools, resident_bytes) = match self.slots.lock() {
            Ok(guard) => (
                guard.0.len(),
                guard.0.iter().map(|s| s.entry.memory_bytes()).sum(),
            ),
            Err(_) => (0, 0),
        };
        PoolCacheStats {
            pools,
            resident_bytes,
            budget_bytes: self.budget_bytes,
            epoch: self.epoch(),
        }
    }
}

/// Evicts least-recently-used slots (never `keep`) until resident bytes
/// fit the budget. Returns the bytes evicted. A single over-budget pool
/// that is currently in use stays resident — the budget bounds steady
/// state, not one query's working set.
fn evict_over_budget(slots: &mut Vec<Slot>, budget: usize, keep: &Arc<RrPoolEntry>) -> u64 {
    let mut evicted = 0u64;
    loop {
        let total: usize = slots.iter().map(|s| s.entry.memory_bytes()).sum();
        if total <= budget {
            return evicted;
        }
        let victim = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !Arc::ptr_eq(&s.entry, keep))
            .min_by_key(|(_, s)| s.stamp)
            .map(|(i, _)| i);
        let Some(i) = victim else {
            return evicted;
        };
        evicted += slots.swap_remove(i).entry.memory_bytes() as u64;
    }
}

/// The deterministic pool master seed: a splitmix fold of the attribute
/// and the universe contents. Key-derived (no caller RNG), so every
/// engine, every run, and every top-up schedule builds the identical
/// sample sequence for a given key.
fn pool_seed(attr: Option<AttrId>, universe: &[NodeId]) -> u64 {
    let mut h = splitmix64(0xC0D_9001 ^ attr.map_or(u64::MAX, u64::from));
    for &v in universe {
        h = splitmix64(h ^ u64::from(v));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::GraphBuilder;

    fn ring(n: usize) -> Csr {
        let mut b = GraphBuilder::new(n);
        for v in 0..n {
            b.add_edge(v as NodeId, ((v + 1) % n) as NodeId);
        }
        b.build()
    }

    fn universe(n: usize) -> Arc<Vec<NodeId>> {
        Arc::new((0..n as NodeId).collect())
    }

    #[test]
    fn grown_pool_is_bit_identical_to_fresh_pool() {
        let g = ring(24);
        let u = universe(24);
        let grown = RrPoolEntry::new(None, u.clone(), false);
        let (_, s1) = grown.ensure(
            &g,
            Model::WeightedCascade,
            50,
            Parallelism::Threads(1),
            None,
        );
        assert!(!s1.topped_up);
        let (gv, s2) = grown.ensure(
            &g,
            Model::WeightedCascade,
            130,
            Parallelism::Threads(2),
            None,
        );
        assert!(s2.topped_up && s2.graphs == 80);
        let fresh = RrPoolEntry::new(None, u, false);
        let (fv, _) = fresh.ensure(
            &g,
            Model::WeightedCascade,
            130,
            Parallelism::Threads(1),
            None,
        );
        assert_eq!(gv.len(), 130);
        assert_eq!(fv.len(), 130);
        assert!(gv.iter().eq(fv.iter()), "top-up diverged from fresh pool");
        assert_eq!(grown.chunk_lens(), vec![50, 80]);
    }

    #[test]
    fn ensure_at_or_below_resident_size_is_a_pure_read() {
        let g = ring(8);
        let entry = RrPoolEntry::new(Some(3), universe(8), false);
        entry.ensure(
            &g,
            Model::WeightedCascade,
            40,
            Parallelism::Threads(1),
            None,
        );
        let bytes = entry.memory_bytes();
        let (view, stats) = entry.ensure(
            &g,
            Model::WeightedCascade,
            40,
            Parallelism::Threads(1),
            None,
        );
        assert_eq!(stats, GrowthStats::default());
        assert_eq!(view.len(), 40);
        assert_eq!(entry.memory_bytes(), bytes);
    }

    #[test]
    fn cancelled_growth_keeps_a_contiguous_prefix() {
        let g = ring(16);
        let entry = RrPoolEntry::new(None, universe(16), false);
        let token = CancelToken::unlimited();
        token.cancel();
        let (view, stats) = entry.ensure(
            &g,
            Model::WeightedCascade,
            200,
            Parallelism::Threads(2),
            Some(&token),
        );
        assert_eq!(stats, GrowthStats::default());
        assert_eq!(view.len(), 0, "pre-cancelled token admits no samples");
        // The dropped indices are re-derived later: a clean ensure ends up
        // identical to a never-cancelled pool.
        let (v2, _) = entry.ensure(
            &g,
            Model::WeightedCascade,
            200,
            Parallelism::Threads(1),
            None,
        );
        let fresh = RrPoolEntry::new(None, universe(16), false);
        let (fv, _) = fresh.ensure(
            &g,
            Model::WeightedCascade,
            200,
            Parallelism::Threads(1),
            None,
        );
        assert!(v2.iter().eq(fv.iter()));
    }

    #[test]
    fn cache_hits_by_key_and_misses_across_keys() {
        let cache = PoolCache::new(usize::MAX);
        let u: Vec<NodeId> = (0..10).collect();
        let (a, l1) = cache.get_or_create(Some(1), &u, false);
        assert!(!l1.hit);
        let (b, l2) = cache.get_or_create(Some(1), &u, false);
        assert!(l2.hit);
        assert!(Arc::ptr_eq(&a, &b));
        let (_, l3) = cache.get_or_create(Some(2), &u, false);
        assert!(!l3.hit, "attr is part of the key");
        let (_, l4) = cache.get_or_create(Some(1), &u[..5], true);
        assert!(!l4.hit, "universe is part of the key");
        assert_eq!(cache.stats().pools, 3);
    }

    #[test]
    fn invalidate_bumps_epoch_and_clears() {
        let cache = PoolCache::new(usize::MAX);
        let u: Vec<NodeId> = (0..4).collect();
        cache.get_or_create(None, &u, false);
        assert_eq!(cache.stats().pools, 1);
        let e0 = cache.epoch();
        cache.invalidate();
        assert_eq!(cache.epoch(), e0 + 1);
        assert_eq!(cache.stats().pools, 0);
        let (_, l) = cache.get_or_create(None, &u, false);
        assert!(!l.hit, "post-invalidation lookup rebuilds");
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let g = ring(12);
        let cache = PoolCache::new(1); // any grown pool is over budget
        let ua: Vec<NodeId> = (0..12).collect();
        let ub: Vec<NodeId> = (0..6).collect();
        let (a, _) = cache.get_or_create(Some(1), &ua, false);
        a.ensure(
            &g,
            Model::WeightedCascade,
            30,
            Parallelism::Threads(1),
            None,
        );
        assert!(cache.enforce_budget(&a) == 0, "the active pool survives");
        assert_eq!(cache.stats().pools, 1);
        // A second pool's insertion forces the first (older stamp) out.
        let (b, lookup) = cache.get_or_create(Some(2), &ub, true);
        assert!(
            lookup.evicted_bytes > 0,
            "insertion evicts the grown older pool"
        );
        assert_eq!(cache.stats().pools, 1);
        // Post-growth re-enforcement never evicts the pool in use, even
        // though it alone is over budget.
        b.ensure(
            &g,
            Model::WeightedCascade,
            10,
            Parallelism::Threads(1),
            None,
        );
        assert_eq!(cache.enforce_budget(&b), 0);
        assert_eq!(cache.stats().pools, 1);
        let (_, l) = cache.get_or_create(Some(2), &ub, true);
        assert!(l.hit, "the kept pool is the recently used one");
    }

    #[test]
    fn scoped_invalidation_drops_only_matching_pools() {
        let g = ring(12);
        let cache = PoolCache::new(usize::MAX);
        let full: Vec<NodeId> = (0..12).collect();
        let sub: Vec<NodeId> = (0..6).collect();
        let (a, _) = cache.get_or_create(Some(1), &full, false);
        let (b, _) = cache.get_or_create(Some(2), &sub, true);
        a.ensure(
            &g,
            Model::WeightedCascade,
            20,
            Parallelism::Threads(1),
            None,
        );
        b.ensure(
            &g,
            Model::WeightedCascade,
            20,
            Parallelism::Threads(1),
            None,
        );
        let e0 = cache.epoch();
        let (dropped, bytes) = cache.invalidate_scoped(|e| e.attr() == Some(1));
        assert_eq!(dropped, 1);
        assert!(bytes > 0);
        assert_eq!(cache.epoch(), e0 + 1);
        assert_eq!(cache.stats().pools, 1);
        let (_, l) = cache.get_or_create(Some(2), &sub, true);
        assert!(l.hit, "the unmatched pool stays resident");
        // A predicate that matches nothing still bumps the epoch (an
        // invalidation event happened) but drops nothing.
        let (d2, b2) = cache.invalidate_scoped(|e| e.attr() == Some(9));
        assert_eq!((d2, b2), (0, 0));
        assert_eq!(cache.epoch(), e0 + 2);
        assert_eq!(cache.stats().pools, 1);
        // Universe-scoped predicate: a restricted pool whose universe
        // contains a touched endpoint is dropped.
        let (d3, _) =
            cache.invalidate_scoped(|e| !e.restricted() || e.universe().binary_search(&3).is_ok());
        assert_eq!(d3, 1);
        assert_eq!(cache.stats().pools, 0);
    }

    #[test]
    fn pool_seed_separates_keys_deterministically() {
        let u: Vec<NodeId> = (0..9).collect();
        assert_eq!(pool_seed(None, &u), pool_seed(None, &u));
        assert_ne!(pool_seed(None, &u), pool_seed(Some(0), &u));
        assert_ne!(pool_seed(Some(1), &u), pool_seed(Some(2), &u));
        assert_ne!(pool_seed(None, &u[..8]), pool_seed(None, &u));
    }
}
